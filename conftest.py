"""Root conftest: make `tests.conftest` helpers importable under plain pytest.

`python -m pytest` inserts the current directory into sys.path but the
`pytest` entry point does not; test modules import shared helpers via
`from tests.conftest import ...`, so the repository root must be
importable either way.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
