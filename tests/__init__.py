"""Test package marker (lets test modules import `tests.conftest` helpers)."""
