"""Tests for the terminal explorer REPL (scripted I/O)."""

from __future__ import annotations

import io

import pytest

from repro.session import DrillDownSession
from repro.ui import ExplorerREPL


def run_script(retail, script: str) -> str:
    session = DrillDownSession(retail, k=3, mw=3.0)
    out = io.StringIO()
    repl = ExplorerREPL(session, input_stream=io.StringIO(script), output_stream=out)
    repl.run()
    return out.getvalue()


class TestCommands:
    def test_expand_and_show(self, retail):
        output = run_script(retail, "expand 0\nquit\n")
        assert "Walmart" in output
        assert "comforters" in output

    def test_collapse(self, retail):
        output = run_script(retail, "expand 0\ncollapse 0\nquit\n")
        # Final show has only the trivial rule row.
        final_table = output.rsplit("smart drill-down", 1)[-1]
        assert final_table.count("Walmart") >= 1  # appeared at least once mid-run

    def test_star_command(self, retail):
        output = run_script(retail, "star 0 Region\nquit\n")
        assert "MA-3" in output or "CA-1" in output or "NY-1" in output

    def test_trad_command(self, retail):
        output = run_script(retail, "trad 0 Store\nquit\n")
        assert "Walmart" in output

    def test_k_command(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        out = io.StringIO()
        repl = ExplorerREPL(session, input_stream=io.StringIO("k 5\nquit\n"), output_stream=out)
        repl.run()
        assert session.k == 5
        assert "k = 5" in out.getvalue()

    def test_help(self, retail):
        assert "commands:" in run_script(retail, "help\nquit\n")

    def test_unknown_command(self, retail):
        assert "unknown command" in run_script(retail, "frobnicate\nquit\n")

    def test_bad_row_index(self, retail):
        output = run_script(retail, "expand 99\nquit\n")
        assert "error:" in output

    def test_non_integer_row(self, retail):
        output = run_script(retail, "expand zero\nquit\n")
        assert "error:" in output

    def test_missing_argument(self, retail):
        output = run_script(retail, "expand\nquit\n")
        assert "missing argument" in output

    def test_invalid_k(self, retail):
        output = run_script(retail, "k 0\nquit\n")
        assert "error:" in output

    def test_eof_terminates(self, retail):
        # No quit command: run() must return at EOF.
        output = run_script(retail, "show\n")
        assert "smart drill-down explorer" in output

    def test_blank_lines_ignored(self, retail):
        output = run_script(retail, "\n\nquit\n")
        assert "smart drill-down explorer" in output


class TestPreferenceCommands:
    def test_favor_changes_weighting(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        out = io.StringIO()
        repl = ExplorerREPL(
            session,
            input_stream=io.StringIO("favor Region 3\nexpand 0\nquit\n"),
            output_stream=out,
        )
        repl.run()
        assert "favoring column 'Region'" in out.getvalue()
        from repro.core import ParametricWeight

        assert isinstance(session.wf, ParametricWeight)

    def test_ignore_column(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        out = io.StringIO()
        repl = ExplorerREPL(
            session,
            input_stream=io.StringIO("ignore Store\nexpand 0\nquit\n"),
            output_stream=out,
        )
        repl.run()
        assert "ignoring column 'Store'" in out.getvalue()
        store_idx = retail.schema.index_of("Store")
        for node in session.root.children:
            assert node.rule.is_star(store_idx)

    def test_unknown_column_reports_error(self, retail):
        output = run_script(retail, "favor Nope\nquit\n")
        assert "error:" in output

    def test_refresh_command(self, retail):
        output = run_script(retail, "expand 0\nrefresh\nquit\n")
        assert "refreshed" in output
