"""Tests for the paper-style ASCII rendering."""

from __future__ import annotations

from repro.core import Rule, RuleList, STAR, SizeWeight
from repro.session import DrillDownSession
from repro.ui import format_count, render_rows, render_rule_list, render_session


class TestFormatCount:
    def test_integral(self):
        assert format_count(6000.0) == "6000"
        assert format_count(0.0) == "0"

    def test_fractional(self):
        assert format_count(123.456) == "123.5"


class TestRenderRows:
    def test_header_and_alignment(self):
        text = render_rows(
            ["Store", "Product"],
            [(0, Rule([STAR, STAR]), 6000, 0), (1, Rule(["Walmart", STAR]), 1000, 1)],
        )
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "Store"
        assert "Count" in lines[0] and "Weight" in lines[0]
        # Depth-1 rows carry the paper's dot prefix.
        assert lines[3].startswith(". Walmart")

    def test_wildcards_render_as_question_marks(self):
        text = render_rows(["A"], [(0, Rule([STAR]), 1, 0)])
        assert "?" in text.splitlines()[2]


class TestRenderRuleList:
    def test_renders_entries(self, tiny_table):
        rl = RuleList([Rule(["a", STAR, STAR])], tiny_table, SizeWeight())
        text = render_rule_list(tiny_table.column_names, rl)
        assert "a" in text and "5" in text


class TestRenderSession:
    def test_paper_table_shape(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        session.expand(Rule.from_named(retail, Store="Walmart"))
        text = render_session(session)
        lines = text.splitlines()
        assert lines[2].startswith("?")  # trivial rule first
        assert any(line.startswith(". ") for line in lines)  # depth 1
        assert any(line.startswith(". . ") for line in lines)  # depth 2
        assert "6000" in text and "1000" in text

    def test_sort_display_by_count(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        text = render_session(session, sort_display_by_count=True)
        lines = [l for l in text.splitlines()[2:] if l.startswith(". ")]
        counts = [int(l.split("|")[-2]) for l in lines]
        assert counts == sorted(counts, reverse=True)

    def test_session_to_text_delegates(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        assert session.to_text() == render_session(session)
