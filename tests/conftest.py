"""Shared fixtures: small deterministic tables and cached paper datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_census, generate_marketing, generate_retail
from repro.table import Schema, Table


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_table() -> Table:
    """A hand-written 8-row, 3-column table with known counts.

    Value layout (a appears 5×, b 4×, x 4×, (a, x) 3×, (a, x, p) 2×):

        A  B  C
        a  x  p
        a  x  p
        a  x  q
        a  y  q
        a  z  q
        b  x  p
        b  y  q
        b  z  r
    """
    rows = [
        ("a", "x", "p"),
        ("a", "x", "p"),
        ("a", "x", "q"),
        ("a", "y", "q"),
        ("a", "z", "q"),
        ("b", "x", "p"),
        ("b", "y", "q"),
        ("b", "z", "r"),
    ]
    return Table.from_rows(Schema.categorical(["A", "B", "C"]), rows)


@pytest.fixture
def measure_table() -> Table:
    """A table with a numeric Sales measure for Sum-aggregate tests."""
    data = {
        "Store": ["W", "W", "T", "T", "T", "C"],
        "Item": ["x", "y", "x", "x", "y", "z"],
        "Sales": [10.0, 20.0, 5.0, 5.0, 30.0, 1.0],
    }
    return Table.from_dict(data)


@pytest.fixture(scope="session")
def retail() -> Table:
    return generate_retail()


@pytest.fixture(scope="session")
def marketing() -> Table:
    return generate_marketing()


@pytest.fixture(scope="session")
def marketing7(marketing: Table) -> Table:
    return marketing.select(
        ["Income", "Sex", "MaritalStatus", "Age", "Education", "Occupation", "TimeInBayArea"]
    )


@pytest.fixture(scope="session")
def census_small() -> Table:
    """A small synthetic Census slice (fast enough for unit tests)."""
    return generate_census(20_000, n_columns=7)


def random_table(
    rng: np.random.Generator,
    n_rows: int = 30,
    n_columns: int = 3,
    domain: int = 3,
) -> Table:
    """A uniform random categorical table (helper for property tests)."""
    names = [f"c{i}" for i in range(n_columns)]
    rows = [
        tuple(f"v{rng.integers(domain)}" for _ in range(n_columns)) for _ in range(n_rows)
    ]
    return Table.from_rows(Schema.categorical(names), rows)
