"""Tests for the summary baselines and the §2.1 marginal-objective claim."""

from __future__ import annotations

import pytest

from repro.baselines import count_only_greedy, full_drilldown_size, top_k_itemsets
from repro.core import Rule, STAR, SizeWeight, brs, score_set
from repro.errors import ReproError
from repro.table import Table


class TestTopKItemsets:
    def test_returns_k_rules(self, tiny_table):
        rl = top_k_itemsets(tiny_table, SizeWeight(), 3)
        assert len(rl) == 3

    def test_selects_top_static_scores(self, tiny_table):
        """The selected rules are exactly the top-k by W·Count.

        (The returned RuleList re-sorts by weight for display, so the
        check compares score *sets*, not display order.)
        """
        wf = SizeWeight()
        selected = top_k_itemsets(tiny_table, wf, 4)
        from repro.baselines import apriori

        all_static = sorted(
            (
                wf.weight(f.to_rule(tiny_table)) * f.support
                for f in apriori(tiny_table, 1)
            ),
            reverse=True,
        )
        got_static = sorted((e.weight * e.count for e in selected), reverse=True)
        assert got_static == all_static[:4]

    def test_redundancy_pathology(self):
        """§2.1: without MCount the summary re-covers the same region.

        On a table dominated by (a, b) rows, the top-3 static-score
        rules are (a, b), (a, ?), (?, b) — all describing the same
        tuples — while BRS diversifies.
        """
        rows = [("a", "b")] * 50 + [("c", "d")] * 20 + [("e", "f")] * 15
        table = Table.from_rows(["X", "Y"], rows)
        wf = SizeWeight()
        topk = top_k_itemsets(table, wf, 3)
        assert set(topk.rules) == {
            Rule(["a", "b"]),
            Rule(["a", STAR]),
            Rule([STAR, "b"]),
        }
        smart = brs(table, wf, 3, 2.0)
        assert Rule(["c", "d"]) in smart.rules
        assert smart.score > score_set(topk.rules, table, wf)

    def test_brs_never_worse(self, tiny_table, marketing7):
        """BRS's Score dominates the frequency baseline on real data."""
        wf = SizeWeight()
        for table, mw in ((tiny_table, 3.0), (marketing7, 4.0)):
            smart = brs(table, wf, 4, mw)
            topk = top_k_itemsets(table, wf, 4, max_size=int(mw))
            assert smart.score >= score_set(topk.rules, table, wf) - 1e-9

    def test_k_validation(self, tiny_table):
        with pytest.raises(ReproError):
            top_k_itemsets(tiny_table, SizeWeight(), -1)

    def test_count_only_alias(self, tiny_table):
        a = top_k_itemsets(tiny_table, SizeWeight(), 3)
        b = count_only_greedy(tiny_table, SizeWeight(), 3)
        assert a.rules == b.rules


class TestFullDrilldownSize:
    def test_counts_present_values(self, tiny_table):
        assert full_drilldown_size(tiny_table, "B") == 3
        assert full_drilldown_size(tiny_table, 0) == 2

    def test_overload_comparison(self, marketing7):
        """§5.1: traditional drill-down shows every value; smart shows k."""
        sizes = [full_drilldown_size(marketing7, c) for c in marketing7.column_names]
        assert max(sizes) > 4  # the k the paper uses

    def test_numeric_column_rejected(self, measure_table):
        with pytest.raises(ReproError):
            full_drilldown_size(measure_table, "Sales")
