"""Tests for the a-priori frequent-itemset miner."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import apriori
from repro.core import count
from repro.errors import ReproError
from repro.table import Table
from tests.conftest import random_table


def brute_force_itemsets(table: Table, min_support: int, max_size: int | None = None):
    """Reference implementation: enumerate all itemsets and count."""
    cat_idx = table.schema.categorical_indexes
    limit = len(cat_idx) if max_size is None else max_size
    found = {}
    distinct_per_col = {
        c: sorted(set(table.categorical(c).to_list())) for c in cat_idx
    }
    for size in range(1, limit + 1):
        for cols in itertools.combinations(cat_idx, size):
            for values in itertools.product(*(distinct_per_col[c] for c in cols)):
                support = sum(
                    1
                    for row in table.rows()
                    if all(row[c] == v for c, v in zip(cols, values))
                )
                if support >= min_support:
                    found[tuple(zip(cols, values))] = support
    return found


class TestApriori:
    def test_level1_supports(self, tiny_table):
        itemsets = apriori(tiny_table, min_support=4, max_size=1)
        decoded = {
            tuple(
                (c, tiny_table.categorical(c).decode(code)) for c, code in f.items
            ): f.support
            for f in itemsets
        }
        assert decoded == {((0, "a"),): 5, ((1, "x"),): 4, ((2, "q"),): 4}

    def test_matches_brute_force(self, tiny_table):
        itemsets = apriori(tiny_table, min_support=2)
        got = {
            tuple(
                (c, tiny_table.categorical(c).decode(code)) for c, code in f.items
            ): f.support
            for f in itemsets
        }
        expected = brute_force_itemsets(tiny_table, 2)
        assert got == expected

    def test_downward_closure(self, tiny_table):
        """Every sub-itemset of a frequent itemset is frequent."""
        itemsets = apriori(tiny_table, min_support=2)
        keys = {f.items for f in itemsets}
        for f in itemsets:
            for drop in range(len(f.items)):
                sub = f.items[:drop] + f.items[drop + 1 :]
                if sub:
                    assert sub in keys

    def test_support_matches_rule_count(self, tiny_table):
        for f in apriori(tiny_table, min_support=1):
            rule = f.to_rule(tiny_table)
            assert f.support == count(rule, tiny_table)

    def test_min_support_validation(self, tiny_table):
        with pytest.raises(ReproError):
            apriori(tiny_table, min_support=0)

    def test_high_support_empty(self, tiny_table):
        assert apriori(tiny_table, min_support=100) == []

    def test_max_size(self, tiny_table):
        itemsets = apriori(tiny_table, min_support=1, max_size=2)
        assert max(len(f.items) for f in itemsets) <= 2

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_matches_brute_force_randomised(self, seed, min_support):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=20, n_columns=3, domain=2)
        got = {
            tuple((c, table.categorical(c).decode(code)) for c, code in f.items): f.support
            for f in apriori(table, min_support)
        }
        assert got == brute_force_itemsets(table, min_support)
