"""Unit tests for the experiment-runner plumbing."""

from __future__ import annotations

import pytest

from repro.experiments import (
    Series,
    SeriesPoint,
    report_table,
    run_fig1_empty_rule,
    run_mw_sweep,
    run_tables_1_2_3,
    timed,
    trend_slope,
    weighting_by_name,
)


class TestCommon:
    def test_timed_returns_result(self):
        seconds, value = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0

    def test_series_accessors(self):
        s = Series("x", (SeriesPoint(1, 2, {"a": 3.0}), SeriesPoint(2, 4, {"a": 5.0})))
        assert s.xs == [1, 2]
        assert s.ys == [2, 4]
        assert s.extra("a") == [3.0, 5.0]

    def test_trend_slope(self):
        assert trend_slope([0, 1, 2], [0, 2, 4]) == pytest.approx(2.0)
        assert trend_slope([1, 1, 1], [1, 2, 3]) == 0.0  # degenerate x

    def test_report_table_formats(self):
        text = report_table("Title", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_weighting_by_name(self, tiny_table):
        from repro.core import BitsWeight, SizeWeight

        assert isinstance(weighting_by_name("size", tiny_table), SizeWeight)
        assert isinstance(weighting_by_name("bits", tiny_table), BitsWeight)
        with pytest.raises(ValueError):
            weighting_by_name("magic", tiny_table)


class TestQualitativeRunners:
    def test_results_carry_text_and_rules(self):
        result = run_fig1_empty_rule()
        assert result.rules
        assert "Count" in result.text
        assert "Figure 1" in result.name

    def test_tables_runner_returns_pair(self):
        table2, table3 = run_tables_1_2_3()
        assert "Table 2" in table2.name
        assert "Table 3" in table3.name
        assert len(table2.rules) == 3 and len(table3.rules) == 3


class TestPerformanceRunners:
    def test_mw_sweep_shape(self, tiny_table):
        series = run_mw_sweep(tiny_table, "size", [1, 2], repeats=1)
        assert len(series.points) == 2
        assert series.points[0].x == 1.0
        assert all(p.y >= 0 for p in series.points)
        assert "score" in series.points[0].extra
