"""Tests for the synthetic dataset generators (DESIGN.md §3 substitutions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, STAR, count
from repro.datasets import (
    CENSUS_COLUMNS,
    CENSUS_DOMAIN_SIZES,
    ClusterSpec,
    MARKETING_COLUMNS,
    MARKETING_DOMAINS,
    generate_census,
    generate_marketing,
    generate_retail,
    generate_zipf_table,
    zipf_probabilities,
)
from repro.datasets.marketing import (
    N_FEMALE,
    N_MALE,
    N_FEMALE_LONG_BAY,
    N_MALE_NEVER_MARRIED_LONG_BAY,
)
from repro.errors import DatasetError


class TestRetail:
    def test_engineered_counts(self, retail):
        assert retail.n_rows == 6000
        assert count(Rule.from_named(retail, Store="Walmart"), retail) == 1000
        assert count(Rule.from_named(retail, Product="comforters", Region="MA-3"), retail) == 600
        assert count(Rule.from_named(retail, Store="Target", Product="bicycles"), retail) == 200
        assert count(Rule.from_named(retail, Store="Walmart", Product="cookies"), retail) == 200
        assert count(Rule.from_named(retail, Store="Walmart", Region="CA-1"), retail) == 150
        assert count(Rule.from_named(retail, Store="Walmart", Region="WA-5"), retail) == 130

    def test_scale_preserves_ratios(self):
        scaled = generate_retail(scale=2)
        assert scaled.n_rows == 12000
        assert count(Rule.from_named(scaled, Store="Walmart"), scaled) == 2000

    def test_sales_column_positive(self, retail):
        assert (retail.numeric("Sales").data > 0).all()

    def test_deterministic(self):
        assert generate_retail(seed=3).to_rows() == generate_retail(seed=3).to_rows()

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            generate_retail(scale=0)


class TestMarketing:
    def test_row_and_column_counts(self, marketing):
        assert marketing.n_rows == N_FEMALE + N_MALE == 8993
        assert marketing.column_names == MARKETING_COLUMNS
        assert len(MARKETING_COLUMNS) == 14

    def test_headline_quotas_exact(self, marketing):
        assert count(Rule.from_named(marketing, Sex="Female"), marketing) == N_FEMALE
        assert count(Rule.from_named(marketing, Sex="Male"), marketing) == N_MALE
        assert (
            count(
                Rule.from_named(marketing, Sex="Female", TimeInBayArea=">10 years"),
                marketing,
            )
            == N_FEMALE_LONG_BAY
        )
        assert (
            count(
                Rule.from_named(
                    marketing,
                    Sex="Male",
                    MaritalStatus="Never married",
                    TimeInBayArea=">10 years",
                ),
                marketing,
            )
            == N_MALE_NEVER_MARRIED_LONG_BAY
        )

    def test_quotas_hold_for_any_seed(self):
        table = generate_marketing(seed=999)
        assert count(Rule.from_named(table, Sex="Female"), table) == N_FEMALE
        assert (
            count(Rule.from_named(table, Sex="Female", TimeInBayArea=">10 years"), table)
            == N_FEMALE_LONG_BAY
        )

    def test_domains_at_most_ten_values(self, marketing):
        """The paper: 'each column has up to 10 distinct values'."""
        for name, size in marketing.distinct_counts().items():
            assert size <= 10, name
            assert size <= len(MARKETING_DOMAINS[name])

    def test_deterministic(self):
        a = generate_marketing(seed=5)
        b = generate_marketing(seed=5)
        assert a.to_rows()[:100] == b.to_rows()[:100]

    def test_correlations_present(self, marketing):
        """Education↔income: graduates skew to high income buckets."""
        grad_high = count(
            Rule.from_named(marketing, Education="Grad study", Income="$75k+"), marketing
        )
        grad_total = count(Rule.from_named(marketing, Education="Grad study"), marketing)
        low_high = count(
            Rule.from_named(marketing, Education="Grade 8 or less", Income="$75k+"),
            marketing,
        )
        low_total = count(
            Rule.from_named(marketing, Education="Grade 8 or less"), marketing
        )
        assert grad_high / grad_total > low_high / max(low_total, 1)

    def test_dual_income_functionally_consistent(self, marketing):
        """'Not married' dual-income iff not married (engineered FD)."""
        not_married_dual = count(
            Rule.from_named(marketing, MaritalStatus="Married", DualIncome="Not married"),
            marketing,
        )
        assert not_married_dual == 0


class TestCensus:
    def test_schema(self):
        table = generate_census(1000)
        assert table.n_columns == 68
        assert table.column_names == CENSUS_COLUMNS

    def test_column_prefix(self):
        table = generate_census(500, n_columns=7)
        assert table.column_names == CENSUS_COLUMNS[:7]

    def test_domain_sizes_bounded(self):
        table = generate_census(5000, n_columns=10)
        for name, distinct in table.distinct_counts().items():
            idx = CENSUS_COLUMNS.index(name)
            assert distinct <= CENSUS_DOMAIN_SIZES[idx]

    def test_skew_produces_heavy_top_value(self):
        from repro.table import compute_stats

        table = generate_census(20_000, n_columns=7)
        stats = compute_stats(table)
        assert stats.max_top_fraction > 0.3

    def test_deterministic(self):
        a = generate_census(200, seed=4)
        b = generate_census(200, seed=4)
        assert a.to_rows() == b.to_rows()

    def test_invalid_columns(self):
        with pytest.raises(DatasetError):
            generate_census(10, n_columns=0)


class TestZipf:
    def test_probabilities_normalised(self):
        p = zipf_probabilities(10, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) <= 0).all()  # decreasing in rank

    def test_zero_skew_uniform(self):
        p = zipf_probabilities(4, 0.0)
        assert np.allclose(p, 0.25)

    def test_invalid_domain(self):
        with pytest.raises(DatasetError):
            zipf_probabilities(0, 1.0)

    def test_table_shape(self):
        table = generate_zipf_table(100, [3, 5], skew=1.0, seed=1)
        assert table.n_rows == 100
        assert table.distinct_counts()["c0"] <= 3

    def test_cluster_correlation(self):
        """Clustered columns co-vary far above independence."""
        spec = ClusterSpec(columns=(0, 1), n_latent=3, strength=0.9)
        table = generate_zipf_table(20_000, [6, 6], skew=0.0, clusters=[spec], seed=2)
        # Measure mutual co-occurrence of top pairs: with strength 0.9
        # some (v0, v1) pair occurs far more than the 1/36 independence rate.
        from collections import Counter

        pairs = Counter(table.rows())
        top = pairs.most_common(1)[0][1] / table.n_rows
        assert top > 3 / 36

    def test_cluster_validation(self):
        with pytest.raises(DatasetError):
            generate_zipf_table(
                10, [2, 2], clusters=[ClusterSpec(columns=(0, 5))], seed=0
            )
        with pytest.raises(DatasetError):
            generate_zipf_table(
                10,
                [2, 2],
                clusters=[ClusterSpec(columns=(0,)), ClusterSpec(columns=(0,))],
                seed=0,
            )

    def test_per_column_skew(self):
        table = generate_zipf_table(5000, [5, 5], skew=[0.0, 2.0], seed=3)
        from repro.table import compute_stats

        stats = compute_stats(table)
        assert stats.columns[1].top_fraction > stats.columns[0].top_fraction

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            generate_zipf_table(10, [])
        with pytest.raises(DatasetError):
            generate_zipf_table(-1, [2])
        with pytest.raises(DatasetError):
            generate_zipf_table(10, [2], skew=[1.0, 2.0])
        with pytest.raises(DatasetError):
            generate_zipf_table(10, [2], column_names=["a", "b"])
