"""Durable sessions: snapshot/restore, the reaper, and lifecycle race fixes.

Four claims pinned here:

1. **Restart equivalence** — kill a :class:`DrillDownServer`
   mid-exploration, construct a new one over the same ``persist_dir``,
   re-register the same table, and the restored session's rendered
   tree *and* the rule lists of its next expansion are bit-identical
   to an uninterrupted session (including measure-weighted and
   star-expanded trees).
2. **Robust storage** — corrupt, truncated, and stale-version snapshot
   files are skipped with a counter, never fatal; writes are atomic.
3. **The background reaper** — TTL-expired sessions are reaped by the
   thread with zero intervening registry traffic, and dirty sessions
   are checkpointed on the interval.
4. **The satellite bugfix regressions** — eviction no longer closes
   sessions under the registry lock; per-entry expansion counters are
   updated under the entry lock; a close racing an in-flight expansion
   cannot repopulate the retained-context cache; explicit ``k=0`` /
   ``mw<=0`` are rejected (HTTP 400) instead of silently defaulted;
   refunds follow the documented rejected-before-table-work policy.
"""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.core.rule import STAR, Rule, Wildcard
from repro.errors import (
    ServingError,
    SessionError,
    SnapshotError,
    UnknownSessionError,
)
from repro.serving import DrillDownServer, SessionRegistry, SnapshotStore
from repro.serving.persistence import (
    SNAPSHOT_VERSION,
    ReaperThread,
    SessionSnapshot,
    decode_rule,
    encode_rule,
)
from repro.session import DrillDownSession
from repro.table.bucketize import Interval


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _explored_server(persist_dir, table, **kwargs) -> tuple[DrillDownServer, str]:
    """A server with one two-level-expanded session over ``table``."""
    server = DrillDownServer(persist_dir=persist_dir, **kwargs)
    server.register_table("retail", table)
    sid = server.create_session("retail", tenant="alice", k=3, mw=3.0)
    server.expand(sid)
    server.expand(sid, server.session(sid).root.children[0].rule)
    return server, sid


# -- wire format -----------------------------------------------------------------


class TestRuleEncoding:
    def test_value_types_round_trip(self):
        rule = Rule(
            [
                STAR,
                "Walmart",
                3,
                2.5,
                True,
                None,
                Interval(0.0, 10.0),
                Interval(10.0, 20.0, closed_right=True),
            ]
        )
        decoded = decode_rule(encode_rule(rule))
        assert decoded == rule
        assert isinstance(decoded[0], Wildcard)
        assert decoded[5] is None  # a literal None value, not the wildcard

    def test_numpy_scalars_coerce(self):
        np = pytest.importorskip("numpy")
        decoded = decode_rule(encode_rule(Rule([np.int64(7), np.float64(1.5)])))
        assert decoded == Rule([7, 1.5])

    def test_json_round_trip_is_exact(self):
        rule = Rule([0.1 + 0.2, "x"])  # a float that doesn't print prettily
        wire = json.loads(json.dumps(encode_rule(rule)))
        assert decode_rule(wire) == rule

    def test_unserialisable_value_raises_typed_error(self):
        with pytest.raises(SnapshotError):
            encode_rule(Rule([("tuples", "are", "hashable")]))


# -- the store -------------------------------------------------------------------


class TestSnapshotStore:
    def _snapshot(self, session, sid="sess-000001", table="retail"):
        return SessionSnapshot(
            session_id=sid,
            table=table,
            tenant="alice",
            wf_spec="size",
            state=session.snapshot(),
            expansions=len(session.history),
        )

    def test_save_load_round_trip(self, tmp_path, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        store = SnapshotStore(tmp_path)
        store.save(self._snapshot(session))
        loaded = store.load("sess-000001")
        restored = DrillDownSession.restore(retail, loaded.state)
        assert restored.to_text() == session.to_text()
        assert [r["rule"] for r in loaded.state["history"]] == [
            r.rule for r in session.history
        ]

    def test_atomic_write_leaves_no_temp_files(self, tmp_path, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        store = SnapshotStore(tmp_path)
        for _ in range(3):
            store.save(self._snapshot(session))
        assert [p.name for p in tmp_path.iterdir()] == ["sess-000001.jsonl"]

    def test_corrupt_snapshot_skipped_with_counter(self, tmp_path, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        store = SnapshotStore(tmp_path)
        store.save(self._snapshot(session))
        (tmp_path / "sess-000002.jsonl").write_text("{ not json\n")
        # Truncated: a meta header but no tree terminator.
        good = (tmp_path / "sess-000001.jsonl").read_text().splitlines()
        (tmp_path / "sess-000003.jsonl").write_text(good[0] + "\n")
        loaded = SnapshotStore(tmp_path).load_all()
        assert [s.session_id for s in loaded] == ["sess-000001"]

    def test_stale_version_skipped_with_counter(self, tmp_path, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        store = SnapshotStore(tmp_path)
        path = store.save(self._snapshot(session))
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["version"] = SNAPSHOT_VERSION + 1
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        reader = SnapshotStore(tmp_path)
        assert reader.load_all() == []
        assert reader.skipped_version == 1 and reader.skipped_corrupt == 0

    def test_delete_and_unsafe_ids(self, tmp_path, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        store = SnapshotStore(tmp_path)
        store.save(self._snapshot(session))
        assert store.delete("sess-000001") is True
        assert store.delete("sess-000001") is False
        with pytest.raises(SnapshotError):
            store.save(self._snapshot(session, sid="../escape"))


# -- restart equivalence ---------------------------------------------------------


class TestRestartEquivalence:
    def _uninterrupted(self, table, **session_kwargs) -> DrillDownSession:
        session = DrillDownSession(table, k=3, mw=3.0, **session_kwargs)
        session.expand(session.root.rule)
        session.expand(session.root.children[0].rule)
        return session

    def test_restored_render_and_next_expansion_bit_identical(self, tmp_path, retail):
        reference = self._uninterrupted(retail)
        server, sid = _explored_server(tmp_path, retail)
        server.close()  # graceful shutdown checkpoints the dirty session

        revived = DrillDownServer(persist_dir=tmp_path)
        revived.register_table("retail", retail)
        assert revived.restored == 1 and revived.restore_skipped == 0
        entry = revived.registry.entry(sid)
        assert entry.tenant == "alice" and entry.expansions == 2
        assert revived.render(sid) == reference.to_text()
        next_rule = reference.root.children[1].rule
        expected = [c.rule for c in reference.expand(next_rule)]
        restored = [c.rule for c in revived.expand(sid, next_rule)]
        assert restored == expected
        assert revived.render(sid) == reference.to_text()
        revived.close()

    def test_measure_weighted_tree_round_trips(self, tmp_path, retail):
        reference = DrillDownSession(retail, k=3, mw=3.0, measure="Sales")
        reference.expand(reference.root.rule)
        with DrillDownServer(persist_dir=tmp_path) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", k=3, mw=3.0, measure="Sales")
            server.expand(sid)
            assert server.checkpoint(sid) is True
        revived = DrillDownServer(persist_dir=tmp_path)
        revived.register_table("retail", retail)
        assert revived.render(sid) == reference.to_text()
        assert revived.session(sid).measure == "Sales"
        revived.close()

    def test_star_expanded_tree_round_trips(self, tmp_path, retail):
        reference = DrillDownSession(retail, k=3, mw=3.0)
        first = reference.expand(reference.root.rule)
        star_parent = first[0].rule
        star_column = next(
            i for i, v in enumerate(star_parent) if isinstance(v, Wildcard)
        )
        reference.expand_star(star_parent, star_column)
        with DrillDownServer(persist_dir=tmp_path) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", k=3, mw=3.0)
            server.expand(sid)
            server.expand_star(sid, star_parent, star_column)
        revived = DrillDownServer(persist_dir=tmp_path)
        revived.register_table("retail", retail)
        assert revived.render(sid) == reference.to_text()
        node = revived.session(sid).node(star_parent)
        assert node.expanded_via == "star"
        revived.close()

    def test_restored_session_reuses_shared_context_store(self, tmp_path, retail):
        """First expansion after restore leases from the store when a
        sibling configuration already published — no full re-mine."""
        server, sid = _explored_server(tmp_path, retail)
        server.close()
        revived = DrillDownServer(persist_dir=tmp_path)
        revived.register_table("retail", retail)
        other = revived.create_session("retail", tenant="bob", k=3, mw=3.0)
        revived.expand(other)  # publishes the root prototype
        hits_before = revived.contexts.hits
        revived.collapse(sid, revived.session(sid).root.rule)
        revived.expand(sid)  # restored session: no retained context → lease
        assert revived.contexts.hits == hits_before + 1
        revived.close()

    def test_unrestorable_snapshots_are_skipped_not_fatal(self, tmp_path, retail, tiny_table):
        server, sid = _explored_server(tmp_path, retail)
        server.close()
        revived = DrillDownServer(persist_dir=tmp_path)
        # Same name, structurally different table: columns no longer match.
        revived.register_table("retail", tiny_table)
        assert revived.restored == 0 and revived.restore_skipped == 1
        with pytest.raises(UnknownSessionError):
            revived.session(sid)
        revived.close()

    def test_new_ids_never_collide_with_snapshots(self, tmp_path, retail):
        server, sid = _explored_server(tmp_path, retail)
        server.close()
        revived = DrillDownServer(persist_dir=tmp_path)
        # "retail" is never re-registered: the snapshot stays pending,
        # but its id must still be reserved for fresh sessions.
        revived.register_table("other", retail)
        new_sid = revived.create_session("other")
        assert new_sid != sid
        assert int(new_sid.split("-")[1]) > int(sid.split("-")[1])
        revived.close()

    def test_readonly_touches_refresh_persisted_recency(self, tmp_path, retail):
        """Render/lookup move ``last_used`` without dirtying the tree;
        the dirty-only sweep must still rewrite the snapshot, or a warm
        restart revives an active session as long-idle (and the reaper
        kills it)."""
        clock = FakeClock()
        server, sid = _explored_server(tmp_path, retail, clock=clock)
        assert server.checkpoint_all() == 1  # idle 0 persisted
        clock.advance(500.0)
        server.render(sid)  # read-only touch: last_used = 500, not dirty
        clock.advance(100.0)
        assert server.checkpoint_all() == 1  # recency stale → re-saved
        assert server.store.load(sid).idle_seconds == 100.0
        assert server.checkpoint_all() == 0  # untouched since: clean sweep
        server.close()

    def test_failed_durability_wiring_closes_the_catalog(self, tmp_path, retail, lite_pool):
        """A constructor failure after the catalog exists must not leak
        a catalog-owned pool; a borrowed pool must survive."""
        with pytest.raises(SnapshotError):
            DrillDownServer(pool=lite_pool, persist_dir=tmp_path, reaper_interval=-1.0)
        assert not lite_pool.closed  # borrowed: never closed for us
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        with pytest.raises(OSError):
            DrillDownServer(persist_dir=blocker / "sub")

    def test_same_columns_different_data_is_rejected(self, retail):
        """Column names alone are not identity: a same-schema table
        with different rows must not serve a stale tree."""
        from repro.table import Schema, Table

        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        state = session.snapshot()
        impostor = Table.from_rows(
            Schema.categorical(list(retail.column_names)),
            [("a", "b", "c", "d")] * 8,
        )
        with pytest.raises(SessionError):
            DrillDownSession.restore(impostor, state)

    def test_checkpoint_sweep_cannot_resurrect_a_closed_session(self, tmp_path, retail):
        """A sweep racing a close: the save may re-create the snapshot
        the close just deleted — the post-save liveness check undoes it."""
        server, sid = _explored_server(tmp_path, retail)
        entry = server.registry.peek(sid)  # the sweep's stale handle
        server.close_session(sid)  # pops the entry, deletes the snapshot
        assert server._checkpoint_entry(entry, only_dirty=False) is False
        assert sid not in server.store, "sweep resurrected a closed session"
        server.close()

    def test_deterministic_save_failure_is_not_retried_forever(
        self, tmp_path, retail, monkeypatch
    ):
        server, sid = _explored_server(tmp_path, retail)
        calls = []

        def doomed(snapshot):
            calls.append(snapshot.session_id)
            raise SnapshotError("unserialisable rule value")

        monkeypatch.setattr(server.store, "save", doomed)
        assert server.checkpoint_all() == 0
        assert server.checkpoint_all() == 0  # dirty was not re-marked
        assert calls == [sid] and server.checkpoint_errors == 1
        server.close()

    def test_transient_save_failure_is_retried(self, tmp_path, retail, monkeypatch):
        server, sid = _explored_server(tmp_path, retail)
        real_save, fails = server.store.save, []

        def flaky(snapshot):
            if not fails:
                fails.append(snapshot.session_id)
                raise OSError("disk full")
            return real_save(snapshot)

        monkeypatch.setattr(server.store, "save", flaky)
        assert server.checkpoint_all() == 0  # first sweep fails...
        assert server.checkpoint_all() == 1  # ...still dirty: retried
        assert server.checkpoint_errors == 1
        monkeypatch.undo()
        server.close()

    def test_frozen_wall_clock_downtime_corrects_restored_idle(
        self, tmp_path, retail
    ):
        """The wall_clock seam end to end: idle before the save, the
        measured downtime, and idle after the restore must add exactly
        (frozen clocks — no tolerance, no sleeps).

        Monotonic clocks restart from an arbitrary zero, so recency is
        persisted as idle-seconds plus a wall ``saved_at``; on restore
        the server adds ``wall_clock() - saved_at`` so TTL kept counting
        while the process was down.
        """
        clock, wall = FakeClock(), FakeClock()
        wall.advance(1_000_000.0)  # wall time is an epoch, not zero
        server, sid = _explored_server(
            tmp_path, retail, clock=clock, wall_clock=wall
        )
        clock.advance(40.0)  # idle 40 s before the checkpoint
        assert server.checkpoint_all() == 1
        assert server.store.load(sid).saved_at == wall.now  # seam stamps it
        server.close()

        wall.advance(300.0)  # the server is down for 300 wall seconds
        revived_clock = FakeClock()  # fresh monotonic origin, as after reboot
        revived = DrillDownServer(
            persist_dir=tmp_path, clock=revived_clock, wall_clock=wall
        )
        revived.register_table("retail", retail)
        assert revived.restored == 1
        entry = revived.registry.peek(sid)
        # idle = 40 (pre-save) + 300 (downtime), on the *new* monotonic axis.
        assert revived_clock.now - entry.last_used == pytest.approx(340.0)
        revived.close()

    def test_frozen_wall_clock_uptime_in_stats(self, retail):
        wall = FakeClock()
        wall.advance(5_000.0)
        server = DrillDownServer(wall_clock=wall)
        server.register_table("retail", retail)
        wall.advance(12.5)
        assert server.stats()["uptime_seconds"] == 12.5
        server.close()

    def test_closing_a_session_deletes_its_snapshot(self, tmp_path, retail):
        server, sid = _explored_server(tmp_path, retail)
        assert server.checkpoint(sid) is True
        assert sid in server.store
        server.close_session(sid)
        assert sid not in server.store  # orphan cleanup on close
        server.close()
        revived = DrillDownServer(persist_dir=tmp_path)
        revived.register_table("retail", retail)
        assert revived.restored == 0
        revived.close()


# -- the reaper ------------------------------------------------------------------


class TestReaper:
    def test_background_thread_reaps_with_zero_registry_traffic(self, tmp_path, retail):
        clock = FakeClock()
        server = DrillDownServer(
            persist_dir=tmp_path,
            ttl_seconds=60.0,
            reaper_interval=0.01,
            clock=clock,
        )
        server.register_table("retail", retail)
        sid = server.create_session("retail")
        assert server.checkpoint(sid) is True
        clock.advance(61.0)
        # No registry operation from here on: only the reaper thread
        # may expire the session.
        deadline = threading.Event()
        for _ in range(500):
            if server.registry.ttl_evictions:
                break
            deadline.wait(0.01)
        assert server.registry.ttl_evictions == 1
        assert sid not in server.registry
        assert sid not in server.store  # reaped sessions do not resurrect
        server.close()

    def test_run_once_reaps_and_checkpoints_deterministically(self, tmp_path, retail):
        clock = FakeClock()
        server = DrillDownServer(persist_dir=tmp_path, ttl_seconds=60.0, clock=clock)
        server.register_table("retail", retail)
        keep = server.create_session("retail")
        server.expand(keep)
        lose = server.create_session("retail", tenant="idle")
        reaper = ReaperThread(
            reap=server.reap, checkpoint=server.checkpoint_all, interval=5.0
        )
        clock.advance(30.0)
        server.session(keep)  # touch: keep survives the sweep
        clock.advance(31.0)
        reaper.run_once()
        assert reaper.reaped == 1 and lose not in server.registry
        assert reaper.checkpointed == 1  # only the dirty survivor
        reaper.run_once()
        assert reaper.checkpointed == 1  # clean now: nothing rewritten
        assert keep in server.store
        server.close()

    def test_session_that_outsleeps_ttl_across_restart_is_reaped(self, tmp_path, retail):
        clock = FakeClock()
        server, sid = _explored_server(tmp_path, retail, ttl_seconds=3600.0, clock=clock)
        clock.advance(1800.0)
        server.close()  # checkpoint records 1800 s of idleness
        revived_clock = FakeClock()
        revived = DrillDownServer(
            persist_dir=tmp_path, ttl_seconds=3600.0, clock=revived_clock
        )
        revived.register_table("retail", retail)
        assert revived.restored == 1
        revived_clock.advance(2000.0)  # 1800 + 2000 > 3600: now stale
        assert revived.reap() == [sid]
        revived.close()

    def test_checkpoint_interval_shorter_than_reap_interval_is_honoured(
        self, tmp_path, retail
    ):
        """The durability-first configuration (frequent checkpoints,
        lazy reaping) must checkpoint at the checkpoint cadence, not
        once per reap tick."""
        server = DrillDownServer(
            persist_dir=tmp_path,
            reaper_interval=60.0,  # far beyond the test's lifetime
            checkpoint_interval=0.01,
        )
        server.register_table("retail", retail)
        sid = server.create_session("retail")
        server.expand(sid)  # dirty
        waiter = threading.Event()
        for _ in range(500):
            if sid in server.store:
                break
            waiter.wait(0.01)
        assert sid in server.store, "background checkpoint never fired"
        assert server.reaper.reaped == 0  # the reap duty never became due
        server.close()

    def test_reaper_survives_failing_callbacks(self):
        reaper = ReaperThread(
            reap=lambda: 1 / 0, checkpoint=lambda: 1 / 0, interval=5.0
        )
        reaper.run_once()
        assert reaper.errors == 2 and reaper.ticks == 1

    def test_shutdown_checkpoints_without_explicit_call(self, tmp_path, retail):
        server, sid = _explored_server(tmp_path, retail)
        assert len(server.store) == 0  # nothing checkpointed yet
        server.close()
        assert sid in SnapshotStore(tmp_path).session_ids()


# -- satellite bugfix regressions ------------------------------------------------


class SlowCloseSession:
    """Duck-typed session whose ``close()`` blocks until released."""

    def __init__(self):
        self.close_started = threading.Event()
        self.release = threading.Event()
        self.closed = False

    def close(self):
        self.close_started.set()
        assert self.release.wait(timeout=10.0)
        self.closed = True


class TestEvictionDoesNotHoldRegistryLock:
    def test_lookup_proceeds_while_eviction_closes(self, retail):
        """LRU eviction closing a slow session must not stall other
        tenants' lookups (victims are closed after ``_lock`` release)."""
        registry = SessionRegistry(max_sessions=2)
        slow = SlowCloseSession()
        registry.add(slow)  # the LRU victim-to-be
        survivor = DrillDownSession(retail, k=3, mw=3.0)
        survivor_id = registry.add(survivor).session_id

        adder = threading.Thread(
            target=registry.add, args=(DrillDownSession(retail, k=3, mw=3.0),)
        )
        adder.start()
        assert slow.close_started.wait(timeout=10.0)  # eviction is mid-close

        looked_up = []
        lookup = threading.Thread(
            target=lambda: looked_up.append(registry.get(survivor_id))
        )
        lookup.start()
        lookup.join(timeout=2.0)
        assert not lookup.is_alive(), "lookup stalled behind a victim's close()"
        assert looked_up == [survivor]

        slow.release.set()
        adder.join(timeout=10.0)
        assert slow.closed

    def test_on_evict_callback_may_reenter_registry(self, retail):
        """The eviction hook runs outside ``_lock`` — re-entering the
        registry from it must not deadlock."""
        clock = FakeClock()
        registry = SessionRegistry(ttl_seconds=10.0, clock=clock)
        seen = []
        registry.on_evict = lambda entry, reason: seen.append(
            (entry.session_id, reason, registry.session_ids())
        )
        sid = registry.add(DrillDownSession(retail, k=3, mw=3.0)).session_id
        clock.advance(11.0)
        assert registry.evict_expired() == [sid]
        assert seen == [(sid, "ttl", ())]


class TestExpansionCounterThreadSafety:
    def test_concurrent_expansions_never_lose_counter_updates(self, server):
        sid = server.create_session("retail")
        threads, per_thread = 8, 50
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                server._run_expansion(sid, lambda session: [])

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent GIL handoffs
        try:
            workers = [threading.Thread(target=hammer) for _ in range(threads)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert server.registry.entry(sid).expansions == threads * per_thread
        assert server.registry.stats()["expansions"] == threads * per_thread


class TestCloseVsRetainRace:
    def test_close_during_expand_cannot_repin_contexts(self, retail, monkeypatch):
        """A close landing mid-mining must leave ``_search_contexts``
        empty — retention after ``clear_search_cache`` pinned the table
        and candidate lattice past session death."""
        session = DrillDownSession(retail, k=3, mw=3.0)
        import repro.session.session as session_module

        real = session_module.rule_drilldown

        def close_mid_mining(*args, **kwargs):
            result = real(*args, **kwargs)
            session.close()  # the registry evicting us mid-expand
            return result

        monkeypatch.setattr(session_module, "rule_drilldown", close_mid_mining)
        children = session.expand(session.root.rule)
        assert children  # the in-flight expansion still completed
        assert session.closed
        assert session._search_contexts == {}, "closed session retained a context"


class TestExplicitKZeroAndMwValidation:
    def test_session_rejects_k_zero_instead_of_defaulting(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        for bad in (0, -1, 2.5, True):
            with pytest.raises(SessionError):
                session.expand(session.root.rule, k=bad)
        assert not session.root.children  # nothing was silently mined
        with pytest.raises(SessionError):
            session.expand_star(session.root.rule, 0, k=0)
        with pytest.raises(SessionError):
            session.expand_traditional(session.root.rule, 0, k=0)

    def test_integral_numpy_k_still_accepted(self, retail):
        import numpy as np

        session = DrillDownSession(retail, k=np.int64(3), mw=3.0)
        children = session.expand(session.root.rule, k=np.int64(2))
        assert len(children) == 2 and session.k == 3

    def test_constructor_validates_k_and_mw(self, retail):
        for kwargs in ({"k": 0}, {"k": -3}, {"mw": 0.0}, {"mw": -1.0}, {"mw": "x"}):
            with pytest.raises(SessionError):
                DrillDownSession(retail, **kwargs)

    def test_http_maps_invalid_k_and_mw_to_400(self, retail):
        import urllib.error
        import urllib.request
        from repro.serving.http import serve

        tier = DrillDownServer()
        tier.register_table("retail", retail)
        httpd = serve(tier, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"

        def post(path, body):
            request = urllib.request.Request(
                base + path, data=json.dumps(body).encode(), method="POST"
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        try:
            for body in (
                {"table": "retail", "k": 0},
                {"table": "retail", "k": -2},
                {"table": "retail", "mw": 0},
                {"table": "retail", "mw": -5.0},
            ):
                status, payload = post("/sessions", body)
                assert status == 400, payload
            status, payload = post("/sessions", {"table": "retail"})
            assert status == 201
            sid = payload["session_id"]
            status, payload = post(
                f"/sessions/{sid}/expand", {"rule": [None] * 4, "k": 0}
            )
            assert status == 400, payload
        finally:
            httpd.shutdown()
            tier.close()


class TestRefundPolicy:
    def test_pre_table_work_rejection_refunds(self, retail):
        server = DrillDownServer(tenant_budget=20_000.0)
        server.register_table("retail", retail)
        sid = server.create_session("retail", tenant="alice")
        balance = server.scheduler.balance("alice")
        with pytest.raises(SessionError):
            server.expand(sid, k=0)  # rejected before any mining
        assert server.scheduler.balance("alice") == balance
        server.close()

    def test_unknown_column_rejection_refunds(self, retail):
        """A column typo is a SchemaError, not a SessionError — still a
        pre-mining rejection, still refunded (repeating a typo must not
        drain the bucket)."""
        server = DrillDownServer(tenant_budget=20_000.0)
        server.register_table("retail", retail)
        sid = server.create_session("retail", tenant="alice")
        balance = server.scheduler.balance("alice")
        from repro.errors import ReproError

        root = server.session(sid).root.rule
        for _ in range(3):
            with pytest.raises(ReproError):
                server.expand_star(sid, root, "NoSuchColumn")
        assert server.scheduler.balance("alice") == balance
        server.close()

    def test_mid_mining_failure_keeps_the_charge(self, retail):
        server = DrillDownServer(tenant_budget=20_000.0)
        server.register_table("retail", retail)
        sid = server.create_session("retail", tenant="alice")
        balance = server.scheduler.balance("alice")

        def explode(session):
            raise RuntimeError("worker died mid-pass")

        with pytest.raises(RuntimeError):
            server._run_expansion(sid, explode)
        # The counting pass scanned rows: the documented policy keeps
        # the charge for failures *after* table work began.
        assert server.scheduler.balance("alice") == balance - retail.n_rows
        assert server.registry.entry(sid).expansions == 0
        server.close()


class TestTableVersionProvenance:
    """Snapshots record which catalog version a session was pinned to."""

    @pytest.mark.versioning
    def test_table_version_round_trips(self, tmp_path, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        store = SnapshotStore(tmp_path)
        store.save(SessionSnapshot(
            session_id="sess-000009",
            table="retail",
            tenant="alice",
            wf_spec="size",
            state=session.snapshot(),
            expansions=len(session.history),
            table_version=3,
        ))
        assert store.load("sess-000009").table_version == 3

    @pytest.mark.versioning
    def test_missing_table_version_decodes_to_none(self, tmp_path, retail):
        """Pre-versioning snapshots (no ``table_version`` key) must keep
        loading — the field is provenance, not an address."""
        session = DrillDownSession(retail, k=3, mw=3.0)
        store = SnapshotStore(tmp_path)
        store.save(SessionSnapshot(
            session_id="sess-000010",
            table="retail",
            tenant="alice",
            wf_spec="size",
            state=session.snapshot(),
            expansions=0,
        ))
        path = store.root / "sess-000010.jsonl"
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta.pop("table_version", None)
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        assert store.load("sess-000010").table_version is None
