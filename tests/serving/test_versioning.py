"""Versioned, append-able tables: the ISSUE 10 equivalence pins.

The contract: ``append_rows`` creates a *new table version* whose
serving behaviour is bit-identical to registering a table built from
the same rows from scratch — across the incremental machinery
(grow-and-copy pool exports, delta-maintained first-pick marginals,
lazily rebuilt sample sets) that makes the append cheap — while every
session opened before the append stays pinned to its version and does
not move by a byte.  Superseded versions are reaped when their last
pinned session closes, and reaping (like ``unregister``) purges the
version's persisted sample/marginal artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.first_pick import build_first_pick_cache, extend_first_pick_cache
from repro.core.rule import STAR, Rule
from repro.errors import (
    ReproError,
    ServingError,
    TableConflictError,
    UnknownTableError,
)
from repro.serving import DrillDownServer, ShardRouter, TableCatalog, TableVersion
from repro.serving.catalog import WEIGHT_FUNCTIONS
from repro.table import Schema, Table
from tests.conftest import random_table

SCHEMA = Schema.categorical(["A", "B", "C"])
BASE_ROWS = [
    ("a", "x", "p"),
    ("a", "x", "p"),
    ("a", "x", "q"),
    ("a", "y", "q"),
    ("b", "x", "p"),
    ("b", "y", "q"),
    ("b", "z", "r"),
]
# The tail grows two dictionaries ("c", "s") and reuses old values.
EXTRA_ROWS = [
    ("c", "x", "p"),
    ("a", "z", "s"),
    ("c", "y", "s"),
]


def _root(table: Table) -> Rule:
    return Rule([STAR] * table.n_columns)


# -- table-level bit identity ----------------------------------------------------


class TestAppendBitIdentity:
    def test_append_rows_matches_from_rows(self):
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        appended = base.append_rows(EXTRA_ROWS)
        cold = Table.from_rows(SCHEMA, BASE_ROWS + EXTRA_ROWS)
        assert appended == cold
        assert appended.schema is base.schema  # schema identity preserved
        for pos in range(base.n_columns):
            a, c = appended.column(pos), cold.column(pos)
            assert np.array_equal(a.codes, c.codes)
            assert a.codes.dtype == c.codes.dtype
            assert tuple(a.values) == tuple(c.values)

    def test_append_preserves_existing_codes(self):
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        appended = base.append_rows(EXTRA_ROWS)
        for pos in range(base.n_columns):
            old = base.column(pos).codes
            assert np.array_equal(appended.column(pos).codes[: len(old)], old)

    def test_append_rejects_bad_rows(self):
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        with pytest.raises(ReproError):
            base.append_rows([("a", "x")])  # wrong width

    def test_delta_marginals_match_cold_build(self):
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        appended = base.append_rows(EXTRA_ROWS)
        old_cache = build_first_pick_cache(base, WEIGHT_FUNCTIONS["size"](base), 5.0)
        wf = WEIGHT_FUNCTIONS["size"](appended)
        delta = extend_first_pick_cache(old_cache, appended, wf)
        assert delta is not None, "size weighting must take the delta path"
        cold = build_first_pick_cache(appended, wf, 5.0)
        assert len(delta.entries) == len(cold.entries)
        for d_entry, c_entry in zip(delta.entries, cold.entries):
            assert (d_entry is None) == (c_entry is None)
            if d_entry is None:
                continue
            d_weight, d_supported, d_counts, d_marginals = d_entry
            c_weight, c_supported, c_counts, c_marginals = c_entry
            assert d_weight == c_weight
            assert np.array_equal(d_supported, c_supported)
            assert np.array_equal(d_counts, c_counts)
            # Bit-identical, not just numerically close: the delta fold
            # replays the cold pass's IEEE accumulation order exactly.
            assert d_marginals.tobytes() == c_marginals.tobytes()

    def test_delta_declines_weight_changing_appends(self):
        """``bits`` weights depend on dictionary sizes, which the append
        grows — the extension must refuse and force a cold rebuild."""
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        appended = base.append_rows(EXTRA_ROWS)
        old_cache = build_first_pick_cache(base, WEIGHT_FUNCTIONS["bits"](base), 5.0)
        assert old_cache is not None
        wf = WEIGHT_FUNCTIONS["bits"](appended)
        assert extend_first_pick_cache(old_cache, appended, wf) is None


# -- the serving-tier equivalence pin --------------------------------------------


def _tier_factories():
    return [
        pytest.param(lambda: DrillDownServer(), id="server-serial"),
        pytest.param(lambda: DrillDownServer(n_workers=2), id="server-pool"),
        pytest.param(lambda: ShardRouter(1), id="router-1"),
        pytest.param(lambda: ShardRouter(2), id="router-2"),
        pytest.param(lambda: ShardRouter(4), id="router-4"),
    ]


class TestEquivalencePin:
    @pytest.mark.slow
    @pytest.mark.parametrize("make_tier", _tier_factories())
    def test_append_equals_fresh_registration(self, make_tier):
        """The acceptance pin: after ``append_rows``, a fresh session's
        expansions/renders are bit-identical to a session over a freshly
        registered table built from the same rows, and a pre-append
        session keeps rendering its pinned version unchanged."""
        rng = np.random.default_rng(42)
        base = random_table(rng, n_rows=70, n_columns=3, domain=4)
        extra = [
            tuple(f"v{rng.integers(6)}" for _ in range(3)) for _ in range(9)
        ]
        full_rows = [
            tuple(base.column(pos).values[base.column(pos).codes[row]]
                  for pos in range(3))
            for row in range(base.n_rows)
        ] + extra
        full = Table.from_rows(base.schema, full_rows)

        reference = DrillDownServer()
        try:
            reference.register_table("t", full)
            ref_sid = reference.create_session("t")
            reference.expand(ref_sid)
            ref_render = reference.render(ref_sid)
        finally:
            reference.close()

        tier = make_tier()
        try:
            tier.register_table("t", base)
            pinned = tier.create_session("t")
            tier.expand(pinned)
            pinned_render = tier.render(pinned)

            record = tier.append_rows("t", extra)
            assert record["version"] == 2 and record["rows"] == full.n_rows

            fresh = tier.create_session("t")
            tier.expand(fresh)
            assert tier.render(fresh) == ref_render
            # The pre-append session must not move by a byte.
            assert tier.render(pinned) == pinned_render
        finally:
            tier.close()

    def test_replace_table_swaps_versions(self, tiny_table, retail):
        with DrillDownServer() as tier:
            tier.register_table("t", tiny_table)
            record = tier.replace_table("t", retail)
            assert record["version"] == 2
            sid = tier.create_session("t")
            assert len(tier.session_columns(sid)) == retail.n_columns

    def test_conflict_travels_the_wire(self, tiny_table, retail):
        """Satellite 2 end to end: the typed conflict crosses the shard
        pipe protocol as a ``TableConflictError``, not a generic 500."""
        with ShardRouter(2) as router:
            router.register_table("t", tiny_table)
            # The router short-circuits same-object idempotence locally,
            # so force the conflict shard-side via a second router op.
            with pytest.raises(TableConflictError, match="append_rows"):
                router.register_table("t", retail)

    def test_append_unknown_table(self):
        with DrillDownServer() as tier:
            with pytest.raises(UnknownTableError):
                tier.append_rows("nope", [("a",)])
        with ShardRouter(1) as router:
            with pytest.raises(UnknownTableError):
                router.append_rows("nope", [("a",)])

    def test_append_empty_rows_rejected(self, tiny_table):
        with DrillDownServer() as tier:
            tier.register_table("t", tiny_table)
            with pytest.raises(ServingError):
                tier.append_rows("t", [])


# -- pool export growth ----------------------------------------------------------


class TestExportGrowth:
    def test_append_grows_export_incrementally(self, lite_pool):
        catalog = TableCatalog(pool=lite_pool)
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        catalog.register("t", base)
        assert lite_pool.export_count() == 1
        record = catalog.append_rows("t", EXTRA_ROWS)
        assert isinstance(record, TableVersion) and record.version == 2
        # Grow-and-copy, not a cold re-export from the raw columns.
        assert lite_pool.exports_grown == 1
        assert catalog.version_stats()["exports_grown"] == 1
        # The unpinned old version is reaped immediately, dropping its
        # export — one live segment set per table at steady state.
        assert catalog.version_stats()["reaped"] == 1
        assert lite_pool.export_count() == 1
        # A pinned old version keeps its export alive across an append.
        catalog.pin("t")
        catalog.append_rows("t", EXTRA_ROWS)
        assert lite_pool.export_count() == 2
        catalog.unpin("t", 2)
        assert lite_pool.export_count() == 1
        catalog.close()

    def test_grown_export_counts_bit_identical(self, lite_pool):
        catalog = TableCatalog(pool=lite_pool)
        base = Table.from_rows(SCHEMA, BASE_ROWS)
        catalog.register("t", base)
        new = catalog.append_rows("t", EXTRA_ROWS).table
        cold = Table.from_rows(SCHEMA, BASE_ROWS + EXTRA_ROWS)
        grown = lite_pool.backend_for(new)
        fresh = lite_pool.backend_for(cold)
        for backend in (grown, fresh):
            backend.set_top(0.0)
        jobs = [(pos, len(new.column(pos).values), 1.0) for pos in range(3)]
        got = grown.count_columns(jobs)
        want = fresh.count_columns(jobs)
        for pos in got:
            for g, w in zip(got[pos], want[pos]):
                assert np.array_equal(g, w)
        catalog.close()


# -- pin / reap lifecycle --------------------------------------------------------


class TestPinReapLifecycle:
    def test_old_version_reaped_when_last_session_closes(self, tiny_table):
        with DrillDownServer() as tier:
            tier.register_table("t", tiny_table)
            sid = tier.create_session("t")
            tier.append_rows("t", [("q", "q", "q")])
            stats = tier.stats()["versions"]
            assert stats["tables"]["t"]["latest"] == 2
            assert len(stats["tables"]["t"]["versions"]) == 2  # v1 pinned
            tier.close_session(sid)
            stats = tier.stats()["versions"]
            assert stats["reaped"] == 1
            versions = stats["tables"]["t"]["versions"]
            assert [v["version"] for v in versions] == [2]

    def test_unpinned_old_version_reaped_immediately(self, tiny_table):
        with DrillDownServer() as tier:
            tier.register_table("t", tiny_table)
            tier.append_rows("t", [("q", "q", "q")])
            stats = tier.stats()["versions"]
            assert stats["reaped"] == 1
            assert [v["version"] for v in stats["tables"]["t"]["versions"]] == [2]

    def test_unregistered_pinned_version_survives_until_close(self, tiny_table):
        with DrillDownServer() as tier:
            tier.register_table("t", tiny_table)
            sid = tier.create_session("t")
            before = tier.render(sid)
            tier.unregister_table("t")
            # The pinned session keeps serving its version...
            assert tier.render(sid) == before
            # ...and the version is reaped when the session closes.
            tier.close_session(sid)
            assert tier.stats()["versions"]["reaped"] == 1

    def test_eviction_releases_pins(self, tiny_table):
        with DrillDownServer(max_sessions=1) as tier:
            tier.register_table("t", tiny_table)
            first = tier.create_session("t")
            tier.append_rows("t", [("q", "q", "q")])
            # LRU-evicting the v1 session must release its pin and reap v1.
            tier.create_session("t")
            assert first not in [e.session_id for e in tier.registry.entries()]
            stats = tier.stats()["versions"]
            assert [v["version"] for v in stats["tables"]["t"]["versions"]] == [2]

    def test_register_after_reap_does_not_collide(self, tiny_table, retail):
        """A name whose old pinned version is still alive can be
        re-registered (new lineage) without version-key collisions."""
        with DrillDownServer() as tier:
            tier.register_table("t", tiny_table)
            sid = tier.create_session("t")
            tier.unregister_table("t")
            tier.register_table("t", retail)  # pinned v1 still alive
            assert tier.render(sid)  # old session unperturbed
            fresh = tier.create_session("t")
            assert len(tier.session_columns(fresh)) == retail.n_columns


# -- artifact purge (satellite 1 regression) -------------------------------------


class TestArtifactPurge:
    def _catalog(self, tmp_path) -> TableCatalog:
        return TableCatalog(
            sample_budget=16,
            sample_dir=tmp_path / "samples",
            marginal_mw=5.0,
            marginal_dir=tmp_path / "marginals",
        )

    def test_unregister_purges_persisted_artifacts(self, tmp_path, tiny_table):
        """The pre-fix behaviour stranded ``samples/<t>.json`` and
        ``marginals/<t>.*.json`` on disk forever after unregister."""
        catalog = self._catalog(tmp_path)
        catalog.register("t", tiny_table)
        before = sorted(p for p in tmp_path.rglob("*") if p.is_file())
        assert before, "registration must persist sample/marginal artifacts"
        catalog.unregister("t")
        after = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert after == [], f"stranded artifacts: {after}"
        assert catalog.version_stats()["artifacts_purged"] == len(before)
        catalog.close()

    def test_pinned_version_defers_purge_to_last_unpin(self, tmp_path, tiny_table):
        catalog = self._catalog(tmp_path)
        catalog.register("t", tiny_table)
        catalog.pin("t")
        catalog.unregister("t")
        assert any(p.is_file() for p in tmp_path.rglob("*"))  # still pinned
        catalog.unpin("t", 1)
        assert not any(p.is_file() for p in tmp_path.rglob("*"))
        catalog.close()

    def test_append_keeps_artifacts_fresh(self, tmp_path, tiny_table):
        """Appending re-fingerprints the persisted marginal cache and
        invalidates the sample file so the next load rebuilds it."""
        catalog = self._catalog(tmp_path)
        catalog.register("t", tiny_table)
        record = catalog.append_rows("t", [("q", "q", "q")])
        catalog.samples_for("t")  # lazy rebuild + re-persist
        catalog.close()
        reopened = self._catalog(tmp_path)
        reopened.register("t", record.table)
        stats = reopened.sample_stats()
        assert stats["loaded"] == 1, "re-persisted sample file must load clean"
        assert reopened.marginal_stats()["loaded"] >= 1
        reopened.close()
