"""The sharded serving router: placement, parity, crashes, warm restore.

The contract under test is ISSUE 5's acceptance line: an N-shard
:class:`~repro.serving.ShardRouter` answers every request bit-identically
to a single-process :class:`~repro.serving.DrillDownServer`, a killed
shard's sessions survive via warm restore from the shard's own persist
directory, and the router's crash handling is typed
(:class:`~repro.errors.ShardDownError`), never a hang or a silent retry.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.rule import STAR, Rule
from repro.errors import (
    ServingError,
    SessionError,
    ShardDownError,
    TenantBudgetError,
    UnknownSessionError,
    UnknownTableError,
)
from repro.serving import DrillDownServer, ShardRouter
from repro.serving.shard import (
    decode_node,
    decode_table,
    encode_node,
    encode_table,
)
from repro.session import DrillDownSession
from repro.table import Schema, Table
from repro.table.bucketize import Interval
from tests.conftest import random_table


def _wire_tree(node) -> tuple:
    """A displayed node's subtree as comparable plain data."""
    return (
        tuple(node.rule),
        node.count,
        node.weight,
        node.depth,
        node.expanded_via,
        tuple(_wire_tree(c) for c in node.children),
    )


# -- wire format -----------------------------------------------------------------


class TestWireFormat:
    def test_table_roundtrip_categorical_and_numeric(self, measure_table):
        decoded = decode_table(encode_table(measure_table))
        assert decoded == measure_table
        assert decoded.schema == measure_table.schema
        # Dictionary order (the mining tie-break order) is preserved.
        for name in measure_table.column_names:
            if measure_table.schema[name].is_categorical:
                assert decoded.categorical(name).values == measure_table.categorical(name).values
                assert (decoded.categorical(name).codes == measure_table.categorical(name).codes).all()

    def test_table_roundtrip_exotic_values(self):
        rows = [
            (Interval(0.0, 1.5, False), None),
            (Interval(1.5, 3.0, True), True),
            (Interval(0.0, 1.5, False), 7),
        ]
        table = Table.from_rows(Schema.categorical(["bucket", "flag"]), rows)
        decoded = decode_table(encode_table(table))
        assert decoded.to_rows() == table.to_rows()

    def test_node_roundtrip(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        session.expand(session.root.children[0].rule)
        root = session.root
        assert _wire_tree(decode_node(encode_node(root))) == _wire_tree(root)


# -- placement -------------------------------------------------------------------


class TestPlacement:
    def test_placement_is_stable_across_instances(self, retail):
        with ShardRouter(4) as a, ShardRouter(4) as b:
            names = [f"table-{i}" for i in range(32)]
            assert [a.shard_of_table(n) for n in names] == [
                b.shard_of_table(n) for n in names
            ]

    def test_placement_spreads_tables(self):
        with ShardRouter(2) as router:
            owners = {router.shard_of_table(f"t{i}") for i in range(64)}
            assert owners == {0, 1}

    def test_sessions_stick_to_their_tables_shard(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            assert router.shard_of_session(sid) == router.shard_of_table("retail")
            # Ids carry the shard prefix, so they are unique tier-wide.
            assert sid.startswith(f"s{router.shard_of_table('retail')}-")

    def test_same_object_reregistration_is_idempotent(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            router.register_table("retail", retail)
            assert router.tables() == ("retail",)


# -- equivalence with the in-process tier ----------------------------------------


class TestEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bit_identical_to_single_process(self, retail, n_shards):
        """The acceptance criterion: same workload, same bytes."""
        with DrillDownServer() as server, ShardRouter(n_shards) as router:
            for tier in (server, router):
                tier.register_table("retail", retail)
            ref_sid = server.create_session("retail", tenant="alice", k=3, mw=3.0)
            sid = router.create_session("retail", tenant="alice", k=3, mw=3.0)

            ref_l1 = server.expand(ref_sid)
            l1 = router.expand(sid)
            assert [tuple(c.rule) for c in l1] == [tuple(c.rule) for c in ref_l1]
            assert [c.count for c in l1] == [c.count for c in ref_l1]
            assert [c.weight for c in l1] == [c.weight for c in ref_l1]

            ref_l2 = server.expand(ref_sid, ref_l1[0].rule)
            l2 = router.expand(sid, l1[0].rule)
            assert [tuple(c.rule) for c in l2] == [tuple(c.rule) for c in ref_l2]

            assert router.render(sid) == server.render(ref_sid)
            assert _wire_tree(router.tree(sid)) == _wire_tree(server.tree(ref_sid))

            root = Rule([STAR] * len(retail.column_names))
            server.collapse(ref_sid, root)
            router.collapse(sid, root)
            ref_star = server.expand_star(ref_sid, root, "Region")
            star = router.expand_star(sid, root, "Region")
            assert [tuple(c.rule) for c in star] == [tuple(c.rule) for c in ref_star]
            assert router.render(sid) == server.render(ref_sid)

    def test_expand_traditional_and_measures(self, measure_table):
        with DrillDownServer() as server, ShardRouter(2) as router:
            for tier in (server, router):
                tier.register_table("sales", measure_table)
            ref = server.create_session("sales", k=3, mw=3.0, measure="Sales")
            sid = router.create_session("sales", k=3, mw=3.0, measure="Sales")
            trivial = Rule([STAR] * measure_table.n_columns)
            ref_kids = server.expand_traditional(ref, trivial, "Store")
            kids = router.expand_traditional(sid, trivial, "Store")
            assert [tuple(c.rule) for c in kids] == [tuple(c.rule) for c in ref_kids]
            assert [c.count for c in kids] == [c.count for c in ref_kids]
            assert router.render(sid) == server.render(ref)

    def test_multiple_tables_land_on_their_own_shards(self, rng):
        tables = {f"t{i}": random_table(rng, n_rows=60, n_columns=3, domain=4) for i in range(4)}
        with DrillDownServer() as server, ShardRouter(2) as router:
            sids = {}
            for name, table in tables.items():
                server.register_table(name, table)
                router.register_table(name, table)
                ref = server.create_session(name, tenant=name, k=2, mw=3.0)
                sid = router.create_session(name, tenant=name, k=2, mw=3.0)
                server.expand(ref)
                router.expand(sid)
                sids[name] = (ref, sid)
            assert set(router.tables()) == set(tables)
            for name, (ref, sid) in sids.items():
                assert router.render(sid) == server.render(ref)


# -- typed errors over the wire --------------------------------------------------


class TestErrorPropagation:
    def test_unknown_table_and_session(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            with pytest.raises(UnknownTableError):
                router.create_session("nope")
            with pytest.raises(UnknownSessionError):
                router.render("sess-999999")

    def test_session_errors_reraise_as_themselves(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            router.expand(sid)
            with pytest.raises(SessionError):
                router.expand(sid)  # root already expanded
            with pytest.raises(SessionError):
                router.expand(sid, Rule(["??", STAR, STAR, STAR]))  # not displayed

    def test_budget_error_keeps_retry_after(self, retail):
        with ShardRouter(
            1, tenant_budget=10.0, refill_per_second=5.0
        ) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", tenant="alice", k=3, mw=3.0)
            with pytest.raises(TenantBudgetError) as excinfo:
                router.expand(sid)  # costs 6000 rows against a 10-token bucket
            assert excinfo.value.retry_after is not None
            assert excinfo.value.requested == pytest.approx(float(retail.n_rows))

    def test_invalid_k_rejected_before_work(self, retail):
        with ShardRouter(1) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            with pytest.raises(SessionError):
                router.expand(sid, k=0)


# -- lifecycle -------------------------------------------------------------------


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, retail):
        router = ShardRouter(2)
        router.register_table("retail", retail)
        router.close()
        router.close()
        with pytest.raises(ServingError):
            router.create_session("retail")

    def test_close_session_roundtrip(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail")
            assert router.close_session(sid) is True
            assert router.close_session(sid) is False
            with pytest.raises(UnknownSessionError):
                router.render(sid)

    def test_shard_ttl_eviction_prunes_the_router_map(self, retail):
        with ShardRouter(1, ttl_seconds=0.05) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            time.sleep(0.15)
            assert sid in router.reap()
            with pytest.raises(UnknownSessionError):
                router.render(sid)

    def test_unregister_table(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            router.unregister_table("retail")
            assert router.tables() == ()
            with pytest.raises(UnknownTableError):
                router.create_session("retail")

    def test_stats_per_shard_breakdown(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            router.expand(sid)
            stats = router.stats()
            assert stats["tables"] == ["retail"]
            assert stats["sessions"] == 1
            assert stats["router"]["n_shards"] == 2
            assert stats["router"]["placement"] == {
                "retail": router.shard_of_table("retail")
            }
            assert len(stats["shards"]) == 2
            by_shard = {entry["shard"]: entry for entry in stats["shards"]}
            owner = router.shard_of_table("retail")
            assert all(entry["alive"] for entry in stats["shards"])
            assert by_shard[owner]["server"]["registry"]["sessions"] == 1
            assert by_shard[1 - owner]["server"]["registry"]["sessions"] == 0


# -- crash detection, restart, warm restore --------------------------------------


class TestCrashRecovery:
    def _kill_owner(self, router: ShardRouter, table: str) -> int:
        index = router.shard_of_table(table)
        router._shards[index].process.kill()
        return index

    def test_killed_shard_raises_typed_503_and_restarts(self, retail):
        with ShardRouter(2) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            index = self._kill_owner(router, "retail")
            with pytest.raises(ShardDownError):
                router.render(sid)
            assert router.restarts == 1
            # Without durable state the session is gone; the tier serves on.
            with pytest.raises(UnknownSessionError):
                router.render(sid)
            replacement = router.create_session("retail", k=3, mw=3.0)
            assert router.expand(replacement)
            # The restarted shard's fresh registry cannot re-issue the
            # dead session's id to a different tenant.
            assert replacement != sid
            assert replacement.startswith(f"s{index}r1-")

    def test_other_shards_unaffected_by_a_crash(self, rng):
        with ShardRouter(2) as router:
            tables = {}
            for i in range(6):
                name = f"t{i}"
                tables[name] = random_table(rng, n_rows=50, n_columns=3, domain=3)
                router.register_table(name, tables[name])
            owners = {name: router.shard_of_table(name) for name in tables}
            assert set(owners.values()) == {0, 1}
            victim_table = next(n for n, s in owners.items() if s == 0)
            survivor_table = next(n for n, s in owners.items() if s == 1)
            survivor_sid = router.create_session(survivor_table, k=2, mw=3.0)
            survivor_render = router.render(survivor_sid)
            router._shards[0].process.kill()
            with pytest.raises(ShardDownError):
                router.create_session(victim_table, k=2, mw=3.0)
            assert router.render(survivor_sid) == survivor_render

    def test_killed_shard_sessions_survive_via_warm_restore(self, retail, tmp_path):
        """The acceptance criterion: kill -9 a shard, lose nothing
        that was checkpointed — render and next expansion bit-identical."""
        with DrillDownServer() as reference:
            reference.register_table("retail", retail)
            ref_sid = reference.create_session("retail", tenant="alice", k=3, mw=3.0)
            ref_l1 = reference.expand(ref_sid)

            with ShardRouter(2, persist_dir=tmp_path) as router:
                router.register_table("retail", retail)
                sid = router.create_session("retail", tenant="alice", k=3, mw=3.0)
                l1 = router.expand(sid)
                expected_render = router.render(sid)
                assert expected_render == reference.render(ref_sid)
                assert router.checkpoint_all() >= 1

                self._kill_owner(router, "retail")
                with pytest.raises(ShardDownError):
                    router.render(sid)
                assert router.restarts == 1

                # Same id, same bytes, same future: the restored session
                # renders identically and its next expansion matches the
                # never-crashed reference expansion for expansion.
                assert router.render(sid) == expected_render
                ref_l2 = reference.expand(ref_sid, ref_l1[0].rule)
                l2 = router.expand(sid, l1[0].rule)
                assert [tuple(c.rule) for c in l2] == [tuple(c.rule) for c in ref_l2]
                assert [c.count for c in l2] == [c.count for c in ref_l2]
                assert router.render(sid) == reference.render(ref_sid)

    def test_full_router_restart_warm_restores_every_shard(self, rng, tmp_path):
        tables = {f"t{i}": random_table(rng, n_rows=60, n_columns=3, domain=4) for i in range(4)}
        renders: dict[str, str] = {}
        sids: dict[str, str] = {}
        with ShardRouter(2, persist_dir=tmp_path) as router:
            for name, table in tables.items():
                router.register_table(name, table)
                sid = router.create_session(name, tenant=name, k=2, mw=3.0)
                router.expand(sid)
                sids[name] = sid
                renders[name] = router.render(sid)
            # close() checkpoints every dirty session on every shard.
        with ShardRouter(2, persist_dir=tmp_path) as router:
            for name, table in tables.items():
                router.register_table(name, table)
            for name, sid in sids.items():
                assert router.render(sid) == renders[name]
            stats = router.stats()
            assert stats["sessions"] == len(sids)

    def test_stats_and_close_survive_a_permanently_failed_respawn(
        self, retail, monkeypatch
    ):
        """A slot whose respawn keeps failing holds a reaped handle;
        stats() must report it down (not raise on the closed process
        record) and close() must stay clean."""
        router = ShardRouter(1)
        try:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            monkeypatch.setattr(
                router, "_spawn",
                lambda *a, **k: (_ for _ in ()).throw(ServingError("nope")),
            )
            router._shards[0].process.kill()
            with pytest.raises(ShardDownError):
                router.render(sid)
            stats = router.stats()
            assert stats["shards"][0]["alive"] is False
            assert isinstance(stats["shards"][0]["pid"], int)
        finally:
            router.close()  # must not raise on the reaped handle

    def test_restart_failure_leaves_router_usable(self, retail, monkeypatch):
        """If the respawn itself fails the request still gets a typed
        ShardDownError and a later request retries the spawn."""
        with ShardRouter(1) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            original_spawn = router._spawn
            calls = {"n": 0}

            def flaky_spawn(index, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ServingError("no forks today")
                return original_spawn(index, **kwargs)

            monkeypatch.setattr(router, "_spawn", flaky_spawn)
            router._shards[0].process.kill()
            with pytest.raises(ShardDownError):
                router.render(sid)
            # The failed respawn left the dead handle in place; the next
            # request observes it and succeeds in restarting.
            with pytest.raises(ShardDownError):
                router.create_session("retail")
            assert router.create_session("retail", k=3, mw=3.0).startswith("s0r")


def test_numpy_count_types_cross_the_wire(rng):
    """Counts/weights must be JSON-clean even when numpy scalars leak in."""
    table = random_table(rng, n_rows=40, n_columns=3, domain=3)
    with ShardRouter(1) as router:
        router.register_table("t", table)
        sid = router.create_session("t", k=2, mw=3.0)
        children = router.expand(sid)
        assert all(isinstance(c.count, float) for c in children)
        assert all(isinstance(c.weight, float) for c in children)
        assert all(isinstance(c.rule, Rule) for c in children)
        assert isinstance(np.float64(1.0), np.floating)  # sanity: numpy present


class TestVersionedTables:
    @pytest.mark.versioning
    def test_append_survives_shard_crash(self, rng, tmp_path):
        """The router's local table mirror must track appends: a killed
        shard is re-registered with the *appended* encoding, so sessions
        created after the restart see the appended table."""
        table = random_table(rng, n_rows=40, n_columns=3, domain=3)
        extra = [("v0", "v1", "v0"), ("v9", "v9", "v9")]
        with ShardRouter(1, persist_dir=tmp_path) as router:
            router.register_table("t", table)
            record = router.append_rows("t", extra)
            assert record["version"] == 2
            router._shards[0].process.kill()
            with pytest.raises(ShardDownError):
                router.render(router.create_session("t", k=2, mw=3.0))
            sid = router.create_session("t", k=2, mw=3.0)
            children = router.expand(sid)
            assert router.stats()["router"]["table_versions"]["t"] >= 1
            # Parity against a single process over the appended rows.
            with DrillDownServer() as server:
                server.register_table("t", table.append_rows(extra))
                ssid = server.create_session("t", k=2, mw=3.0)
                server.expand(ssid)
                assert router.render(sid) == server.render(ssid)

    @pytest.mark.versioning
    def test_orphaned_snapshots_counted_and_swept(self, tmp_path):
        """Satellite regression: snapshots under a ``shard-NN`` directory
        no current slot owns (a previous run used more shards) were
        silently ignored forever.  They must be *counted* in stats and,
        when the byte-cap compaction policy is configured, swept."""
        orphan = tmp_path / "shard-03" / "s3-000001.jsonl"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("{}\n")
        with ShardRouter(2, persist_dir=tmp_path) as router:
            stats = router.stats()["router"]
            assert stats["orphaned_snapshots"] == 1
            assert stats["orphaned_swept"] == 0
        assert orphan.exists(), "no byte cap: orphans are reported, not deleted"
        with ShardRouter(2, persist_dir=tmp_path, persist_max_bytes=10_000) as router:
            stats = router.stats()["router"]
            assert stats["orphaned_snapshots"] == 0
            assert stats["orphaned_swept"] == 1
        assert not orphan.exists()
