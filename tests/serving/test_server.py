"""DrillDownServer: the acceptance criteria, end to end.

Two tenants served over one catalog table must produce rule lists
bit-identical to two standalone sessions, while sharing one pool
export and (matching configs) one SearchContext lattice; budget
exhaustion throttles with a typed error; eviction never unlinks shared
state still in use.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import Rule
from repro.errors import (
    ServingError,
    TenantBudgetError,
    UnknownSessionError,
    UnknownTableError,
)
from repro.serving import DrillDownServer
from repro.session import DrillDownSession


class TestTables:
    def test_register_and_list(self, server, retail):
        assert server.tables() == ("retail",)
        assert server.catalog.get("retail") is retail

    def test_unknown_table_in_create(self, server):
        with pytest.raises(UnknownTableError):
            server.create_session("nope")

    def test_unregister_drops_context_prototypes(self, server, retail):
        sid = server.create_session("retail", k=3, mw=3.0)
        server.expand(sid)
        assert server.contexts.stats()["prototypes"] == 1
        server.unregister_table("retail")
        assert server.contexts.stats()["prototypes"] == 0

    def test_unknown_weight_function(self, server):
        with pytest.raises(ServingError, match="unknown weight function"):
            server.create_session("retail", wf="heaviness")

    def test_weight_instances_shared_per_name(self, server, retail, tiny_table):
        assert server.weight("size", retail) is server.weight("size", retail)
        assert server.weight("bits", retail) is not server.weight("size", retail)
        # Bits weighting is table-derived: distinct per table.
        assert server.weight("bits", retail) is not server.weight("bits", tiny_table)


class TestAcceptance:
    def test_two_tenants_bit_identical_to_standalone(self, retail):
        """The headline guarantee, at both drill-down levels."""
        with DrillDownServer() as server:
            server.register_table("retail", retail)
            alice = server.create_session("retail", tenant="alice", k=3, mw=3.0)
            bob = server.create_session("retail", tenant="bob", k=3, mw=3.0)

            standalone = DrillDownSession(retail, k=3, mw=3.0)
            expected = standalone.expand(standalone.root.rule)
            walmart = Rule.from_named(retail, Store="Walmart")
            expected2 = standalone.expand(walmart)

            for sid in (alice, bob):
                got = server.expand(sid)
                assert [(c.rule, c.count, c.weight) for c in got] == [
                    (c.rule, c.count, c.weight) for c in expected
                ]
                got2 = server.expand(sid, walmart)
                assert [(c.rule, c.count, c.weight) for c in got2] == [
                    (c.rule, c.count, c.weight) for c in expected2
                ]
            # ... while sharing one lattice per expanded node:
            stats = server.contexts.stats()
            assert stats["prototypes"] == 2  # root + walmart
            assert stats["hits"] == 2  # bob leased both

    def test_one_pool_export_serves_every_tenant(self, retail, lite_pool):
        with DrillDownServer(pool=lite_pool) as server:
            server.register_table("retail", retail)
            assert lite_pool.export_count() == 1  # registration-time export
            sids = [
                server.create_session("retail", tenant=f"t{i}", k=3, mw=3.0)
                for i in range(4)
            ]
            first = server.expand(sids[0])
            for sid in sids[1:]:
                assert [c.rule for c in server.expand(sid)] == [c.rule for c in first]
            # Root expansions mined the registered table itself: still
            # exactly one export for it, shared by every tenant.
            assert lite_pool.export_count() == 1
        assert not lite_pool.closed  # borrowed pool survives server close

    def test_eviction_leaves_other_tenants_working(self, retail, lite_pool):
        with DrillDownServer(pool=lite_pool, max_sessions=2) as server:
            server.register_table("retail", retail)
            a = server.create_session("retail", tenant="a", k=3, mw=3.0)
            b = server.create_session("retail", tenant="b", k=3, mw=3.0)
            first = server.expand(b)  # touches b: a is now the LRU
            exports = lite_pool.export_count()
            c = server.create_session("retail", tenant="c", k=3, mw=3.0)  # evicts a
            with pytest.raises(UnknownSessionError):
                server.expand(a)
            assert lite_pool.export_count() == exports  # nothing unlinked
            # The surviving tenants keep working over the shared export.
            assert server.expand(b, first[-1].rule)
            assert [child.rule for child in server.expand(c)] == [
                child.rule for child in first
            ]

    def test_budget_exhaustion_is_typed_not_a_hang(self, retail):
        # retail = 6000 rows; 13000 tokens buy exactly two expansions.
        with DrillDownServer(tenant_budget=13_000) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", tenant="alice", k=3, mw=3.0)
            children = server.expand(sid)
            server.expand(sid, children[-1].rule)
            with pytest.raises(TenantBudgetError) as info:
                server.expand(sid, children[0].rule)
            assert info.value.tenant == "alice"
            # Throttling charged nothing extra and other tenants are fine.
            other = server.create_session("retail", tenant="bob", k=3, mw=3.0)
            assert server.expand(other)

    def test_failed_expansion_refunds_budget(self, retail):
        """A rejected request (rule not displayed) must not burn budget."""
        from repro.core import STAR
        from repro.errors import SessionError

        with DrillDownServer(tenant_budget=6_000) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", tenant="alice", k=3, mw=3.0)
            ghost = Rule(["Nobody", STAR, STAR, STAR])
            for _ in range(3):  # 3 failures would cost 18k of a 6k budget
                with pytest.raises(SessionError):
                    server.expand(sid, ghost)
            assert server.scheduler.balance("alice") == pytest.approx(6_000)
            assert server.expand(sid)  # the budget still buys real work

    def test_duplicate_expand_rejected_before_mining(self, retail):
        """Re-expanding an expanded rule must fail pre-work and refund —
        otherwise a tenant could mine for free on the refund path."""
        from repro.errors import SessionError

        with DrillDownServer(tenant_budget=12_000) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", tenant="alice", k=3, mw=3.0)
            server.expand(sid)  # 6000 tokens
            store_stats_before = server.contexts.stats()
            for _ in range(5):
                with pytest.raises(SessionError, match="already expanded"):
                    server.expand(sid)
            # No mining happened (no new publishes/misses) and the
            # failures were refunded.
            assert server.contexts.stats() == store_stats_before
            assert server.scheduler.balance("alice") == pytest.approx(6_000)

    def test_context_store_cap_and_injection(self, retail):
        from repro.serving import ContextStore

        with DrillDownServer(max_context_prototypes=1) as server:
            assert server.contexts.max_prototypes == 1
        injected = ContextStore(max_prototypes=7)
        with DrillDownServer(share_contexts=injected) as server:
            assert server.contexts is injected

    def test_unregister_purges_weight_cache(self, server, retail):
        bits = server.weight("bits", retail)
        assert server.weight("bits", retail) is bits
        server.unregister_table("retail")
        assert server.catalog._weights == {}
        server.register_table("retail", retail)
        # Re-registration rebuilds cleanly (fresh instance is fine).
        assert server.weight("bits", retail) is not None

    def test_collapse_and_rerender_free_of_charge(self, retail):
        with DrillDownServer(tenant_budget=6_000) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", k=3, mw=3.0)
            server.expand(sid)  # spends the whole budget
            server.collapse(sid, server.session(sid).root.rule)  # still allowed
            assert server.render(sid).strip()


class TestConcurrency:
    def test_concurrent_tenants_identical_results(self, retail):
        """Eight threads, one server: every tenant sees the standalone
        rule lists (per-session locks + private context clones)."""
        standalone = DrillDownSession(retail, k=3, mw=3.0)
        expected = [c.rule for c in standalone.expand(standalone.root.rule)]
        walmart = Rule.from_named(retail, Store="Walmart")
        expected2 = [c.rule for c in standalone.expand(walmart)]

        with DrillDownServer() as server:
            server.register_table("retail", retail)
            results: dict[int, tuple] = {}
            errors: list[Exception] = []

            def tenant_run(i: int) -> None:
                try:
                    sid = server.create_session("retail", tenant=f"t{i}", k=3, mw=3.0)
                    level1 = [c.rule for c in server.expand(sid)]
                    level2 = [c.rule for c in server.expand(sid, walmart)]
                    results[i] = (level1, level2)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=tenant_run, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors
            assert len(results) == 8
            for level1, level2 in results.values():
                assert level1 == expected and level2 == expected2

    def test_stats_surface(self, server):
        sid = server.create_session("retail", tenant="alice", k=3, mw=3.0)
        server.expand(sid)
        stats = server.stats()
        assert stats["tables"] == ["retail"]
        assert stats["registry"]["per_tenant"] == {"alice": 1}
        assert stats["contexts"]["publishes"] == 1
        assert "'alice'" in stats["scheduler"]["tenants"]


class TestLifecycle:
    def test_close_session(self, server):
        sid = server.create_session("retail", k=3, mw=3.0)
        assert server.close_session(sid) is True
        assert server.close_session(sid) is False
        with pytest.raises(UnknownSessionError):
            server.expand(sid)

    def test_server_close_is_idempotent(self, retail):
        server = DrillDownServer(n_workers=2)
        server.register_table("retail", retail)
        pool = server.catalog.pool
        sid = server.create_session("retail", k=3, mw=3.0)
        session = server.session(sid)
        server.close()
        server.close()
        assert session.closed and pool.closed
        with pytest.raises(ServingError):
            server.create_session("retail")
