"""TableCatalog: register once, export once, owned-pool lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import ServingError, TableConflictError, UnknownTableError
from repro.serving import TableCatalog


class TestRegistration:
    def test_register_and_get(self, retail):
        catalog = TableCatalog()
        assert catalog.register("retail", retail) is retail
        assert catalog.get("retail") is retail
        assert "retail" in catalog and catalog.names() == ("retail",)

    def test_register_same_object_idempotent(self, retail):
        catalog = TableCatalog()
        catalog.register("retail", retail)
        assert catalog.register("retail", retail) is retail
        assert len(catalog) == 1

    def test_register_different_table_rejected(self, retail, tiny_table):
        catalog = TableCatalog()
        catalog.register("retail", retail)
        # The typed conflict (HTTP 409) names both explicit remedies.
        with pytest.raises(TableConflictError, match="append_rows"):
            catalog.register("retail", tiny_table)
        with pytest.raises(TableConflictError, match="replace_table"):
            catalog.register("retail", tiny_table)

    def test_empty_name_rejected(self, retail):
        with pytest.raises(ServingError):
            TableCatalog().register("", retail)

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            TableCatalog().get("nope")

    def test_unregister(self, retail):
        catalog = TableCatalog()
        catalog.register("retail", retail)
        catalog.unregister("retail")
        assert "retail" not in catalog
        catalog.unregister("retail")  # idempotent


class TestExportOnce:
    def test_register_exports_eagerly_and_once(self, retail, lite_pool):
        catalog = TableCatalog(pool=lite_pool)
        catalog.register("retail", retail)
        assert lite_pool.export_count() == 1
        # A second registration (another name, same table) adds nothing.
        catalog.register("retail2", retail)
        assert lite_pool.export_count() == 1
        # Backends created later reuse the registration-time export.
        a = lite_pool.backend_for(retail)
        b = lite_pool.backend_for(retail)
        assert a.export is b.export

    def test_borrowed_pool_survives_catalog_close(self, retail, lite_pool):
        catalog = TableCatalog(pool=lite_pool)
        catalog.register("retail", retail)
        catalog.close()
        assert not lite_pool.closed
        catalog.close()  # idempotent

    def test_owned_pool_closed_with_catalog(self):
        catalog = TableCatalog(n_workers=2)
        pool = catalog.pool
        assert pool is not None and not pool.closed
        catalog.close()
        assert pool.closed and catalog.pool is None

    def test_serial_catalog_has_no_pool(self):
        assert TableCatalog().pool is None
        assert TableCatalog(n_workers=1).pool is None

    def test_closed_catalog_rejects_registration(self, retail):
        catalog = TableCatalog()
        catalog.close()
        with pytest.raises(ServingError):
            catalog.register("retail", retail)
