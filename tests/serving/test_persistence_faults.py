"""Fault injection for the snapshot store: crashes mid-save, torn
files, garbage on disk, and the size cap.

``test_persistence.py`` pins the happy paths; this suite attacks the
store the way production disks do — ``os.replace``/``os.fsync`` dying
after partial writes, SIGKILL leaving ``.tmp`` litter behind,
truncated/garbage/stale-version files planted in the directory — and
asserts the contract from the module docstring: a warm restart *skips
and counts*, never raises; failed writes never publish torn files or
leak temp files; and ``max_bytes`` keeps the directory bounded even
across a reaper checkpoint sweep.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.rule import STAR, Rule
from repro.errors import SnapshotError
from repro.serving import DrillDownServer, SessionSnapshot, SnapshotStore
from repro.serving.persistence import SNAPSHOT_VERSION
from repro.session import DrillDownSession


def _snapshot(session, sid="sess-000001", *, tenant="alice"):
    return SessionSnapshot(
        session_id=sid,
        table="retail",
        tenant=tenant,
        wf_spec="size",
        state=session.snapshot(),
        expansions=len(session.history),
    )


def _tiny_snapshot(sid: str, *, pad: int = 0) -> SessionSnapshot:
    """A store-level snapshot with a controllable on-disk size."""
    rule = Rule([STAR, STAR])
    state = {
        "k": 2,
        "mw": 3.0,
        "measure": None,
        "tenant": "pad-" + "x" * pad,
        "columns": ["A", "B"],
        "tree": {
            "rule": rule,
            "count": 10.0,
            "weight": 1.0,
            "depth": 0,
            "expanded_via": None,
            "children": [],
        },
        "history": [],
    }
    return SessionSnapshot(
        session_id=sid, table="t", tenant=state["tenant"], wf_spec="size", state=state
    )


# -- crash mid-save --------------------------------------------------------------


class TestCrashMidSave:
    def test_replace_failure_publishes_nothing_and_leaks_no_tmp(
        self, tmp_path, retail, monkeypatch
    ):
        """A crash between the temp write and the rename must leave the
        previous snapshot byte-identical and the directory litter-free."""
        session = DrillDownSession(retail, k=3, mw=3.0)
        store = SnapshotStore(tmp_path)
        store.save(_snapshot(session))
        before = (tmp_path / "sess-000001.jsonl").read_bytes()

        session.expand(session.root.rule)

        def exploding_replace(src, dst, *args, **kwargs):
            raise OSError("simulated crash between write and publish")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.save(_snapshot(session))
        monkeypatch.undo()

        assert (tmp_path / "sess-000001.jsonl").read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["sess-000001.jsonl"]
        # The store still works once the disk recovers.
        store.save(_snapshot(session))
        assert store.load("sess-000001").state["tree"]["children"]

    def test_fsync_failure_before_rename_is_contained(
        self, tmp_path, retail, monkeypatch
    ):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        store = SnapshotStore(tmp_path)

        def exploding_fsync(fd):
            raise OSError("simulated fsync failure (dying disk)")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            store.save(_snapshot(session))
        monkeypatch.undo()
        # Nothing published, nothing leaked: fsync fires before replace.
        assert list(tmp_path.iterdir()) == []

    def test_sigkill_tmp_litter_is_swept_on_construction(self, tmp_path, retail):
        """The in-process failure path unlinks its own temp file; a
        SIGKILL cannot.  The next store over the directory sweeps the
        litter (it is unpublished garbage by definition) and counts it."""
        session = DrillDownSession(retail, k=3, mw=3.0)
        SnapshotStore(tmp_path).save(_snapshot(session))
        (tmp_path / "sess-000001.jsonl.tmp-4242-1").write_text("torn half-write")
        (tmp_path / "sess-000777.jsonl.tmp-4242-2").write_text("{")

        store = SnapshotStore(tmp_path)
        assert store.cleaned_tmp == 2
        assert store.stats()["cleaned_tmp"] == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == ["sess-000001.jsonl"]
        # The published snapshot is untouched and loadable.
        assert [s.session_id for s in store.load_all()] == ["sess-000001"]

    def test_checkpoint_failure_keeps_session_dirty_and_counts(
        self, tmp_path, retail, monkeypatch
    ):
        """Server-level: a mid-save crash during a checkpoint sweep is
        counted, retried on the next sweep, and never kills the server."""
        with DrillDownServer(persist_dir=tmp_path) as server:
            server.register_table("retail", retail)
            sid = server.create_session("retail", k=3, mw=3.0)
            server.expand(sid)

            monkeypatch.setattr(
                os, "replace", lambda *a, **k: (_ for _ in ()).throw(OSError("boom"))
            )
            assert server.checkpoint_all() == 0
            monkeypatch.undo()
            assert server.checkpoint_errors == 1
            assert len(server.store.session_ids()) == 0

            # Next sweep retries the still-dirty session and succeeds.
            assert server.checkpoint_all() == 1
            assert server.store.session_ids() == (sid,)


# -- hostile directory contents --------------------------------------------------


class TestHostileSnapshotFiles:
    def _plant_fixtures(self, tmp_path, retail) -> str:
        """One good snapshot plus one truncated, one garbage, one
        stale-version, and one tmp-litter file.  Returns the good id."""
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        store = SnapshotStore(tmp_path)
        path = store.save(_snapshot(session, "sess-000001"))
        lines = path.read_text().splitlines()
        # Truncated: everything but the tree terminator survived.
        (tmp_path / "sess-000002.jsonl").write_text("\n".join(lines[:-1]) + "\n")
        # Garbage: not JSON at all.
        (tmp_path / "sess-000003.jsonl").write_bytes(b"\x00\xff drill-down? \xfe")
        # Stale version: decodable, wrong format generation.
        meta = json.loads(lines[0])
        meta["version"] = SNAPSHOT_VERSION + 7
        (tmp_path / "sess-000004.jsonl").write_text(
            "\n".join([json.dumps(meta)] + lines[1:]) + "\n"
        )
        (tmp_path / "sess-000001.jsonl.tmp-99-99").write_text("litter")
        return "sess-000001"

    def test_load_all_skips_and_counts_every_defect(self, tmp_path, retail):
        good = self._plant_fixtures(tmp_path, retail)
        store = SnapshotStore(tmp_path)
        loaded = store.load_all()
        assert [s.session_id for s in loaded] == [good]
        assert store.skipped_corrupt == 2  # truncated + garbage
        assert store.skipped_version == 1
        assert store.cleaned_tmp == 1

    def test_warm_restart_never_raises_on_hostile_directory(self, tmp_path, retail):
        good = self._plant_fixtures(tmp_path, retail)
        with DrillDownServer(persist_dir=tmp_path) as server:
            server.register_table("retail", retail)
            stats = server.stats()["persistence"]
            assert server.registry.session_ids() == (good,)
            assert stats["skipped_corrupt"] == 2
            assert stats["skipped_version"] == 1
            assert stats["cleaned_tmp"] == 1
            assert server.restored == 1
            # The survivor serves: render works and is a real tree.
            assert "?" in server.render(good)

    def test_empty_and_whitespace_files_are_corrupt_not_fatal(self, tmp_path):
        (tmp_path / "sess-000001.jsonl").write_text("")
        (tmp_path / "sess-000002.jsonl").write_text("\n\n  \n")
        store = SnapshotStore(tmp_path)
        assert store.load_all() == []
        assert store.skipped_corrupt == 2


# -- the size cap ----------------------------------------------------------------


class TestSnapshotSizeCap:
    def test_cap_evicts_oldest_recency_first(self, tmp_path):
        store = SnapshotStore(tmp_path, max_bytes=2_000)
        sids = [f"sess-{i:06d}" for i in range(1, 6)]
        for age, sid in enumerate(sids):
            path = store.save(_tiny_snapshot(sid, pad=600))
            # Pin distinct mtimes, oldest first (save order already is,
            # but filesystem timestamp granularity should not decide a test).
            stamp = 1_000_000 + age
            os.utime(path, (stamp, stamp))
            store._enforce_cap(keep=path)
        # Every save kept the directory under the cap by evicting the
        # stalest files first; the newest snapshot always survives.
        assert store.total_bytes() <= 2_000
        survivors = store.session_ids()
        assert sids[-1] in survivors
        evicted = [sid for sid in sids if sid not in survivors]
        assert evicted == sids[: len(evicted)]  # strictly oldest-first
        assert store.cap_evictions == len(evicted) > 0
        assert store.stats()["cap_evictions"] == store.cap_evictions

    def test_single_oversized_snapshot_is_kept(self, tmp_path):
        """The just-written file is never its own victim — the cap
        degrades to keep-latest, not to an empty directory."""
        store = SnapshotStore(tmp_path, max_bytes=64)
        store.save(_tiny_snapshot("sess-000001", pad=500))
        assert store.session_ids() == ("sess-000001",)
        store.save(_tiny_snapshot("sess-000002", pad=500))
        assert store.session_ids() == ("sess-000002",)
        assert store.cap_evictions == 1

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(tmp_path, max_bytes=0)

    def test_cap_survives_a_reaper_checkpoint_sweep(self, tmp_path, retail):
        """ROADMAP item: a long-lived durable tier's directory stays
        bounded even when the background sweep checkpoints everything."""
        with DrillDownServer(
            persist_dir=tmp_path, persist_max_bytes=4_000
        ) as server:
            server.register_table("retail", retail)
            sids = [
                server.create_session("retail", tenant=f"t{i}", k=3, mw=3.0)
                for i in range(6)
            ]
            for sid in sids:
                server.expand(sid)
            # The reaper's sweep target, driven synchronously.
            written = server.checkpoint_all()
            assert written == len(sids)
            assert server.store.total_bytes() <= 4_000
            assert server.store.cap_evictions > 0
            # The latest-checkpointed session always survives the sweep.
            assert sids[-1] in server.store.session_ids()
        # Shutdown's final checkpoint respects the cap too.
        assert SnapshotStore(tmp_path).total_bytes() <= 4_000

    def test_warm_restart_after_eviction_restores_survivors_only(
        self, tmp_path, retail
    ):
        with DrillDownServer(persist_dir=tmp_path, persist_max_bytes=4_000) as server:
            server.register_table("retail", retail)
            sids = [
                server.create_session("retail", tenant=f"t{i}", k=3, mw=3.0)
                for i in range(6)
            ]
            for sid in sids:
                server.expand(sid)
            server.checkpoint_all()
            survivors = set(server.store.session_ids())
        assert 0 < len(survivors) < len(sids)
        with DrillDownServer(persist_dir=tmp_path) as server:
            server.register_table("retail", retail)
            assert set(server.registry.session_ids()) == survivors
