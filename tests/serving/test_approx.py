"""Approximate drill-down through the serving tier (ISSUE 7 tentpole).

Covers the knobs and plumbing the statistical suites take for granted:
catalog-time sample building/persistence, server-level defaults and
validation, estimate metadata over snapshots and HTTP, and the
byte-identity guarantee that exact responses carry no ``estimate`` key
anywhere — wire, snapshot, or JSON.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.rule import STAR, Rule
from repro.errors import ServingError, SessionError
from repro.serving import DrillDownServer, TableCatalog, build_sample_set, derive_seed
from repro.serving.http import serve
from repro.session import DrillDownSession
from tests.conftest import random_table

ESTIMATE_KEYS = {
    "estimate", "low", "high", "confidence", "sample_size", "scale", "escalated", "exact",
}


@pytest.fixture
def table():
    return random_table(np.random.default_rng(7), n_rows=300, n_columns=3, domain=4)


class TestCatalogSamples:
    def test_register_builds_samples_deterministically(self, table):
        with TableCatalog(sample_budget=90) as catalog:
            catalog.register("t", table)
            samples = catalog.samples_for("t")
            assert samples is not None
            assert samples.memory_tuples() <= 90
            expected = build_sample_set(table, budget=90, seed=derive_seed("t", 0))
            assert np.array_equal(samples.uniform.row_ids, expected.uniform.row_ids)
            stats = catalog.sample_stats()
            assert stats == {
                "budget": 90,
                "built": 1,
                "loaded": 0,
                "lazy_rebuilt": 0,
                "stale": [],
                "fresh": {"t": {"seen": table.n_rows, "size": 90}},
                "tables": {"t": samples.describe()},
            }

    def test_no_budget_means_no_samples(self, table):
        with TableCatalog() as catalog:
            catalog.register("t", table)
            assert catalog.samples_for("t") is None
            assert catalog.sample_stats()["budget"] is None

    def test_bad_budget_rejected(self):
        with pytest.raises(ServingError):
            TableCatalog(sample_budget=0)

    def test_persisted_samples_reload_without_rebuild(self, tmp_path, table):
        with TableCatalog(sample_budget=90, sample_dir=tmp_path) as catalog:
            catalog.register("t", table)
            first = catalog.samples_for("t")
            assert catalog.sample_stats()["built"] == 1
        assert list(tmp_path.glob("*.samples.json"))
        with TableCatalog(sample_budget=90, sample_dir=tmp_path) as revived:
            revived.register("t", table)
            stats = revived.sample_stats()
            assert (stats["built"], stats["loaded"]) == (0, 1)
            second = revived.samples_for("t")
            assert np.array_equal(first.uniform.row_ids, second.uniform.row_ids)
            for filt, stratum in first.strata.items():
                assert np.array_equal(stratum.row_ids, second.strata[filt].row_ids)

    def test_changed_budget_triggers_rebuild(self, tmp_path, table):
        with TableCatalog(sample_budget=90, sample_dir=tmp_path) as catalog:
            catalog.register("t", table)
        with TableCatalog(sample_budget=91, sample_dir=tmp_path) as revived:
            revived.register("t", table)
            stats = revived.sample_stats()
            assert (stats["built"], stats["loaded"]) == (1, 0)

    def test_unregister_drops_samples(self, table):
        with TableCatalog(sample_budget=90) as catalog:
            catalog.register("t", table)
            catalog.unregister("t")
            assert catalog.samples_for("t") is None


class TestServerKnobs:
    def test_default_approx_requires_budget(self):
        with pytest.raises(ServingError):
            DrillDownServer(default_approx=True)

    def test_bad_error_target_rejected(self):
        with pytest.raises(ServingError):
            DrillDownServer(default_error_target=0.0)

    def test_approx_without_samples_is_a_session_error(self, table):
        with DrillDownServer() as server:
            server.register_table("t", table)
            sid = server.create_session("t")
            with pytest.raises(SessionError):
                server.expand(sid, Rule.trivial(3), approx=True)

    def test_default_approx_mines_samples_and_opt_out_is_exact(self, table):
        with DrillDownServer(sample_budget=90, default_approx=True) as server:
            server.register_table("t", table)
            sid = server.create_session("t")
            children = server.expand(sid, Rule.trivial(3))  # default: approx
            assert children and all(
                c.estimate is not None and set(c.estimate) == ESTIMATE_KEYS
                for c in children
            )
            sid2 = server.create_session("t")
            exact = server.expand(sid2, Rule.trivial(3), approx=False)
            assert all(c.estimate is None for c in exact)
            stats = server.stats()
            assert stats["default_approx"] is True
            assert stats["samples"]["budget"] == 90

    def test_per_request_error_target_validated(self, table):
        with DrillDownServer(sample_budget=90) as server:
            server.register_table("t", table)
            sid = server.create_session("t")
            with pytest.raises(SessionError):
                server.expand(sid, Rule.trivial(3), approx=True, error_target=-1.0)


class TestEstimatePersistence:
    def test_estimates_survive_snapshot_restore(self, tmp_path, table):
        with DrillDownServer(sample_budget=90, persist_dir=tmp_path) as server:
            server.register_table("t", table)
            sid = server.create_session("t")
            before = server.expand(sid, Rule.trivial(3), approx=True, error_target=0.9)
        revived = DrillDownServer(sample_budget=90, persist_dir=tmp_path)
        try:
            revived.register_table("t", table)
            tree = revived.tree(sid)
            restored = {tuple(c.rule): c.estimate for c in tree.children}
            assert restored == {tuple(c.rule): c.estimate for c in before}
        finally:
            revived.close()

    def test_exact_snapshots_carry_no_estimate_key(self, tmp_path, table):
        with DrillDownServer(sample_budget=90, persist_dir=tmp_path) as server:
            server.register_table("t", table)
            sid = server.create_session("t")
            server.expand(sid, Rule.trivial(3))
        text = (tmp_path / f"{sid}.jsonl").read_text()
        assert '"estimate"' not in text

    def test_restored_session_can_keep_mining_approx(self, tmp_path, table):
        """Warm restore re-threads the catalog's samples into the
        revived session: the next approximate expansion must work and
        match a never-interrupted session's estimates exactly."""
        with DrillDownServer(sample_budget=90, persist_dir=tmp_path) as server:
            server.register_table("t", table)
            sid = server.create_session("t")
            first = server.expand(sid, Rule.trivial(3), approx=True, error_target=0.9)
        revived = DrillDownServer(sample_budget=90, persist_dir=tmp_path)
        try:
            revived.register_table("t", table)
            target = next(
                c for c in revived.tree(sid).children if c.rule.star_indexes
            )
            resumed = revived.expand(
                sid, target.rule, approx=True, error_target=0.9
            )
        finally:
            revived.close()
        control = DrillDownSession(
            table, samples=build_sample_set(table, budget=90, seed=derive_seed("t", 0))
        )
        control.expand(Rule.trivial(3), approx=True, error_target=0.9)
        expected = control.expand(target.rule, approx=True, error_target=0.9)
        assert [(tuple(c.rule), c.count, c.estimate) for c in resumed] == [
            (tuple(c.rule), c.count, c.estimate) for c in expected
        ]
        assert [(tuple(c.rule), c.estimate) for c in first] == [
            (tuple(c.rule), c.estimate)
            for c in control.node(Rule.trivial(3)).children
        ]


class TestApproxOverHTTP:
    @pytest.fixture
    def http_tier(self, table):
        tier = DrillDownServer(sample_budget=90)
        tier.register_table("t", table)
        httpd = serve(tier, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield f"http://{host}:{port}"
        httpd.shutdown()
        tier.close()

    def _call(self, base, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_approx_body_field_returns_metadata(self, http_tier):
        status, created = self._call(http_tier, "POST", "/sessions", {"table": "t"})
        assert status == 201
        sid = created["session_id"]
        status, out = self._call(
            http_tier, "POST", f"/sessions/{sid}/expand",
            {"rule": [None, None, None], "approx": True, "error_target": 0.9},
        )
        assert status == 200 and out["children"]
        for child in out["children"]:
            assert set(child["estimate"]) == ESTIMATE_KEYS
        # The tree echoes the same metadata back on GET.
        status, tree = self._call(http_tier, "GET", f"/sessions/{sid}")
        assert status == 200
        assert [c["estimate"] for c in tree["tree"]["children"]] == [
            c["estimate"] for c in out["children"]
        ]

    def test_exact_response_has_no_estimate_key(self, http_tier):
        _, created = self._call(http_tier, "POST", "/sessions", {"table": "t"})
        sid = created["session_id"]
        status, out = self._call(
            http_tier, "POST", f"/sessions/{sid}/expand", {"rule": [None, None, None]}
        )
        assert status == 200
        assert all("estimate" not in child for child in out["children"])

    def test_non_boolean_approx_is_400(self, http_tier):
        _, created = self._call(http_tier, "POST", "/sessions", {"table": "t"})
        sid = created["session_id"]
        status, out = self._call(
            http_tier, "POST", f"/sessions/{sid}/expand",
            {"rule": [None, None, None], "approx": "yes"},
        )
        assert status == 400 and "approx" in out["message"]

    def test_bad_error_target_is_400(self, http_tier):
        _, created = self._call(http_tier, "POST", "/sessions", {"table": "t"})
        sid = created["session_id"]
        status, _ = self._call(
            http_tier, "POST", f"/sessions/{sid}/expand",
            {"rule": [None, None, None], "approx": True, "error_target": 0},
        )
        assert status == 400


class TestEscalationThroughServer:
    def test_tight_target_returns_exact_list_with_escalated_metadata(self, table):
        with DrillDownServer(sample_budget=90) as server:
            server.register_table("t", table)
            exact_sid = server.create_session("t")
            exact = server.expand(exact_sid, Rule.trivial(3))
            approx_sid = server.create_session("t")
            approx = server.expand(
                approx_sid, Rule.trivial(3), approx=True, error_target=1e-9
            )
            assert [(tuple(c.rule), c.count) for c in approx] == [
                (tuple(c.rule), c.count) for c in exact
            ]
            assert all(
                c.estimate["escalated"] and c.estimate["exact"] for c in approx
            )
