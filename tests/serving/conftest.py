"""Shared fixtures for the serving-tier suite.

``lite_pool`` is the workhorse: a real :class:`CountingPool` whose
thresholds force *exports without worker dispatch* — shared-memory
segments are created (so export lifecycle is genuinely exercised) but
every counting task stays local, keeping the suite fast and
deterministic on single-core CI boxes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.parallel import CountingPool
from repro.core.parallel import _shared_memory as shared_memory
from repro.serving import DrillDownServer

_SERVING_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Stamp every test under tests/serving with the ``serving`` marker
    (registered in pytest.ini), so ``-m serving`` selects the tier;
    files named ``*versioning*`` additionally get ``versioning`` so
    ``-m versioning`` selects the append/version suites alone."""
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
            in_serving = _SERVING_DIR in path.parents
        except OSError:  # pragma: no cover - exotic collection nodes
            continue
        if in_serving or path.parent == _SERVING_DIR:
            item.add_marker(pytest.mark.serving)
            if "versioning" in path.name:
                item.add_marker(pytest.mark.versioning)


@pytest.fixture
def lite_pool():
    """A pool that exports tables but never ships tasks to workers."""
    if shared_memory is None:  # pragma: no cover - exotic builds
        pytest.skip("no shared_memory support")
    pool = CountingPool(2, min_table_rows=1, min_task_rows=10**9)
    yield pool
    pool.close()


@pytest.fixture
def server(retail):
    """A serving tier over the retail table, serial counting."""
    with DrillDownServer() as tier:
        tier.register_table("retail", retail)
        yield tier
