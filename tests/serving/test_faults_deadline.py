"""Deadline-bounded serving: breaker/watchdog/chaos drills (ISSUE 6).

Three layers under test, composed bottom-up:

* unit drills with fake clocks — :class:`CircuitBreaker` transitions,
  :class:`ChaosPolicy` occurrence windows, the fair scheduler's
  deadline-bounded dispatch wait, the in-process server's deadline
  admission and budget refund;
* the contract that the fault layer is *pure overhead on the happy
  path* — a tier with deadlines on answers bit-identically to one
  without (also pinned tier-wide by the replay harness in
  ``tests/integration/test_serving_fuzz.py``);
* multi-process chaos drills against a real :class:`ShardRouter` —
  wedge / drop-reply / crash-on-Nth injected *inside* the worker via
  :class:`ChaosPolicy`, asserting typed errors within the deadline,
  single watchdog-or-observer restarts (the generation guard), and
  bit-identical renders after warm restore.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServingError,
    ShardDownError,
    ShardError,
    UnknownSessionError,
)
from repro.serving import (
    ChaosPolicy,
    ChaosRule,
    CircuitBreaker,
    DrillDownServer,
    ShardRouter,
    ShardWatchdog,
)
from repro.serving.scheduler import FairScheduler
from repro.serving.shard import decode_error, encode_error

pytestmark = pytest.mark.chaos


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- circuit breaker -------------------------------------------------------------


class TestCircuitBreaker:
    def _open_breaker(self, clock) -> CircuitBreaker:
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock, name="s0")
        for _ in range(2):
            breaker.acquire()
            breaker.record_failure()
        assert breaker.state == "open"
        return breaker

    def test_opens_after_threshold_and_sheds_with_retry_after(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock, name="s0")
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == "closed"  # one failure is not a pattern
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 1
        with pytest.raises(CircuitOpenError) as info:
            breaker.acquire()
        assert info.value.retry_after == pytest.approx(5.0)
        assert breaker.rejections == 1

    def test_success_resets_the_consecutive_failure_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        for _ in range(3):  # fail, succeed, fail, succeed, ... never opens
            breaker.acquire()
            breaker.record_failure()
            breaker.acquire()
            breaker.record_success()
        assert breaker.state == "closed" and breaker.opens == 0

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self._open_breaker(clock)
        clock.advance(5.0)
        assert breaker.state == "half_open"
        breaker.acquire()  # the single probe
        with pytest.raises(CircuitOpenError):
            breaker.acquire()  # concurrent caller is shed while probing
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.acquire()  # closed again: everyone admitted

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = self._open_breaker(clock)
        clock.advance(5.0)
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2
        with pytest.raises(CircuitOpenError) as info:
            breaker.acquire()
        assert info.value.retry_after == pytest.approx(5.0)  # full cooldown again

    def test_cancel_probe_allows_immediate_reprobe(self):
        clock = FakeClock()
        breaker = self._open_breaker(clock)
        clock.advance(5.0)
        breaker.acquire()
        breaker.cancel_probe()  # probe was inconclusive (e.g. handle busy)
        assert breaker.state == "half_open"  # cooldown NOT restarted
        breaker.acquire()  # the next caller probes right away
        breaker.record_success()
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ServingError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ServingError):
            CircuitBreaker(cooldown=-1.0)


# -- chaos policy ----------------------------------------------------------------


class TestChaosPolicy:
    def test_after_times_occurrence_window(self):
        policy = ChaosPolicy([ChaosRule(kind="crash", op="expand", after=1, times=1)])
        assert policy.fire("render") is None  # wrong op never counts
        assert policy.fire("expand") is None  # first match: skipped (after=1)
        rule = policy.fire("expand")  # second match: due
        assert rule is not None and rule.kind == "crash"
        assert policy.fire("expand") is None  # window exhausted
        assert policy.fired == 1

    def test_wildcard_op_and_forever_window(self):
        policy = ChaosPolicy([ChaosRule(kind="delay", seconds=0.0, times=None)])
        assert all(policy.fire(op) is not None for op in ("expand", "render", "ping"))

    def test_json_roundtrip_and_dict_rules(self):
        policy = ChaosPolicy(
            [{"kind": "wedge", "op": "render", "seconds": 2.0, "after": 3, "times": 2}]
        )
        decoded = ChaosPolicy.decode(policy.encode())
        assert [r.encode() for r in decoded.rules] == [r.encode() for r in policy.rules]
        # The decoded policy fires on exactly the same call sequence.
        for original, copy in zip(
            [policy.fire("render") for _ in range(6)],
            [decoded.fire("render") for _ in range(6)],
        ):
            assert (original is None) == (copy is None)

    def test_validation(self):
        with pytest.raises(ServingError):
            ChaosRule(kind="nope")
        with pytest.raises(ServingError):
            ChaosRule(kind="wedge", seconds=-1.0)
        with pytest.raises(ServingError):
            ChaosRule(kind="wedge", times=0)
        with pytest.raises(ServingError):
            ChaosRule(kind="wedge", after=-1)

    def test_retry_after_survives_the_shard_wire(self):
        exc = decode_error(encode_error(DeadlineExceededError("late", retry_after=2.5)))
        assert isinstance(exc, DeadlineExceededError)
        assert exc.retry_after == 2.5


# -- watchdog (unit) -------------------------------------------------------------


class TestShardWatchdog:
    def test_run_once_counts_recoveries(self):
        watchdog = ShardWatchdog(probe=lambda: [0, 1], interval=60.0)
        watchdog.run_once()
        assert watchdog.ticks == 1 and watchdog.recoveries == 2
        assert watchdog.stats()["recoveries"] == 2

    def test_run_once_isolates_probe_exceptions(self):
        def bad_probe():
            raise RuntimeError("sweep blew up")

        watchdog = ShardWatchdog(probe=bad_probe, interval=60.0)
        watchdog.run_once()
        watchdog.run_once()
        assert watchdog.ticks == 2 and watchdog.errors == 2  # still ticking

    def test_validation(self):
        with pytest.raises(ServingError):
            ShardWatchdog(probe=lambda: [], interval=0.0)


# -- scheduler deadlines ---------------------------------------------------------


class TestSchedulerDeadlines:
    def test_expired_deadline_aborts_and_withdraws_the_ticket(self):
        clock = FakeClock()
        scheduler = FairScheduler(clock=clock)
        gate = scheduler.dispatch_turn("a")
        gate.__enter__()  # tenant a holds the turn
        with pytest.raises(DeadlineExceededError) as info:
            with scheduler.dispatch_turn("b", deadline_at=clock.now - 1.0):
                pass  # pragma: no cover - never dispatched
        assert info.value.retry_after == 1.0
        assert scheduler.deadline_aborts == 1
        # The abandoned ticket must not leave a ghost tenant blocking
        # rotation.
        assert "b" not in scheduler._queues and "b" not in scheduler._ring
        gate.__exit__(None, None, None)
        with scheduler.dispatch_turn("b"):
            pass
        assert scheduler.stats()["deadline_aborts"] == 1

    def test_abandoning_a_ticket_of_the_active_tenant_keeps_ring_sane(self):
        """The turn-holder's own tenant abandons a *second* ticket: the
        tenant must stay in the ring (the holder's release cleans up),
        and the release path must not double-free."""
        clock = FakeClock()
        scheduler = FairScheduler(clock=clock)
        gate = scheduler.dispatch_turn("a")
        gate.__enter__()
        with pytest.raises(DeadlineExceededError):
            with scheduler.dispatch_turn("a", deadline_at=clock.now):
                pass  # pragma: no cover
        gate.__exit__(None, None, None)
        assert "a" not in scheduler._ring and "a" not in scheduler._queues
        with scheduler.dispatch_turn("a"):
            pass
        assert scheduler.dispatches == 2

    def test_future_deadline_waits_then_aborts_in_real_time(self):
        scheduler = FairScheduler()  # real monotonic clock
        gate = scheduler.dispatch_turn("holder")
        gate.__enter__()
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            with scheduler.dispatch_turn(
                "waiter", deadline_at=time.monotonic() + 0.2
            ):
                pass  # pragma: no cover
        elapsed = time.monotonic() - start
        assert 0.1 <= elapsed < 10.0  # really waited, then really gave up
        gate.__exit__(None, None, None)

    def test_no_deadline_keeps_the_blocking_contract(self):
        scheduler = FairScheduler()
        with scheduler.dispatch_turn("only"):
            pass
        assert scheduler.deadline_aborts == 0


# -- the in-process server -------------------------------------------------------


class TestServerDeadlines:
    def test_ctor_rejects_non_positive_default_deadline(self):
        with pytest.raises(ServingError):
            DrillDownServer(default_deadline=0.0)
        with pytest.raises(ServingError):
            ShardRouter(1, default_deadline=-1.0)  # validated before spawning
        with pytest.raises(ServingError):
            ShardRouter(1, read_retries=-1)

    def test_spent_deadline_budget_fails_admission(self, server):
        sid = server.create_session("retail", k=3, mw=3.0)
        with pytest.raises(DeadlineExceededError):
            server.expand(sid, deadline=0.0)
        with pytest.raises(DeadlineExceededError):
            server.render(sid, deadline=-1.0)
        assert server.deadline_aborts == 2
        assert server.expand(sid)  # the tier itself is fine

    def test_deadline_waiting_on_entry_lock_refunds_the_budget(self, retail):
        with DrillDownServer(tenant_budget=20_000.0) as tier:
            tier.register_table("retail", retail)
            sid = tier.create_session("retail", tenant="alice", k=3, mw=3.0)
            assert tier.scheduler.balance("alice") == 20_000.0
            entry = tier.registry.entry(sid)
            with entry.lock:  # another "request" holds the session
                with pytest.raises(DeadlineExceededError) as info:
                    tier.expand(sid, deadline=0.05)
            assert info.value.retry_after is not None
            # The up-front charge was refunded: a deadline abort never
            # burns the tenant's budget.
            assert tier.scheduler.balance("alice") == 20_000.0
            assert tier.deadline_aborts == 1
            assert tier.expand(sid)  # lock free: same op now succeeds
            assert tier.scheduler.balance("alice") == 20_000.0 - 6000.0

    def test_in_process_chaos_error_fires_then_clears(self, retail):
        policy = ChaosPolicy([ChaosRule(kind="error", op="expand", times=1)])
        with DrillDownServer(chaos=policy) as tier:
            tier.register_table("retail", retail)
            sid = tier.create_session("retail", k=3, mw=3.0)
            with pytest.raises(ShardError):
                tier.expand(sid)
            assert policy.fired == 1
            assert tier.expand(sid)  # occurrence window exhausted

    def test_default_deadline_is_pure_overhead_on_the_happy_path(self, retail):
        with DrillDownServer() as plain, DrillDownServer(default_deadline=30.0) as bounded:
            for tier in (plain, bounded):
                tier.register_table("retail", retail)
            a = plain.create_session("retail", k=3, mw=3.0)
            b = bounded.create_session("retail", k=3, mw=3.0)
            plain.expand(a)
            bounded.expand(b)
            assert plain.render(a) == bounded.render(b)
            assert bounded.stats()["default_deadline"] == 30.0
            assert bounded.stats()["deadline_aborts"] == 0


# -- multi-process router drills -------------------------------------------------


@pytest.mark.slow
class TestRouterFaultDrills:
    def _seed_session(self, router, retail, *, checkpoint: bool = True):
        router.register_table("retail", retail)
        sid = router.create_session("retail", tenant="alice", k=3, mw=3.0)
        router.expand(sid)
        expected = router.render(sid)
        if checkpoint:
            assert router.checkpoint_all() >= 1
        return sid, expected

    def test_wedged_shard_typed_error_restart_and_bitwise_warm_restore(
        self, retail, tmp_path
    ):
        """The acceptance drill: wedge a shard mid-request, get the
        typed deadline error (not a hang), the worker killed and
        restarted, and the snapshotted session rendering bit-identically
        to a never-faulted single-process reference after warm restore."""
        with DrillDownServer() as reference:
            reference.register_table("retail", retail)
            ref_sid = reference.create_session("retail", tenant="alice", k=3, mw=3.0)
            reference.expand(ref_sid)
            ref_render = reference.render(ref_sid)
        with ShardRouter(1, persist_dir=tmp_path) as router:
            sid, expected = self._seed_session(router, retail)
            assert expected == ref_render
            router.inject_chaos(
                0, [ChaosRule(kind="wedge", op="render", seconds=60.0)]
            )
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError) as info:
                router.render(sid, deadline=1.0)
            elapsed = time.monotonic() - start
            assert info.value.retry_after is not None
            # Detection is bounded by the deadline; the epsilon covers
            # the kill + spawn + warm restore that run before raising.
            assert elapsed < 1.0 + 15.0
            assert router.restarts == 1
            assert router.wedge_kills == 1
            assert router.deadline_aborts == 1
            assert router.render(sid) == expected  # bit-identical restore

    def test_dropped_reply_is_a_deadline_error_and_recovers(self, retail, tmp_path):
        with ShardRouter(1, persist_dir=tmp_path) as router:
            sid, expected = self._seed_session(router, retail)
            router.inject_chaos(0, [ChaosRule(kind="drop_reply", op="render")])
            with pytest.raises(DeadlineExceededError):
                router.render(sid, deadline=1.0)
            assert router.restarts == 1
            assert router.render(sid) == expected

    def test_crash_on_second_expand_is_typed_and_tier_serves_on(self, retail):
        with ShardRouter(1) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            router.inject_chaos(
                0, [ChaosRule(kind="crash", op="expand", after=1, times=1)]
            )
            children = router.expand(sid)  # first expand survives (after=1)
            assert children
            with pytest.raises(ShardDownError):
                router.expand(sid, children[0].rule)  # the Nth op crashes
            assert router.restarts == 1
            replacement = router.create_session("retail", k=3, mw=3.0)
            assert router.expand(replacement)

    def test_breaker_opens_sheds_half_open_probes_and_closes(self, retail):
        clock = FakeClock(time.monotonic())
        router = ShardRouter(1, breaker_threshold=2, breaker_cooldown=10.0, clock=clock)
        try:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            original_spawn = router._spawn

            def failing_spawn(index, *, respawn=False):
                raise ServingError("injected: respawn refused")

            router._spawn = failing_spawn
            router._shards[0].process.kill()
            # Two consecutive pipe failures (the respawn keeps failing,
            # so the slot keeps a dead handle) open the circuit.
            # create_session always crosses the pipe (render would fail
            # at the router's own map: the crash dropped the pin).
            with pytest.raises(ShardDownError):
                router.create_session("retail", k=3, mw=3.0)
            with pytest.raises(ShardDownError):
                router.create_session("retail", k=3, mw=3.0)
            assert router._breakers[0].stats()["opens"] == 1
            with pytest.raises(CircuitOpenError) as info:
                router.create_session("retail", k=3, mw=3.0)  # shed: no pipe traffic
            assert info.value.retry_after == pytest.approx(10.0, abs=0.5)
            assert router._breakers[0].rejections == 1
            # Cooldown elapses; the half-open probe still finds the dead
            # handle (one more failure -> reopen), but the respawn now
            # succeeds, so the slot holds a healthy worker again.
            router._spawn = original_spawn
            clock.advance(10.0)
            with pytest.raises(ShardDownError):
                router.create_session("retail", k=3, mw=3.0)
            assert router.restarts == 3
            # The next probe reaches the healthy worker and closes the
            # circuit; the crashed session stayed dead (memory-only).
            clock.advance(10.0)
            replacement = router.create_session("retail", k=3, mw=3.0)
            assert router._breakers[0].state == "closed"
            with pytest.raises(UnknownSessionError):
                router.render(sid)
            # A *typed* application error counts as breaker SUCCESS (the
            # pipe answered): shedding never triggers on client mistakes.
            with pytest.raises(ReproError):
                router.create_session("no-such-table", k=3, mw=3.0)
            assert router._breakers[0].state == "closed"
            assert router.expand(replacement)
        finally:
            router.close()

    def test_stale_generation_observer_cannot_double_restart(self, retail):
        """Regression for the double-restart race: when a respawn fails,
        the slot keeps the SAME (reaped) handle object, so the old
        identity-only first-observer check let a thread that captured
        the handle *before* the first recovery trigger a second restart
        for the same underlying failure.  The generation guard makes
        that stale observer a no-op."""
        router = ShardRouter(1)
        try:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            shard = router._shards[0]
            stale_generation = router._generations[0]
            original_spawn = router._spawn
            router._spawn = lambda index, **kwargs: (_ for _ in ()).throw(
                ServingError("injected: respawn refused")
            )
            shard.process.kill()
            with pytest.raises(ShardDownError):
                router.render(sid)
            assert router.restarts == 1
            # The failed respawn left the same handle in the slot: the
            # identity check alone would admit this stale observer.
            assert router._shards[0] is shard
            assert router._recover_slot(shard, stale_generation) is False
            assert router.restarts == 1  # no second restart
            # A current-generation observer is a legitimate retry.
            router._spawn = original_spawn
            assert router._recover_slot(shard, router._generations[0]) is True
            assert router.restarts == 2
            assert router.create_session("retail", k=3, mw=3.0)
        finally:
            router.close()

    def test_concurrent_requests_on_a_wedged_shard_restart_it_once(self, retail):
        with ShardRouter(1) as router:
            router.register_table("retail", retail)
            sid = router.create_session("retail", k=3, mw=3.0)
            router.inject_chaos(
                0, [ChaosRule(kind="wedge", op="render", seconds=60.0)]
            )
            errors: list[Exception] = []

            def hit() -> None:
                try:
                    router.render(sid, deadline=1.0)
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            # Both callers got a typed error (deadline for the wedged
            # holder and the lock-starved waiter; shard-down for a
            # waiter that raced the condemned handle) -- and the two
            # observers produced exactly ONE restart between them.
            assert len(errors) == 2
            assert all(
                isinstance(exc, (DeadlineExceededError, ShardDownError))
                for exc in errors
            )
            assert router.restarts == 1
            assert router.wedge_kills == 1

    def test_read_retries_make_reads_transparent_across_a_crash(
        self, retail, tmp_path
    ):
        with ShardRouter(1, persist_dir=tmp_path, read_retries=1, retry_seed=7) as router:
            sid, expected = self._seed_session(router, retail)
            router._shards[0].process.kill()
            # One transparent retry: the first attempt observes the
            # crash (restarting + warm-restoring the shard), the second
            # lands on the replacement.  Read-only, so safe.
            assert router.render(sid) == expected
            assert router.restarts == 1

    def test_mutating_ops_are_never_retried(self, retail, tmp_path):
        with ShardRouter(1, persist_dir=tmp_path, read_retries=3, retry_seed=7) as router:
            sid, _expected = self._seed_session(router, retail)
            router._shards[0].process.kill()
            with pytest.raises(ShardDownError):
                router.expand(sid)  # may have been half-applied: surface it
            assert router.restarts == 1

    def test_probe_recovers_a_crashed_shard_without_request_traffic(
        self, retail, tmp_path
    ):
        with ShardRouter(1, persist_dir=tmp_path) as router:
            sid, expected = self._seed_session(router, retail)
            router._shards[0].process.kill()
            assert router.probe_shards() == [0]  # the watchdog's sweep
            assert router.restarts == 1
            assert router.probe_shards() == []  # healthy: sweep is a no-op
            assert router.render(sid) == expected

    def test_probe_kills_a_shard_wedged_on_a_deadline_less_request(
        self, retail, tmp_path
    ):
        with ShardRouter(1, persist_dir=tmp_path, wedge_timeout=0.5) as router:
            sid, expected = self._seed_session(router, retail)
            router.inject_chaos(
                0, [ChaosRule(kind="wedge", op="render", seconds=120.0)]
            )
            caught: list[Exception] = []

            def blocked_render() -> None:
                try:
                    router.render(sid)  # no deadline: would hang forever
                except Exception as exc:  # noqa: BLE001
                    caught.append(exc)

            thread = threading.Thread(target=blocked_render)
            thread.start()
            give_up = time.monotonic() + 30.0
            while router._shards[0].busy_since is None and time.monotonic() < give_up:
                time.sleep(0.01)
            assert router._shards[0].busy_since is not None
            time.sleep(0.6)  # let the wedge budget expire
            assert router.probe_shards() == [0]
            assert router.wedge_kills == 1
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert caught and isinstance(caught[0], ShardDownError)
            assert router.render(sid) == expected

    def test_background_watchdog_thread_restarts_on_its_own(self, retail):
        with ShardRouter(1, watchdog_interval=0.2) as router:
            router.register_table("retail", retail)
            assert router.watchdog is not None and router.watchdog.is_alive()
            router._shards[0].process.kill()
            give_up = time.monotonic() + 60.0
            # Wait for the recovery to *finish* (the restart counter
            # increments when recovery begins; the replacement worker is
            # installed and re-registered a moment later).
            while (
                router.restarts < 1 or router._recovering[0]
            ) and time.monotonic() < give_up:
                time.sleep(0.05)
            assert router.restarts == 1  # no request ever observed the crash
            assert router.create_session("retail", k=2, mw=3.0)
            stats = router.stats()
            assert stats["router"]["watchdog"]["ticks"] >= 1
            assert stats["router"]["wedge_kills"] == 0
            assert all("breaker" in entry for entry in stats["shards"])

    def test_stats_surface_the_fault_layer(self, retail):
        with ShardRouter(1, default_deadline=30.0) as router:
            router.register_table("retail", retail)
            stats = router.stats()["router"]
            assert stats["default_deadline"] == 30.0
            assert stats["deadline_aborts"] == 0
            assert stats["wedge_kills"] == 0
            assert stats["watchdog"] is None  # not started by default
