"""FairScheduler: token budgets throttle typed-and-fast, turns rotate."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import TenantBudgetError
from repro.serving import FairScheduler


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudgets:
    def test_unmetered_by_default(self):
        scheduler = FairScheduler()
        for _ in range(100):
            scheduler.charge("alice", 1e9)
        assert scheduler.balance("alice") is None

    def test_exhaustion_raises_typed_error_immediately(self):
        scheduler = FairScheduler(default_budget=100.0)
        scheduler.charge("alice", 60.0)
        start = time.perf_counter()
        with pytest.raises(TenantBudgetError) as info:
            scheduler.charge("alice", 60.0)
        assert time.perf_counter() - start < 1.0  # throttle, not a hang
        assert info.value.tenant == "alice"
        assert info.value.requested == 60.0
        assert info.value.available == pytest.approx(40.0)
        assert info.value.retry_after is None  # no refill configured

    def test_budgets_are_per_tenant(self):
        scheduler = FairScheduler(default_budget=100.0)
        scheduler.charge("alice", 100.0)
        scheduler.charge("bob", 100.0)  # bob's own bucket
        with pytest.raises(TenantBudgetError):
            scheduler.charge("alice", 1.0)

    def test_refill_over_time(self):
        clock = FakeClock()
        scheduler = FairScheduler(
            default_budget=100.0, default_refill_per_second=10.0, clock=clock
        )
        scheduler.charge("alice", 100.0)
        with pytest.raises(TenantBudgetError) as info:
            scheduler.charge("alice", 50.0)
        assert info.value.retry_after == pytest.approx(5.0)
        clock.advance(5.0)
        scheduler.charge("alice", 50.0)  # refilled
        assert scheduler.balance("alice") == pytest.approx(0.0)

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        scheduler = FairScheduler(
            default_budget=100.0, default_refill_per_second=10.0, clock=clock
        )
        clock.advance(1e6)
        assert scheduler.balance("alice") == pytest.approx(100.0)

    def test_explicit_per_tenant_budget(self):
        scheduler = FairScheduler(default_budget=10.0)
        scheduler.set_budget("whale", 1000.0)
        scheduler.charge("whale", 500.0)
        with pytest.raises(TenantBudgetError):
            scheduler.charge("minnow", 500.0)

    def test_refund_restores_tokens_capped(self):
        scheduler = FairScheduler(default_budget=100.0)
        scheduler.charge("alice", 80.0)
        scheduler.refund("alice", 80.0)
        assert scheduler.balance("alice") == pytest.approx(100.0)
        scheduler.refund("alice", 50.0)  # over-refund caps at capacity
        assert scheduler.balance("alice") == pytest.approx(100.0)
        unmetered = FairScheduler()  # no default budget
        unmetered.refund("bob", 10.0)  # accounting only, still unmetered
        assert unmetered.balance("bob") is None

    def test_stats_accounting(self):
        scheduler = FairScheduler(default_budget=100.0)
        scheduler.charge("alice", 30.0)
        with pytest.raises(TenantBudgetError):
            scheduler.charge("alice", 100.0)
        stats = scheduler.stats()["tenants"]["'alice'"]
        assert stats["charged"] == 30.0 and stats["throttled"] == 1


class TestRoundRobin:
    def test_uncontended_turn_is_immediate(self):
        scheduler = FairScheduler()
        with scheduler.dispatch_turn("alice"):
            pass
        assert scheduler.dispatches == 1

    def test_turns_rotate_across_tenants(self):
        """With A holding the turn and [A, B, C, A] queued behind it,
        grants go A, B, C, A — round-robin, not FIFO-per-arrival."""
        scheduler = FairScheduler()
        order: list[str] = []
        holding = threading.Event()
        release = threading.Event()
        threads: list[threading.Thread] = []

        def holder():
            with scheduler.dispatch_turn("A"):
                order.append("A")
                holding.set()
                release.wait(timeout=10.0)

        def waiter(tenant: str):
            with scheduler.dispatch_turn(tenant):
                order.append(tenant)

        first = threading.Thread(target=holder)
        first.start()
        assert holding.wait(timeout=10.0)
        # Enqueue strictly in this arrival order: A again, then B, C.
        for tenant in ("A", "B", "C"):
            thread = threading.Thread(target=waiter, args=(tenant,))
            thread.start()
            threads.append(thread)
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                with scheduler._lock:
                    if tenant in scheduler._queues and scheduler._queues[tenant].waiting:
                        break
                time.sleep(0.005)
        release.set()
        first.join(timeout=10.0)
        for thread in threads:
            thread.join(timeout=10.0)
        assert order == ["A", "B", "C", "A"]
        assert scheduler.dispatches == 4

    def test_turn_released_on_exception(self):
        scheduler = FairScheduler()
        with pytest.raises(RuntimeError):
            with scheduler.dispatch_turn("alice"):
                raise RuntimeError("boom")
        # The gate is free again.
        with scheduler.dispatch_turn("bob"):
            pass
        assert scheduler.dispatches == 2

    def test_pool_hook_is_exercised(self, census_small):
        """Installed on a real CountingPool, the gate wraps every
        dispatched batch (single-worker-capable smoke: 2 workers on a
        20k-row census table forces at least the size-1 batch out)."""
        from repro.core import SizeWeight, brs
        from repro.core.parallel import CountingPool

        pool = CountingPool(2, min_table_rows=1_000, min_task_rows=1_000)
        scheduler = FairScheduler()
        pool.scheduler = scheduler
        try:
            backend_result = brs(census_small, SizeWeight(), 2, 3.0, pool=pool)
            serial_result = brs(census_small, SizeWeight(), 2, 3.0)
            assert backend_result.rules == serial_result.rules
            if pool.usable:  # forked workers available on this platform
                assert scheduler.dispatches > 0
        finally:
            pool.close()
