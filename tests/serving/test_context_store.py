"""ContextStore + SearchContext.clone: sharing without corruption.

The load-bearing claims: a leased clone skips the full-table build but
returns bit-identical rules; clones and prototypes are mutation-
isolated; publishing is first-writer-wins; eviction bounds the store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, SizeWeight, brs
from repro.core.drilldown import drilldown_tag
from repro.core.search_cache import SearchContext
from repro.serving import ContextStore
from repro.session import DrillDownSession


@pytest.fixture
def wf():
    return SizeWeight()


def _tag(wf, mw=3.0):
    return drilldown_tag("rule", Rule.trivial(4), None, measure=None, wf=wf, mw=mw)


class TestClone:
    def test_clone_skips_build_and_matches(self, retail, wf):
        context = SearchContext(retail, wf, 3.0)
        original = brs(retail, wf, 3, 3.0, context=context)
        clone = context.clone()
        assert clone._built and clone.cached_candidates == context.cached_candidates
        rerun = brs(retail, wf, 3, 3.0, context=clone)
        assert rerun.rules == original.rules
        # The clone re-served the run from cache: no new size-1 build.
        assert clone.total_stats.candidates_generated == 0

    def test_clone_isolated_from_prototype(self, retail, wf):
        context = SearchContext(retail, wf, 3.0)
        brs(retail, wf, 2, 3.0, context=context)
        clone = context.clone()
        before = {k: (c.marginal, c.epoch, c.expanded) for k, c in context._cands.items()}
        # Drive the clone hard: a fresh greedy run mutates its heaps,
        # epochs, and marginals.
        brs(retail, wf, 3, 3.0, context=clone)
        after = {k: (c.marginal, c.epoch, c.expanded) for k, c in context._cands.items()}
        assert before == after  # prototype untouched

    def test_clone_after_nonmonotone_top_resets_bounds(self, retail, wf):
        """A clone leased after a full greedy run serves a *fresh* run
        (top restarts at the seed) with identical results."""
        context = SearchContext(retail, wf, 3.0)
        first = brs(retail, wf, 3, 3.0, context=context)
        # The prototype's _last_top is now the final greedy top; a new
        # session starts over from zero — lower, hence non-monotone.
        clone = context.clone()
        again = brs(retail, wf, 3, 3.0, context=clone)
        assert again.rules == first.rules

    def test_clone_shares_row_arrays(self, retail, wf):
        context = SearchContext(retail, wf, 3.0)
        brs(retail, wf, 3, 3.0, context=context)
        clone = context.clone()
        shared = sum(
            1
            for key, cand in context._cands.items()
            if cand.rows is not None and clone._cands[key].rows is cand.rows
        )
        assert shared > 0  # zero-copy: materialised rows shared by reference

    def test_clone_with_pool_gets_own_backend(self, retail, wf, lite_pool):
        context = SearchContext(retail, wf, 3.0, pool=lite_pool)
        clone = context.clone(pool=lite_pool, tenant="alice")
        assert clone.backend is not None and clone.backend is not context.backend
        assert clone.backend.export is context.backend.export  # one export
        assert clone.backend.tenant == "alice"
        # Detached clone (no pool) counts serially.
        assert context.clone().backend is None


class TestStore:
    def test_lease_miss_then_publish_then_hit(self, retail, wf):
        store = ContextStore()
        tag = _tag(wf)
        assert store.lease(retail, tag) is None
        context = SearchContext(retail, wf, 3.0)
        context.source, context.tag = retail, tag
        brs(retail, wf, 3, 3.0, context=context)
        assert store.publish(retail, tag, context) is True
        leased = store.lease(retail, tag)
        assert leased is not None and leased is not context
        assert leased.source is retail and leased.tag == tag
        assert store.stats() == {"prototypes": 1, "hits": 1, "misses": 1, "publishes": 1}

    def test_publish_first_writer_wins(self, retail, wf):
        store = ContextStore()
        tag = _tag(wf)
        a = SearchContext(retail, wf, 3.0)
        b = SearchContext(retail, wf, 3.0)
        assert store.publish(retail, tag, a) is True
        assert store.publish(retail, tag, b) is False
        assert len(store) == 1

    def test_keyed_by_table_identity_and_tag(self, retail, tiny_table, wf):
        store = ContextStore()
        tag = _tag(wf)
        store.publish(retail, tag, SearchContext(retail, wf, 3.0))
        assert store.lease(tiny_table, tag) is None  # other table
        assert store.lease(retail, _tag(wf, mw=4.0)) is None  # other mw
        other_wf = SizeWeight()  # equal config, different instance
        assert store.lease(retail, _tag(other_wf)) is None

    def test_drop_table_and_clear(self, retail, tiny_table, wf):
        store = ContextStore()
        store.publish(retail, _tag(wf), SearchContext(retail, wf, 3.0))
        store.publish(retail, _tag(wf, mw=4.0), SearchContext(retail, wf, 4.0))
        store.publish(tiny_table, _tag(wf), SearchContext(tiny_table, wf, 3.0))
        assert store.drop_table(retail) == 2 and len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_lru_cap(self, retail, wf):
        store = ContextStore(max_prototypes=2)
        tags = [_tag(wf, mw=float(m)) for m in (2, 3, 4)]
        for tag, m in zip(tags, (2.0, 3.0, 4.0)):
            store.publish(retail, tag, SearchContext(retail, wf, m))
        assert len(store) == 2
        assert store.lease(retail, tags[0]) is None  # oldest evicted


class TestSessionIntegration:
    def test_two_sessions_share_one_lattice(self, retail):
        """Second tenant's expansion leases the first's published
        context — zero candidate generation — with identical children."""
        store = ContextStore()
        wf = SizeWeight()
        first = DrillDownSession(retail, wf=wf, k=3, mw=3.0, context_store=store)
        second = DrillDownSession(retail, wf=wf, k=3, mw=3.0, context_store=store)
        a = first.expand(first.root.rule)
        assert store.stats()["publishes"] == 1
        b = second.expand(second.root.rule)
        assert [c.rule for c in a] == [c.rule for c in b]
        assert store.hits == 1
        leased = second._search_contexts[("rule", second.root.rule, None)]
        assert leased.total_stats.candidates_generated == 0  # served from cache

    def test_store_results_identical_to_private(self, retail):
        wf = SizeWeight()
        store = ContextStore()
        shared_sessions = [
            DrillDownSession(retail, wf=wf, k=3, mw=3.0, context_store=store)
            for _ in range(2)
        ]
        private = DrillDownSession(retail, wf=wf, k=3, mw=3.0)
        expected = [c.rule for c in private.expand(private.root.rule)]
        walmart = Rule.from_named(retail, Store="Walmart")
        expected2 = [c.rule for c in private.expand(walmart)]
        for session in shared_sessions:
            assert [c.rule for c in session.expand(session.root.rule)] == expected
            assert [c.rule for c in session.expand(walmart)] == expected2

    def test_star_expansions_share_too(self, retail):
        wf = SizeWeight()
        store = ContextStore()
        a = DrillDownSession(retail, wf=wf, k=3, mw=3.0, context_store=store)
        b = DrillDownSession(retail, wf=wf, k=3, mw=3.0, context_store=store)
        ra = a.expand_star(a.root.rule, "Region")
        rb = b.expand_star(b.root.rule, "Region")
        assert [c.rule for c in ra] == [c.rule for c in rb]
        assert store.hits == 1

    def test_different_config_never_shared(self, retail):
        store = ContextStore()
        wf = SizeWeight()
        a = DrillDownSession(retail, wf=wf, k=3, mw=3.0, context_store=store)
        b = DrillDownSession(retail, wf=wf, k=3, mw=4.0, context_store=store)
        a.expand(a.root.rule)
        b.expand(b.root.rule)
        assert store.hits == 0 and store.stats()["prototypes"] == 2

    def test_measure_weighted_sessions_share(self, retail):
        store = ContextStore()
        wf = SizeWeight()
        a = DrillDownSession(retail, wf=wf, k=3, mw=3.0, measure="Sales", context_store=store)
        b = DrillDownSession(retail, wf=wf, k=3, mw=3.0, measure="Sales", context_store=store)
        ca = a.expand(a.root.rule)
        cb = b.expand(b.root.rule)
        assert store.hits == 1
        assert [(c.rule, c.count) for c in ca] == [(c.rule, c.count) for c in cb]
        np.testing.assert_allclose(
            [c.count for c in ca], [c.count for c in cb]
        )
