"""SessionRegistry: TTL expiry, LRU eviction, close semantics.

Also covers the session-level satellite: ``close()`` idempotent and
eviction-safe, use-after-close raising ``SessionClosedError``.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import SessionClosedError, ServingError, UnknownSessionError
from repro.serving import SessionRegistry
from repro.session import DrillDownSession


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _session(retail, **kwargs) -> DrillDownSession:
    return DrillDownSession(retail, k=3, mw=3.0, **kwargs)


class TestLookup:
    def test_add_and_get(self, retail):
        registry = SessionRegistry()
        session = _session(retail)
        entry = registry.add(session, tenant="alice")
        assert registry.get(entry.session_id) is session
        assert registry.entry(entry.session_id).tenant == "alice"
        assert len(registry) == 1

    def test_unknown_id(self):
        with pytest.raises(UnknownSessionError):
            SessionRegistry().get("sess-999999")

    def test_session_ids_filter_by_tenant(self, retail):
        registry = SessionRegistry()
        a = registry.add(_session(retail), tenant="alice").session_id
        b = registry.add(_session(retail), tenant="bob").session_id
        assert registry.session_ids(tenant="alice") == (a,)
        assert set(registry.session_ids()) == {a, b}

    def test_invalid_capacity(self):
        with pytest.raises(ServingError):
            SessionRegistry(max_sessions=0)


class TestTTL:
    def test_idle_session_expires(self, retail):
        clock = FakeClock()
        registry = SessionRegistry(ttl_seconds=60.0, clock=clock)
        session = _session(retail)
        sid = registry.add(session, tenant="alice").session_id
        clock.advance(61.0)
        with pytest.raises(UnknownSessionError):
            registry.get(sid)
        assert session.closed and registry.ttl_evictions == 1

    def test_lookup_refreshes_ttl(self, retail):
        clock = FakeClock()
        registry = SessionRegistry(ttl_seconds=60.0, clock=clock)
        sid = registry.add(_session(retail)).session_id
        clock.advance(40.0)
        registry.get(sid)  # touch
        clock.advance(40.0)
        assert registry.get(sid) is not None  # 40s idle, not 80s

    def test_evict_expired_reports_ids(self, retail):
        clock = FakeClock()
        registry = SessionRegistry(ttl_seconds=10.0, clock=clock)
        sid = registry.add(_session(retail)).session_id
        clock.advance(11.0)
        assert registry.evict_expired() == [sid]
        assert len(registry) == 0


class TestLRU:
    def test_capacity_evicts_least_recently_used(self, retail):
        registry = SessionRegistry(max_sessions=2)
        s1, s2, s3 = (_session(retail) for _ in range(3))
        sid1 = registry.add(s1).session_id
        sid2 = registry.add(s2).session_id
        registry.get(sid1)  # sid2 is now the LRU
        registry.add(s3)
        assert s2.closed and not s1.closed and not s3.closed
        assert sid2 not in registry and registry.lru_evictions == 1

    def test_eviction_closes_but_spares_shared_pool(self, retail, lite_pool):
        """Evicting one tenant unlinks nothing another tenant still uses."""
        registry = SessionRegistry(max_sessions=1)
        survivor_owner = _session(retail, pool=lite_pool)
        registry.add(survivor_owner)
        exports_before = lite_pool.export_count()
        registry.add(_session(retail, pool=lite_pool))  # evicts the first
        assert survivor_owner.closed
        assert not lite_pool.closed
        assert lite_pool.export_count() == exports_before  # nothing unlinked


class TestCloseSemantics:
    def test_close_is_idempotent(self, retail):
        session = _session(retail)
        session.close()
        session.close()
        assert session.closed

    def test_registry_close_then_unknown(self, retail):
        registry = SessionRegistry()
        sid = registry.add(_session(retail)).session_id
        assert registry.close(sid) is True
        assert registry.close(sid) is False
        with pytest.raises(UnknownSessionError):
            registry.get(sid)

    def test_use_after_close_raises_typed_error(self, retail):
        session = _session(retail)
        session.expand(session.root.rule)
        session.close()
        for operation in (
            lambda: session.expand(session.root.rule),
            lambda: session.expand_star(session.root.rule, "Region"),
            lambda: session.expand_traditional(session.root.rule, "Store"),
            lambda: session.collapse(session.root.rule),
            lambda: session.refresh_exact_counts(),
        ):
            with pytest.raises(SessionClosedError):
                operation()
        # Read-only access keeps working on the last displayed tree.
        assert len(session.displayed()) == 4
        assert session.to_text().strip()

    def test_on_close_fires_exactly_once(self, retail):
        fired = []
        session = _session(retail, on_close=fired.append)
        session.close()
        session.close()
        assert fired == [session]

    def test_close_during_inflight_expand_defers_owned_pool(self, retail, monkeypatch):
        """Eviction mid-expand: the expand completes, the pool release
        waits for it, later calls raise SessionClosedError."""
        session = DrillDownSession(retail, k=3, mw=3.0, n_workers=2)
        pool = session.pool
        started = threading.Event()
        release = threading.Event()
        original = session._acquire

        def stalled_acquire(rule):
            started.set()
            release.wait(timeout=10.0)
            return original(rule)

        monkeypatch.setattr(session, "_acquire", stalled_acquire)
        results: dict = {}

        def run():
            results["children"] = session.expand(session.root.rule)

        worker = threading.Thread(target=run)
        worker.start()
        assert started.wait(timeout=10.0)
        session.close()  # mid-expand, from another thread
        assert session.closed
        assert not pool.closed  # deferred behind the in-flight expand
        release.set()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert results["children"]  # the in-flight expand completed
        assert pool.closed  # ... and the owned pool drained after it
        with pytest.raises(SessionClosedError):
            session.expand(session.root.rule)

    def test_close_all(self, retail):
        registry = SessionRegistry()
        sessions = [_session(retail) for _ in range(3)]
        for s in sessions:
            registry.add(s)
        registry.close_all()
        assert len(registry) == 0 and all(s.closed for s in sessions)

    def test_stats(self, retail):
        registry = SessionRegistry(max_sessions=8, ttl_seconds=60.0)
        registry.add(_session(retail), tenant="alice")
        registry.add(_session(retail), tenant="alice")
        registry.add(_session(retail), tenant="bob")
        stats = registry.stats()
        assert stats["sessions"] == 3
        assert stats["per_tenant"] == {"alice": 2, "bob": 1}
