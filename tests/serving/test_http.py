"""The stdlib HTTP front end, driven exactly like the SERVING.md walkthrough."""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import DrillDownServer
from repro.serving.http import rule_from_wire, rule_to_wire, serve
from repro.core.rule import STAR, Rule
from repro.errors import ReproError


@pytest.fixture
def http_tier(retail):
    """A live threaded HTTP server on an ephemeral port."""
    tier = DrillDownServer(tenant_budget=20_000)
    tier.register_table("retail", retail)
    httpd = serve(tier, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", tier
    httpd.shutdown()
    tier.close()


def call(base: str, method: str, path: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestWireFormat:
    def test_rule_roundtrip(self):
        rule = Rule(["Walmart", STAR, "CA-1"])
        assert rule_to_wire(rule) == ["Walmart", None, "CA-1"]
        assert rule_from_wire(["Walmart", None, "CA-1"], 3) == rule

    def test_bad_wire_rule(self):
        with pytest.raises(ReproError):
            rule_from_wire(["Walmart"], 3)
        with pytest.raises(ReproError):
            rule_from_wire("Walmart", 1)


class TestEndpoints:
    def test_health_stats_tables(self, http_tier):
        base, _ = http_tier
        assert call(base, "GET", "/healthz") == (200, {"ok": True})
        status, stats = call(base, "GET", "/stats")
        assert status == 200 and stats["tables"] == ["retail"]
        assert call(base, "GET", "/tables")[1] == {"tables": ["retail"]}

    def test_register_inline_table(self, http_tier):
        base, _ = http_tier
        status, body = call(base, "POST", "/tables", {
            "name": "mini",
            "columns": ["A", "B"],
            "rows": [["a", "x"], ["a", "y"], ["b", "x"]],
        })
        assert status == 201 and body == {"name": "mini", "rows": 3, "columns": ["A", "B"]}

    def test_register_needs_name_and_payload(self, http_tier):
        base, _ = http_tier
        assert call(base, "POST", "/tables", {"dataset": "retail"})[0] == 400
        assert call(base, "POST", "/tables", {"name": "x"})[0] == 400
        assert call(base, "POST", "/tables", {"name": "x", "dataset": "nope"})[0] == 400

    def test_walkthrough(self, http_tier):
        """The SERVING.md curl sequence, end to end."""
        base, tier = http_tier
        status, created = call(base, "POST", "/sessions",
                               {"table": "retail", "tenant": "alice", "k": 3, "mw": 3.0})
        assert status == 201
        sid = created["session_id"]
        assert created["columns"] == ["Store", "Product", "Region", "Sales"]
        assert created["root"]["count"] == 6000

        status, expanded = call(base, "POST", f"/sessions/{sid}/expand",
                                {"rule": [None, None, None, None]})
        assert status == 200
        rules = [c["rule"] for c in expanded["children"]]
        assert ["Walmart", None, None, None] in rules  # the paper's Table 2

        status, level2 = call(base, "POST", f"/sessions/{sid}/expand",
                              {"rule": ["Walmart", None, None, None]})
        assert status == 200
        assert ["Walmart", "cookies", None, None] in [
            c["rule"] for c in level2["children"]
        ]  # Table 3

        status, tree = call(base, "GET", f"/sessions/{sid}")
        assert status == 200 and len(tree["tree"]["children"]) == 3

        status, rendered = call(base, "GET", f"/sessions/{sid}/render")
        assert status == 200 and "Walmart" in rendered["text"]

        status, collapsed = call(base, "POST", f"/sessions/{sid}/collapse",
                                 {"rule": ["Walmart", None, None, None]})
        assert status == 200

        assert call(base, "DELETE", f"/sessions/{sid}") == (200, {"closed": True})
        assert call(base, "POST", f"/sessions/{sid}/expand",
                    {"rule": [None, None, None, None]})[0] == 404

    def test_star_expansion(self, http_tier):
        base, _ = http_tier
        sid = call(base, "POST", "/sessions", {"table": "retail", "mw": 3.0})[1]["session_id"]
        status, body = call(base, "POST", f"/sessions/{sid}/expand_star",
                            {"rule": [None, None, None, None], "column": "Region"})
        assert status == 200
        assert all(c["rule"][2] is not None for c in body["children"])

    def test_budget_throttles_with_429(self, http_tier):
        base, _ = http_tier
        sid = call(base, "POST", "/sessions",
                   {"table": "retail", "tenant": "greedy"})[1]["session_id"]
        statuses = []
        for _ in range(4):  # 4 x 6000 rows > the 20k budget
            status, body = call(base, "POST", f"/sessions/{sid}/expand",
                                {"rule": [None, None, None, None]})
            statuses.append(status)
            if status == 200:
                call(base, "POST", f"/sessions/{sid}/collapse",
                     {"rule": [None, None, None, None]})
        assert statuses.count(200) == 3
        assert statuses[-1] == 429
        status, error = call(base, "POST", f"/sessions/{sid}/expand",
                             {"rule": [None, None, None, None]})
        assert status == 429 and error["error"] == "TenantBudgetError"

    def test_error_mapping(self, http_tier):
        base, _ = http_tier
        # Unknown session -> 404.
        assert call(base, "GET", "/sessions/sess-424242")[0] == 404
        # Unknown table -> 404.
        assert call(base, "POST", "/sessions", {"table": "nope"})[0] == 404
        # Malformed rule -> 400.
        sid = call(base, "POST", "/sessions", {"table": "retail"})[1]["session_id"]
        assert call(base, "POST", f"/sessions/{sid}/expand", {"rule": ["x"]})[0] == 400
        # Unknown path -> 404; non-JSON body -> 400.
        assert call(base, "GET", "/nope")[0] == 404
        request = urllib.request.Request(
            base + "/sessions", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400


class TestErrorMappingRegressions:
    """Paths that used to 500 (or silently misbehave) must be clean
    client errors.  Each test failed before its fix in serving/http.py."""

    def test_out_of_range_star_column_is_400_not_500(self, http_tier):
        """IndexError from a bad column index used to escape as 500."""
        base, _ = http_tier
        sid = call(base, "POST", "/sessions", {"table": "retail"})[1]["session_id"]
        for column in (99, -7):
            status, body = call(
                base, "POST", f"/sessions/{sid}/expand_star",
                {"rule": [None, None, None, None], "column": column},
            )
            assert status == 400, f"column {column}: expected 400, got {status}"
            assert body["error"] == "IndexError"

    def test_engine_and_parameter_errors_are_typed_400s(
        self, http_tier, monkeypatch
    ):
        """core validation errors travel the wire under their own names.

        ``brs_iter``/``params`` used to raise bare ``ValueError``: the
        mapper answered 400, but the body said ``"ValueError"`` — the
        client could not tell a bad engine knob from any other bad
        input, and ``except ReproError`` boundaries missed it.  Now
        they raise :class:`EngineError` / :class:`ParameterError`
        (``ReproError`` subclasses) and the wire carries the type.
        These assertions failed before that change.
        """
        from repro.errors import EngineError, ParameterError

        base, tier = http_tier
        sid = call(base, "POST", "/sessions", {"table": "retail"})[1]["session_id"]
        root = {"rule": [None, None, None, None]}

        def bad_engine(*args, **kwargs):
            raise EngineError("unknown search engine 'warp'")

        monkeypatch.setattr(tier, "expand", bad_engine)
        status, body = call(base, "POST", f"/sessions/{sid}/expand", root)
        assert status == 400
        assert body["error"] == "EngineError"
        assert "warp" in body["message"]

        def bad_params(*args, **kwargs):
            raise ParameterError("target_fraction must be in [0, 1]")

        monkeypatch.setattr(tier, "expand", bad_params)
        status, body = call(base, "POST", f"/sessions/{sid}/expand", root)
        assert status == 400
        assert body["error"] == "ParameterError"

    def test_core_validation_raises_typed_and_legacy_catchable(self):
        """The dual inheritance contract: new typed classes are still
        ValueErrors, so pre-existing except-clauses keep working."""
        from repro.core.brs import brs_iter, brs_time_limited
        from repro.core.params import exponent_for_target_fraction, kkt_analysis
        from repro.errors import EngineError, ParameterError, ReproError

        with pytest.raises(EngineError):
            brs_iter(None, None, 3.0, engine="warp")
        with pytest.raises(ReproError):  # and via the typed base
            brs_iter(None, None, 3.0, engine="warp")
        with pytest.raises(EngineError):
            brs_time_limited(None, None, 3.0, 0.0)
        with pytest.raises(ParameterError):
            exponent_for_target_fraction([0.5], 1.5)
        with pytest.raises(ParameterError):
            kkt_analysis([0.5], [1.0, 2.0], 1.0)
        assert issubclass(EngineError, ValueError)
        assert issubclass(ParameterError, ValueError)

    def test_wrong_content_type_is_400(self, http_tier):
        """A declared non-JSON body used to be parsed as JSON anyway."""
        base, _ = http_tier
        request = urllib.request.Request(
            base + "/sessions",
            data=json.dumps({"table": "retail"}).encode(),
            method="POST",
            headers={"Content-Type": "text/plain"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400
        body = json.loads(info.value.read())
        assert "Content-Type" in body["message"]

    def test_curl_default_content_type_still_accepted(self, http_tier):
        """The docs walkthrough posts with curl -d, which labels JSON
        bodies application/x-www-form-urlencoded; that stays working."""
        base, _ = http_tier
        request = urllib.request.Request(
            base + "/sessions",
            data=json.dumps({"table": "retail"}).encode(),
            method="POST",
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 201

    def test_absent_content_type_still_accepted(self, http_tier):
        base, _ = http_tier
        request = urllib.request.Request(
            base + "/sessions",
            data=json.dumps({"table": "retail"}).encode(),
            method="POST",
        )
        request.remove_header("Content-type")  # urllib adds a default
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 201

    def test_unsupported_method_answers_json(self, http_tier):
        """PUT/PATCH used to get the stdlib's HTML error page."""
        base, _ = http_tier
        for method in ("PUT", "PATCH"):
            request = urllib.request.Request(
                base + "/tables", data=b"{}", method=method,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=30)
            assert info.value.code == 501
            body = json.loads(info.value.read())  # JSON, not HTML
            assert body["error"] == "HTTPError" and method in body["message"]

    def test_non_array_rows_and_columns_are_400(self, http_tier):
        """A string for "rows" used to be iterated character by
        character into a one-column table."""
        base, _ = http_tier
        assert call(base, "POST", "/tables",
                    {"name": "x", "columns": ["A"], "rows": "oops"})[0] == 400
        assert call(base, "POST", "/tables",
                    {"name": "x", "columns": "A", "rows": [["a"]]})[0] == 400

    def test_malformed_json_and_unknown_route_stay_clean(self, http_tier):
        """Regression guard for the already-correct paths the issue names."""
        base, _ = http_tier
        request = urllib.request.Request(
            base + "/sessions", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"] == "ReproError"
        status, body = call(base, "GET", "/definitely/not/a/route")
        assert status == 404 and body["error"] == "NotFound"


@pytest.fixture
def sharded_tier(retail):
    """A live HTTP front end over a 2-shard router."""
    from repro.serving import ShardRouter

    tier = ShardRouter(2)
    tier.register_table("retail", retail)
    httpd = serve(tier, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", tier
    httpd.shutdown()
    tier.close()


class TestShardedFrontEnd:
    """`--shards N` serves the same wire responses through worker
    processes; /stats gains the per-shard breakdown; a dead shard is a
    typed 503."""

    def test_sharded_walkthrough_matches_single_process(self, http_tier, sharded_tier):
        plain_base, _ = http_tier
        shard_base, router = sharded_tier
        plain_sid = call(plain_base, "POST", "/sessions",
                         {"table": "retail", "tenant": "alice", "k": 3, "mw": 3.0})[1]["session_id"]
        shard_sid = call(shard_base, "POST", "/sessions",
                         {"table": "retail", "tenant": "alice", "k": 3, "mw": 3.0})[1]["session_id"]
        assert shard_sid.startswith(f"s{router.shard_of_table('retail')}-")
        for path, body in (
            ("expand", {"rule": [None, None, None, None]}),
            ("expand", {"rule": ["Walmart", None, None, None]}),
        ):
            plain = call(plain_base, "POST", f"/sessions/{plain_sid}/{path}", body)
            shard = call(shard_base, "POST", f"/sessions/{shard_sid}/{path}", body)
            assert plain == shard  # status and every response byte
        plain_render = call(plain_base, "GET", f"/sessions/{plain_sid}/render")
        shard_render = call(shard_base, "GET", f"/sessions/{shard_sid}/render")
        assert plain_render == shard_render
        assert call(plain_base, "GET", f"/sessions/{plain_sid}")[1] == \
            call(shard_base, "GET", f"/sessions/{shard_sid}")[1]

    def test_stats_carries_per_shard_breakdown(self, sharded_tier):
        base, router = sharded_tier
        sid = call(base, "POST", "/sessions", {"table": "retail", "mw": 3.0})[1]["session_id"]
        call(base, "POST", f"/sessions/{sid}/expand", {"rule": [None, None, None, None]})
        status, stats = call(base, "GET", "/stats")
        assert status == 200
        assert stats["tables"] == ["retail"]
        assert stats["router"]["n_shards"] == 2
        assert {entry["shard"] for entry in stats["shards"]} == {0, 1}
        owner = router.shard_of_table("retail")
        by_shard = {entry["shard"]: entry for entry in stats["shards"]}
        assert by_shard[owner]["server"]["registry"]["sessions"] == 1
        assert by_shard[owner]["server"]["registry"]["expansions"] == 1

    def test_dead_shard_maps_to_503_then_recovers(self, sharded_tier):
        base, router = sharded_tier
        sid = call(base, "POST", "/sessions", {"table": "retail", "mw": 3.0})[1]["session_id"]
        router._shards[router.shard_of_table("retail")].process.kill()
        status, body = call(base, "GET", f"/sessions/{sid}/render")
        assert status == 503 and body["error"] == "ShardDownError"
        # The tier self-healed: the table is re-registered on the
        # restarted shard and new sessions serve immediately.
        status, created = call(base, "POST", "/sessions", {"table": "retail", "mw": 3.0})
        assert status == 201
        status, _ = call(base, "POST",
                         f"/sessions/{created['session_id']}/expand",
                         {"rule": [None, None, None, None]})
        assert status == 200


class TestFaultToleranceWire:
    """Deadline, Retry-After, and shard-degradation contracts (ISSUE 6)."""

    def _post_expand(self, base: str, sid: str, headers: dict):
        request = urllib.request.Request(
            base + f"/sessions/{sid}/expand",
            data=json.dumps({"rule": [None, None, None, None]}).encode(),
            method="POST",
            headers={"Content-Type": "application/json", **headers},
        )
        return urllib.request.urlopen(request, timeout=30)

    def test_429_carries_retry_after_computed_from_refill_rate(self, retail):
        tier = DrillDownServer(tenant_budget=6000.0, refill_per_second=100.0)
        tier.register_table("retail", retail)
        httpd = serve(tier, port=0)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            sid = call(base, "POST", "/sessions",
                       {"table": "retail", "tenant": "t"})[1]["session_id"]
            assert call(base, "POST", f"/sessions/{sid}/expand",
                        {"rule": [None, None, None, None]})[0] == 200
            with pytest.raises(urllib.error.HTTPError) as info:
                self._post_expand(base, sid, {})
            assert info.value.code == 429
            # ~6000 tokens short at 100 tokens/s: the header tells the
            # client *when* retrying will actually work.
            retry_after = info.value.headers.get("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1
            assert json.loads(info.value.read())["retry_after"] > 0
        finally:
            httpd.shutdown()
            tier.close()

    def test_expired_deadline_is_503_with_retry_after(self, http_tier):
        base, tier = http_tier
        sid = call(base, "POST", "/sessions", {"table": "retail"})[1]["session_id"]
        entry = tier.registry.entry(sid)
        with entry.lock:  # another request holds the session past the deadline
            with pytest.raises(urllib.error.HTTPError) as info:
                self._post_expand(base, sid, {"X-Deadline": "0.2"})
        assert info.value.code == 503
        assert info.value.headers.get("Retry-After") is not None
        assert json.loads(info.value.read())["error"] == "DeadlineExceededError"
        # Lock free again: the identical request succeeds — and the
        # aborted one burned none of the tenant's budget.
        assert call(base, "POST", f"/sessions/{sid}/expand",
                    {"rule": [None, None, None, None]})[0] == 200

    def test_malformed_or_non_positive_x_deadline_is_400(self, http_tier):
        base, _ = http_tier
        sid = call(base, "POST", "/sessions", {"table": "retail"})[1]["session_id"]
        for bad in ("soon", "0", "-3"):
            with pytest.raises(urllib.error.HTTPError) as info:
                self._post_expand(base, sid, {"X-Deadline": bad})
            assert info.value.code == 400

    def test_dead_shard_503_carries_retry_after(self, sharded_tier):
        base, router = sharded_tier
        sid = call(base, "POST", "/sessions",
                   {"table": "retail", "mw": 3.0})[1]["session_id"]
        router._shards[router.shard_of_table("retail")].process.kill()
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(base + f"/sessions/{sid}/render", timeout=30)
        assert info.value.code == 503
        assert info.value.headers.get("Retry-After") is not None


class TestRequestTimeouts:
    """The slowloris fix: socket reads are bounded (serving/http.py
    ``request_timeout``), so a stalled client cannot park a handler
    thread forever.  Failed before the fix: both drills hung."""

    @pytest.fixture
    def impatient_tier(self, retail):
        tier = DrillDownServer()
        tier.register_table("retail", retail)
        httpd = serve(tier, port=0, request_timeout=0.5)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield host, port
        httpd.shutdown()
        tier.close()

    def test_stalled_body_gets_408_and_the_connection_is_closed(self, impatient_tier):
        host, port = impatient_tier
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /sessions HTTP/1.1\r\n"
                b"Host: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 100\r\n"
                b"\r\n"
                b'{"table"'  # ...and never send the rest of the body
            )
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
        response = b"".join(chunks)
        assert response.startswith(b"HTTP/1.1 408")
        assert b"TimeoutError" in response
        # Reading to EOF above proves the server dropped the connection
        # rather than keeping the half-fed request alive.

    def test_connection_that_never_sends_is_dropped(self, impatient_tier):
        host, port = impatient_tier
        with socket.create_connection((host, port), timeout=30) as sock:
            # No bytes at all: nothing to answer — the server just hangs up.
            assert sock.recv(65536) == b""

    def test_fast_requests_are_unaffected(self, impatient_tier):
        host, port = impatient_tier
        base = f"http://{host}:{port}"
        assert call(base, "GET", "/healthz") == (200, {"ok": True})
        sid = call(base, "POST", "/sessions",
                   {"table": "retail", "mw": 3.0})[1]["session_id"]
        assert call(base, "POST", f"/sessions/{sid}/expand",
                    {"rule": [None, None, None, None]})[0] == 200


class TestVersionedTables:
    """The ISSUE 10 HTTP surface: append rows, typed 409 conflicts."""

    @pytest.mark.versioning
    def test_append_rows_endpoint(self, http_tier):
        base, _ = http_tier
        status, body = call(base, "POST", "/tables", {
            "name": "mini",
            "columns": ["A", "B"],
            "rows": [["a", "x"], ["a", "y"], ["b", "x"]],
        })
        assert status == 201
        status, body = call(base, "POST", "/tables/mini/rows",
                            {"rows": [["c", "x"], ["a", "z"]]})
        assert status == 200
        assert body["name"] == "mini" and body["version"] == 2
        assert body["rows"] == 5 and body["appended"] == 2
        # Fresh sessions see the appended rows.
        created = call(base, "POST", "/sessions", {"table": "mini"})[1]
        assert created["root"]["count"] == 5
        # Version counters surface through /stats.
        stats = call(base, "GET", "/stats")[1]
        assert stats["versions"]["tables"]["mini"]["latest"] == 2

    @pytest.mark.versioning
    def test_append_validation(self, http_tier):
        base, _ = http_tier
        assert call(base, "POST", "/tables/retail/rows", {})[0] == 400
        assert call(base, "POST", "/tables/retail/rows", {"rows": []})[0] == 400
        status, body = call(base, "POST", "/tables/nope/rows",
                            {"rows": [["x"]]})
        assert status == 404 and body["error"] == "UnknownTableError"

    @pytest.mark.versioning
    def test_conflicting_registration_is_409(self, http_tier):
        """Satellite regression: re-registering a live name with
        different data used to be an untyped 400; it is now a
        ``TableConflictError`` mapped to 409 Conflict, and the message
        names both remedies."""
        base, _ = http_tier
        status, body = call(base, "POST", "/tables", {
            "name": "retail",
            "columns": ["A"],
            "rows": [["a"]],
        })
        assert status == 409
        assert body["error"] == "TableConflictError"
        assert "append_rows" in body["message"]
        assert "replace_table" in body["message"]
