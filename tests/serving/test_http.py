"""The stdlib HTTP front end, driven exactly like the SERVING.md walkthrough."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import DrillDownServer
from repro.serving.http import rule_from_wire, rule_to_wire, serve
from repro.core.rule import STAR, Rule
from repro.errors import ReproError


@pytest.fixture
def http_tier(retail):
    """A live threaded HTTP server on an ephemeral port."""
    tier = DrillDownServer(tenant_budget=20_000)
    tier.register_table("retail", retail)
    httpd = serve(tier, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", tier
    httpd.shutdown()
    tier.close()


def call(base: str, method: str, path: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestWireFormat:
    def test_rule_roundtrip(self):
        rule = Rule(["Walmart", STAR, "CA-1"])
        assert rule_to_wire(rule) == ["Walmart", None, "CA-1"]
        assert rule_from_wire(["Walmart", None, "CA-1"], 3) == rule

    def test_bad_wire_rule(self):
        with pytest.raises(ReproError):
            rule_from_wire(["Walmart"], 3)
        with pytest.raises(ReproError):
            rule_from_wire("Walmart", 1)


class TestEndpoints:
    def test_health_stats_tables(self, http_tier):
        base, _ = http_tier
        assert call(base, "GET", "/healthz") == (200, {"ok": True})
        status, stats = call(base, "GET", "/stats")
        assert status == 200 and stats["tables"] == ["retail"]
        assert call(base, "GET", "/tables")[1] == {"tables": ["retail"]}

    def test_register_inline_table(self, http_tier):
        base, _ = http_tier
        status, body = call(base, "POST", "/tables", {
            "name": "mini",
            "columns": ["A", "B"],
            "rows": [["a", "x"], ["a", "y"], ["b", "x"]],
        })
        assert status == 201 and body == {"name": "mini", "rows": 3, "columns": ["A", "B"]}

    def test_register_needs_name_and_payload(self, http_tier):
        base, _ = http_tier
        assert call(base, "POST", "/tables", {"dataset": "retail"})[0] == 400
        assert call(base, "POST", "/tables", {"name": "x"})[0] == 400
        assert call(base, "POST", "/tables", {"name": "x", "dataset": "nope"})[0] == 400

    def test_walkthrough(self, http_tier):
        """The SERVING.md curl sequence, end to end."""
        base, tier = http_tier
        status, created = call(base, "POST", "/sessions",
                               {"table": "retail", "tenant": "alice", "k": 3, "mw": 3.0})
        assert status == 201
        sid = created["session_id"]
        assert created["columns"] == ["Store", "Product", "Region", "Sales"]
        assert created["root"]["count"] == 6000

        status, expanded = call(base, "POST", f"/sessions/{sid}/expand",
                                {"rule": [None, None, None, None]})
        assert status == 200
        rules = [c["rule"] for c in expanded["children"]]
        assert ["Walmart", None, None, None] in rules  # the paper's Table 2

        status, level2 = call(base, "POST", f"/sessions/{sid}/expand",
                              {"rule": ["Walmart", None, None, None]})
        assert status == 200
        assert ["Walmart", "cookies", None, None] in [
            c["rule"] for c in level2["children"]
        ]  # Table 3

        status, tree = call(base, "GET", f"/sessions/{sid}")
        assert status == 200 and len(tree["tree"]["children"]) == 3

        status, rendered = call(base, "GET", f"/sessions/{sid}/render")
        assert status == 200 and "Walmart" in rendered["text"]

        status, collapsed = call(base, "POST", f"/sessions/{sid}/collapse",
                                 {"rule": ["Walmart", None, None, None]})
        assert status == 200

        assert call(base, "DELETE", f"/sessions/{sid}") == (200, {"closed": True})
        assert call(base, "POST", f"/sessions/{sid}/expand",
                    {"rule": [None, None, None, None]})[0] == 404

    def test_star_expansion(self, http_tier):
        base, _ = http_tier
        sid = call(base, "POST", "/sessions", {"table": "retail", "mw": 3.0})[1]["session_id"]
        status, body = call(base, "POST", f"/sessions/{sid}/expand_star",
                            {"rule": [None, None, None, None], "column": "Region"})
        assert status == 200
        assert all(c["rule"][2] is not None for c in body["children"])

    def test_budget_throttles_with_429(self, http_tier):
        base, _ = http_tier
        sid = call(base, "POST", "/sessions",
                   {"table": "retail", "tenant": "greedy"})[1]["session_id"]
        statuses = []
        for _ in range(4):  # 4 x 6000 rows > the 20k budget
            status, body = call(base, "POST", f"/sessions/{sid}/expand",
                                {"rule": [None, None, None, None]})
            statuses.append(status)
            if status == 200:
                call(base, "POST", f"/sessions/{sid}/collapse",
                     {"rule": [None, None, None, None]})
        assert statuses.count(200) == 3
        assert statuses[-1] == 429
        status, error = call(base, "POST", f"/sessions/{sid}/expand",
                             {"rule": [None, None, None, None]})
        assert status == 429 and error["error"] == "TenantBudgetError"

    def test_error_mapping(self, http_tier):
        base, _ = http_tier
        # Unknown session -> 404.
        assert call(base, "GET", "/sessions/sess-424242")[0] == 404
        # Unknown table -> 404.
        assert call(base, "POST", "/sessions", {"table": "nope"})[0] == 404
        # Malformed rule -> 400.
        sid = call(base, "POST", "/sessions", {"table": "retail"})[1]["session_id"]
        assert call(base, "POST", f"/sessions/{sid}/expand", {"rule": ["x"]})[0] == 400
        # Unknown path -> 404; non-JSON body -> 400.
        assert call(base, "GET", "/nope")[0] == 404
        request = urllib.request.Request(
            base + "/sessions", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400
