"""Tests for CSV import/export."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.table import (
    Schema,
    Table,
    read_csv,
    table_from_csv_text,
    table_to_csv_text,
    write_csv,
)


class TestParse:
    def test_type_inference(self):
        table = table_from_csv_text("name,age\nalice,30\nbob,25\n")
        assert table.schema["name"].is_categorical
        assert table.schema["age"].is_numeric
        assert table.numeric("age").to_list() == [30.0, 25.0]

    def test_mixed_column_stays_categorical(self):
        table = table_from_csv_text("v\n1\nx\n")
        assert table.schema["v"].is_categorical
        # Cells are coerced individually: 1 is an int, "x" a string.
        assert table.to_rows() == [(1,), ("x",)]

    def test_explicit_schema_overrides(self):
        schema = Schema.categorical(["name", "age"])
        table = table_from_csv_text("name,age\nalice,30\n", schema)
        assert table.schema["age"].is_categorical

    def test_schema_header_mismatch(self):
        schema = Schema.categorical(["x"])
        with pytest.raises(DatasetError):
            table_from_csv_text("y\n1\n", schema)

    def test_empty_input_rejected(self):
        with pytest.raises(DatasetError):
            table_from_csv_text("")

    def test_ragged_row_rejected(self):
        with pytest.raises(DatasetError):
            table_from_csv_text("a,b\n1\n")

    def test_header_only(self):
        table = table_from_csv_text("a,b\n")
        assert table.n_rows == 0


class TestRoundtrip:
    def test_text_roundtrip(self, tiny_table):
        text = table_to_csv_text(tiny_table)
        back = table_from_csv_text(text)
        assert back.to_rows() == tiny_table.to_rows()

    def test_file_roundtrip(self, tmp_path, measure_table):
        path = tmp_path / "t.csv"
        write_csv(measure_table, path)
        back = read_csv(path)
        assert back.column_names == measure_table.column_names
        assert back.numeric("Sales").to_list() == measure_table.numeric("Sales").to_list()

    def test_quoted_commas_survive(self):
        table = Table.from_rows(["c"], [("hello, world",)])
        back = table_from_csv_text(table_to_csv_text(table))
        assert back.row(0) == ("hello, world",)
