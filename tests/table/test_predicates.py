"""Tests for the predicate DSL (the Example 1 entry query substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table import Table, col


@pytest.fixture
def sales_table() -> Table:
    return Table.from_dict(
        {
            "store": ["acme", "acme", "bazar", "bazar", "corner"],
            "region": ["n", "s", "n", "s", "n"],
            "sales": [100.0, 2500.0, 900.0, 1200.0, 50.0],
        }
    )


class TestNumericComparisons:
    def test_greater_than(self, sales_table):
        mask = (col("sales") > 1000).mask(sales_table)
        assert mask.tolist() == [False, True, False, True, False]

    def test_all_operators(self, sales_table):
        assert (col("sales") >= 900).mask(sales_table).sum() == 3
        assert (col("sales") < 100).mask(sales_table).sum() == 1
        assert (col("sales") <= 100).mask(sales_table).sum() == 2
        assert (col("sales") == 900).mask(sales_table).sum() == 1
        assert (col("sales") != 900).mask(sales_table).sum() == 4

    def test_isin_numeric(self, sales_table):
        mask = col("sales").isin([100, 50]).mask(sales_table)
        assert mask.tolist() == [True, False, False, False, True]


class TestCategoricalComparisons:
    def test_equality(self, sales_table):
        mask = (col("store") == "acme").mask(sales_table)
        assert mask.tolist() == [True, True, False, False, False]

    def test_inequality(self, sales_table):
        mask = (col("store") != "acme").mask(sales_table)
        assert mask.sum() == 3

    def test_unknown_value(self, sales_table):
        assert (col("store") == "nope").mask(sales_table).sum() == 0
        assert (col("store") != "nope").mask(sales_table).sum() == 5

    def test_isin(self, sales_table):
        mask = col("store").isin(["acme", "corner", "ghost"]).mask(sales_table)
        assert mask.sum() == 3

    def test_ordering_rejected(self, sales_table):
        with pytest.raises(SchemaError):
            (col("store") > "a").mask(sales_table)


class TestComposition:
    def test_and(self, sales_table):
        pred = (col("store") == "acme") & (col("sales") > 1000)
        assert pred.mask(sales_table).tolist() == [False, True, False, False, False]

    def test_or(self, sales_table):
        pred = (col("region") == "s") | (col("sales") < 60)
        assert pred.mask(sales_table).sum() == 3

    def test_not(self, sales_table):
        pred = ~(col("region") == "n")
        assert pred.mask(sales_table).tolist() == [False, True, False, True, False]

    def test_apply_returns_filtered_table(self, sales_table):
        hot = (col("sales") > 1000).apply(sales_table)
        assert hot.n_rows == 2
        assert set(r[0] for r in hot.rows()) == {"acme", "bazar"}

    def test_repr_is_readable(self):
        pred = (col("a") == 1) & ~(col("b") > 2)
        assert "col('a')" in repr(pred) and "~" in repr(pred)


class TestIntegrationWithDrillDown:
    def test_example1_entry_query(self, retail):
        """The paper's setup: filter by a Sales threshold, then explore."""
        from repro.core import SizeWeight, brs

        hot = (col("Sales") > 100).apply(retail)
        assert 0 < hot.n_rows < retail.n_rows
        result = brs(hot, SizeWeight(), 3, 3.0)
        assert len(result.rules) == 3
