"""Tests for table statistics (§4.2 / §6.1 inputs)."""

from __future__ import annotations

import pytest

from repro.table import Table, compute_stats


class TestComputeStats:
    def test_per_column_stats(self, tiny_table):
        stats = compute_stats(tiny_table)
        a = stats.column("A")
        assert a.distinct == 2
        assert a.top_value == "a"
        assert a.top_count == 5
        assert a.top_fraction == pytest.approx(5 / 8)

    def test_min_distinct(self, tiny_table):
        assert compute_stats(tiny_table).min_distinct == 2

    def test_max_top_fraction(self, tiny_table):
        assert compute_stats(tiny_table).max_top_fraction == pytest.approx(5 / 8)

    def test_numeric_columns_skipped(self, measure_table):
        stats = compute_stats(measure_table)
        names = [c.name for c in stats.columns]
        assert "Sales" not in names

    def test_unknown_column_raises(self, tiny_table):
        with pytest.raises(KeyError):
            compute_stats(tiny_table).column("nope")

    def test_entropy_bits(self, tiny_table):
        stats = compute_stats(tiny_table)
        assert stats.column("A").entropy_bits == 1.0  # 2 values
        assert stats.column("B").entropy_bits == 2.0  # 3 values

    def test_empty_table(self):
        stats = compute_stats(Table.from_rows(["A"], []))
        assert stats.n_rows == 0
        assert stats.columns[0].distinct == 0
        assert stats.min_distinct == 0
