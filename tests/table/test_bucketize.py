"""Tests for numeric bucketization (§6.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatasetError, SchemaError
from repro.table import Interval, Table, bucketize, bucketize_column
from repro.table.bucketize import equal_depth_edges, equal_width_edges
from repro.table.column import NumericColumn


class TestInterval:
    def test_contains_half_open(self):
        iv = Interval(0.0, 10.0)
        assert 0.0 in iv and 5 in iv
        assert 10.0 not in iv

    def test_contains_closed(self):
        iv = Interval(0.0, 10.0, closed_right=True)
        assert 10.0 in iv

    def test_non_numeric_not_contained(self):
        assert "x" not in Interval(0.0, 1.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(DatasetError):
            Interval(2.0, 1.0)

    def test_str(self):
        assert str(Interval(18.0, 24.0)) == "[18, 24)"
        assert str(Interval(0.5, 1.5, closed_right=True)) == "[0.5, 1.5]"


class TestEdges:
    def test_equal_width(self):
        edges = equal_width_edges(np.array([0.0, 10.0]), 5)
        assert edges.tolist() == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_equal_width_constant_column(self):
        edges = equal_width_edges(np.array([3.0, 3.0]), 2)
        assert edges[0] == 3.0 and edges[-1] > 3.0

    def test_equal_depth_balances(self):
        data = np.arange(100, dtype=np.float64)
        edges = equal_depth_edges(data, 4)
        assert len(edges) == 5

    def test_equal_depth_collapses_ties(self):
        data = np.array([1.0] * 99 + [2.0])
        edges = equal_depth_edges(data, 4)
        assert len(edges) < 5

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            equal_width_edges(np.array([]), 3)
        with pytest.raises(DatasetError):
            equal_depth_edges(np.array([]), 3)

    def test_bad_bucket_count(self):
        with pytest.raises(DatasetError):
            equal_width_edges(np.array([1.0]), 0)


class TestBucketizeColumn:
    def test_every_value_lands_in_its_interval(self):
        col = NumericColumn([1.0, 5.0, 9.9, 10.0, 3.3])
        bucketed = bucketize_column(col, n_buckets=3)
        for raw, interval in zip(col.to_list(), bucketed.to_list()):
            assert raw in interval

    def test_maximum_in_final_closed_bucket(self):
        col = NumericColumn([0.0, 10.0])
        bucketed = bucketize_column(col, n_buckets=2)
        last = bucketed.to_list()[1]
        assert isinstance(last, Interval) and last.closed_right
        assert 10.0 in last

    def test_explicit_edges(self):
        col = NumericColumn([18.0, 25.0, 40.0])
        bucketed = bucketize_column(col, edges=[18, 24, 34, 44])
        assert [str(v) for v in bucketed.to_list()] == ["[18, 24)", "[24, 34)", "[34, 44]"]

    def test_edges_must_cover_data(self):
        col = NumericColumn([100.0])
        with pytest.raises(DatasetError):
            bucketize_column(col, edges=[0, 10])

    def test_edges_must_increase(self):
        col = NumericColumn([1.0])
        with pytest.raises(DatasetError):
            bucketize_column(col, edges=[0, 0, 10])

    def test_unknown_method(self):
        with pytest.raises(DatasetError):
            bucketize_column(NumericColumn([1.0]), method="magic")


class TestBucketizeTable:
    def test_replaces_with_categorical(self, measure_table):
        bucketed = bucketize(measure_table, "Sales", n_buckets=3)
        assert bucketed.schema["Sales"].is_categorical
        assert bucketed.n_rows == measure_table.n_rows

    def test_non_numeric_rejected(self, measure_table):
        with pytest.raises(SchemaError):
            bucketize(measure_table, "Store")

    def test_bucketized_column_minable(self, measure_table):
        """Bucketized columns participate in BRS like any categorical."""
        from repro.core import SizeWeight, brs

        bucketed = bucketize(measure_table, "Sales", n_buckets=2)
        result = brs(bucketed, SizeWeight(), 2, 3.0)
        assert len(result.rules) == 2


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_bucketize_partition_property(values):
    """Buckets partition the data: every value in exactly one interval."""
    col = NumericColumn(values)
    bucketed = bucketize_column(col, n_buckets=4)
    intervals = [v for v in bucketed.values]
    for raw in values:
        memberships = sum(1 for iv in intervals if raw in iv)
        assert memberships >= 1
