"""Tests for the columnar Table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.table import (
    CategoricalColumn,
    ColumnKind,
    ColumnSchema,
    NumericColumn,
    Schema,
    Table,
)


class TestConstruction:
    def test_from_rows_names_only(self):
        table = Table.from_rows(["a", "b"], [("x", "y"), ("x", "z")])
        assert table.n_rows == 2
        assert table.column_names == ("a", "b")

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "b"], [("x",)])

    def test_from_dict_infers_kinds(self):
        table = Table.from_dict({"name": ["a", "b"], "value": [1.0, 2.0]})
        assert table.schema["name"].is_categorical
        assert table.schema["value"].is_numeric

    def test_from_dict_bools_are_categorical(self):
        table = Table.from_dict({"flag": [True, False]})
        assert table.schema["flag"].is_categorical

    def test_kind_mismatch_rejected(self):
        schema = Schema.of(a="numeric")
        with pytest.raises(SchemaError):
            Table(schema, [CategoricalColumn.from_values(["x"])])

    def test_column_length_mismatch_rejected(self):
        schema = Schema.categorical(["a", "b"])
        with pytest.raises(SchemaError):
            Table(
                schema,
                [CategoricalColumn.from_values(["x"]), CategoricalColumn.from_values(["y", "z"])],
            )

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.categorical(["a", "b"]), [CategoricalColumn.from_values(["x"])])

    def test_empty_table(self):
        table = Table.from_rows(["a"], [])
        assert table.n_rows == 0
        assert table.to_rows() == []


class TestAccess:
    def test_row_roundtrip(self, tiny_table):
        assert tiny_table.row(0) == ("a", "x", "p")
        assert tiny_table.row(-1) == ("b", "z", "r")

    def test_row_out_of_range(self, tiny_table):
        with pytest.raises(IndexError):
            tiny_table.row(100)

    def test_rows_iterator(self, tiny_table):
        assert list(tiny_table.rows()) == tiny_table.to_rows()

    def test_to_dict(self, tiny_table):
        d = tiny_table.to_dict()
        assert d["A"][:3] == ["a", "a", "a"]

    def test_column_by_name_and_index(self, tiny_table):
        assert tiny_table.column("A") is tiny_table.column(0)

    def test_categorical_accessor_kind_check(self, measure_table):
        with pytest.raises(SchemaError):
            measure_table.categorical("Sales")
        with pytest.raises(SchemaError):
            measure_table.numeric("Store")


class TestTransformations:
    def test_take_preserves_dictionaries(self, tiny_table):
        sub = tiny_table.take(np.array([0, 5]))
        assert sub.to_rows() == [("a", "x", "p"), ("b", "x", "p")]
        assert sub.categorical("A").values == tiny_table.categorical("A").values

    def test_filter(self, tiny_table):
        mask = tiny_table.categorical("A").mask_eq(0)
        sub = tiny_table.filter(mask)
        assert sub.n_rows == 5
        assert all(r[0] == "a" for r in sub.rows())

    def test_filter_bad_mask(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.filter(np.zeros(3, dtype=bool))

    def test_head(self, tiny_table):
        assert tiny_table.head(2).to_rows() == tiny_table.to_rows()[:2]
        assert tiny_table.head(100).n_rows == 8

    def test_select(self, tiny_table):
        sub = tiny_table.select(["C", "A"])
        assert sub.column_names == ("C", "A")
        assert sub.row(0) == ("p", "a")

    def test_rename(self, tiny_table):
        renamed = tiny_table.rename({"A": "alpha"})
        assert renamed.column_names == ("alpha", "B", "C")
        assert renamed.to_rows() == tiny_table.to_rows()

    def test_with_column(self, tiny_table):
        col = NumericColumn(np.arange(8, dtype=np.float64))
        extended = tiny_table.with_column(ColumnSchema("n", ColumnKind.NUMERIC), col)
        assert extended.n_columns == 4
        assert extended.row(3)[-1] == 3.0

    def test_replace_column(self, tiny_table):
        new = CategoricalColumn.from_values(["k"] * 8)
        replaced = tiny_table.replace_column("B", ColumnSchema("B"), new)
        assert set(r[1] for r in replaced.rows()) == {"k"}

    def test_concat(self, tiny_table):
        doubled = tiny_table.concat(tiny_table)
        assert doubled.n_rows == 16
        assert doubled.to_rows() == tiny_table.to_rows() * 2

    def test_concat_reencodes_dictionaries(self):
        a = Table.from_rows(["c"], [("x",)])
        b = Table.from_rows(["c"], [("y",)])
        combined = a.concat(b)
        assert combined.to_rows() == [("x",), ("y",)]
        assert combined.categorical("c").distinct_count == 2

    def test_concat_schema_mismatch(self, tiny_table, measure_table):
        with pytest.raises(SchemaError):
            tiny_table.concat(measure_table)

    def test_distinct_counts(self, tiny_table):
        assert tiny_table.distinct_counts() == {"A": 2, "B": 3, "C": 3}

    def test_equality(self, tiny_table):
        same = Table.from_rows(["A", "B", "C"], tiny_table.to_rows())
        assert tiny_table == same


@given(
    st.lists(
        st.tuples(st.sampled_from("ab"), st.sampled_from("xyz")),
        max_size=30,
    )
)
def test_roundtrip_property(rows):
    table = Table.from_rows(["u", "v"], rows)
    assert table.to_rows() == rows
    # take(all) is identity
    assert table.take(np.arange(len(rows))).to_rows() == rows
