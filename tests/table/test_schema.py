"""Tests for Schema and ColumnSchema."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.table import ColumnKind, ColumnSchema, Schema


class TestColumnSchema:
    def test_defaults_to_categorical(self):
        col = ColumnSchema("store")
        assert col.is_categorical and not col.is_numeric

    def test_numeric_kind(self):
        col = ColumnSchema("sales", ColumnKind.NUMERIC)
        assert col.is_numeric and not col.is_categorical

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSchema("")


class TestSchema:
    def test_categorical_factory(self):
        schema = Schema.categorical(["a", "b"])
        assert schema.names == ("a", "b")
        assert all(c.is_categorical for c in schema)

    def test_of_factory(self):
        schema = Schema.of(store="categorical", sales="numeric")
        assert schema["sales"].is_numeric

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.categorical(["a", "a"])

    def test_index_of(self):
        schema = Schema.categorical(["a", "b", "c"])
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("zz")

    def test_contains(self):
        schema = Schema.categorical(["a"])
        assert "a" in schema and "b" not in schema

    def test_getitem_by_name_and_index(self):
        schema = Schema.categorical(["a", "b"])
        assert schema[0] is schema["a"]

    def test_kind_index_lists(self):
        schema = Schema.of(a="categorical", v="numeric", b="categorical")
        assert schema.categorical_indexes == (0, 2)
        assert schema.numeric_indexes == (1,)

    def test_without(self):
        schema = Schema.categorical(["a", "b", "c"]).without("b")
        assert schema.names == ("a", "c")

    def test_replace(self):
        schema = Schema.of(a="categorical", v="numeric")
        replaced = schema.replace("v", ColumnSchema("v", ColumnKind.CATEGORICAL))
        assert replaced["v"].is_categorical
        assert schema["v"].is_numeric  # original untouched

    def test_restrict_reorders(self):
        schema = Schema.categorical(["a", "b", "c"]).restrict(["c", "a"])
        assert schema.names == ("c", "a")

    def test_equality_and_hash(self):
        assert Schema.categorical(["a"]) == Schema.categorical(["a"])
        assert hash(Schema.categorical(["a"])) == hash(Schema.categorical(["a"]))
        assert Schema.categorical(["a"]) != Schema.categorical(["b"])

    def test_non_columnschema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["not-a-column"])  # type: ignore[list-item]
