"""Tests for dictionary-encoded and numeric columns."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError, SchemaError
from repro.table import CategoricalColumn, NumericColumn


class TestCategoricalColumn:
    def test_from_values_first_seen_order(self):
        col = CategoricalColumn.from_values(["b", "a", "b", "c"])
        assert col.values == ("b", "a", "c")
        assert col.codes.tolist() == [0, 1, 0, 2]

    def test_encode_decode_roundtrip(self):
        col = CategoricalColumn.from_values(["x", "y"])
        for value in ("x", "y"):
            assert col.decode(col.encode(value)) == value

    def test_encode_unknown_raises(self):
        col = CategoricalColumn.from_values(["x"])
        with pytest.raises(EncodingError):
            col.encode("zzz")

    def test_try_encode(self):
        col = CategoricalColumn.from_values(["x"])
        assert col.try_encode("x") == 0
        assert col.try_encode("nope") is None
        assert col.try_encode(["unhashable"]) is None

    def test_encode_unhashable_raises(self):
        col = CategoricalColumn.from_values(["x"])
        with pytest.raises(EncodingError):
            col.encode(["unhashable"])

    def test_codes_read_only(self):
        col = CategoricalColumn.from_values(["x", "y"])
        with pytest.raises(ValueError):
            col.codes[0] = 1

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(np.array([0, 5], dtype=np.int32), ["a"])

    def test_duplicate_dictionary_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(np.array([0], dtype=np.int32), ["a", "a"])

    def test_mask_eq(self):
        col = CategoricalColumn.from_values(["a", "b", "a"])
        assert col.mask_eq(0).tolist() == [True, False, True]

    def test_take_shares_dictionary(self):
        col = CategoricalColumn.from_values(["a", "b", "a", "c"])
        sub = col.take(np.array([0, 3]))
        assert sub.values == col.values  # dictionary not compacted
        assert sub.to_list() == ["a", "c"]

    def test_counts_and_frequencies(self):
        col = CategoricalColumn.from_values(["a", "b", "a", "a"])
        assert col.counts().tolist() == [3, 1]
        assert col.frequencies().tolist() == [0.75, 0.25]

    def test_empty_column(self):
        col = CategoricalColumn.from_values([])
        assert len(col) == 0
        assert col.frequencies().tolist() == []

    def test_remap(self):
        col = CategoricalColumn.from_values(["a", "b"])
        renamed = col.remap({"a": "alpha"})
        assert renamed.to_list() == ["alpha", "b"]

    def test_getitem(self):
        col = CategoricalColumn.from_values(["a", "b"])
        assert col[1] == "b"

    def test_equality(self):
        a = CategoricalColumn.from_values(["x", "y"])
        b = CategoricalColumn.from_values(["x", "y"])
        assert a == b

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"])))
    def test_roundtrip_property(self, values):
        col = CategoricalColumn.from_values(values)
        assert col.to_list() == values
        assert col.counts().sum() == len(values)


class TestNumericColumn:
    def test_basic(self):
        col = NumericColumn([1.0, 2.5, 3.0])
        assert len(col) == 3
        assert col[1] == 2.5
        assert col.to_list() == [1.0, 2.5, 3.0]

    def test_read_only(self):
        col = NumericColumn([1.0])
        with pytest.raises(ValueError):
            col.data[0] = 2.0

    def test_take(self):
        col = NumericColumn([1.0, 2.0, 3.0])
        assert col.take(np.array([2, 0])).to_list() == [3.0, 1.0]

    def test_mask_range_half_open(self):
        col = NumericColumn([0.0, 5.0, 10.0])
        assert col.mask_range(0.0, 10.0).tolist() == [True, True, False]
        assert col.mask_range(0.0, 10.0, closed_right=True).tolist() == [True, True, True]

    def test_mask_eq(self):
        col = NumericColumn([1.0, 2.0, 1.0])
        assert col.mask_eq(1.0).tolist() == [True, False, True]

    def test_2d_rejected(self):
        with pytest.raises(SchemaError):
            NumericColumn(np.zeros((2, 2)))

    def test_equality(self):
        assert NumericColumn([1.0]) == NumericColumn([1.0])
        assert NumericColumn([1.0]) != NumericColumn([2.0])
