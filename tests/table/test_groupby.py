"""Tests for group-by aggregation."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.table import Table, group_by


class TestGroupByCount:
    def test_single_key(self, tiny_table):
        rows = group_by(tiny_table, "A")
        assert [(r.key, r.count) for r in rows] == [(("a",), 5), (("b",), 3)]

    def test_multi_key(self, tiny_table):
        rows = group_by(tiny_table, ["A", "B"])
        as_dict = {r.key: r.count for r in rows}
        assert as_dict[("a", "x")] == 3
        assert as_dict[("b", "z")] == 1
        assert sum(as_dict.values()) == 8

    def test_sort_by_key(self, tiny_table):
        rows = group_by(tiny_table, "B", sort="key", descending=False)
        assert [r.key[0] for r in rows] == ["x", "y", "z"]

    def test_limit(self, tiny_table):
        rows = group_by(tiny_table, "B", limit=1)
        assert len(rows) == 1
        assert rows[0].key == ("x",)  # most frequent first

    def test_empty_table(self):
        table = Table.from_rows(["A"], [])
        assert group_by(table, "A") == []


class TestGroupByMeasures:
    def test_sum(self, measure_table):
        rows = group_by(measure_table, "Store", aggregate="sum", measure="Sales")
        as_dict = {r.key[0]: r.value for r in rows}
        assert as_dict == {"T": 40.0, "W": 30.0, "C": 1.0}

    def test_mean(self, measure_table):
        rows = group_by(measure_table, "Store", aggregate="mean", measure="Sales")
        as_dict = {r.key[0]: r.value for r in rows}
        assert as_dict["W"] == pytest.approx(15.0)

    def test_min_max(self, measure_table):
        mins = {r.key[0]: r.value for r in group_by(measure_table, "Store", aggregate="min", measure="Sales")}
        maxs = {r.key[0]: r.value for r in group_by(measure_table, "Store", aggregate="max", measure="Sales")}
        assert mins["T"] == 5.0 and maxs["T"] == 30.0

    def test_value_sort_descending(self, measure_table):
        rows = group_by(measure_table, "Store", aggregate="sum", measure="Sales")
        values = [r.value for r in rows]
        assert values == sorted(values, reverse=True)


class TestValidation:
    def test_missing_measure(self, tiny_table):
        with pytest.raises(SchemaError):
            group_by(tiny_table, "A", aggregate="sum")

    def test_numeric_key_rejected(self, measure_table):
        with pytest.raises(SchemaError):
            group_by(measure_table, "Sales")

    def test_unknown_aggregate(self, measure_table):
        with pytest.raises(SchemaError):
            group_by(measure_table, "Store", aggregate="median", measure="Sales")

    def test_unknown_sort(self, tiny_table):
        with pytest.raises(SchemaError):
            group_by(tiny_table, "A", sort="magic")

    def test_no_keys(self, tiny_table):
        with pytest.raises(SchemaError):
            group_by(tiny_table, [])


class TestConsistencyWithTraditionalDrilldown:
    def test_matches_traditional_drilldown(self, tiny_table):
        """group_by on one column = traditional drill-down counts (§5.1)."""
        from repro.core import Rule, traditional_drilldown

        rows = group_by(tiny_table, "C")
        drill = traditional_drilldown(tiny_table, Rule.trivial(3), "C")
        drill_counts = {e.rule[2]: e.count for e in drill.rule_list}
        assert {r.key[0]: r.count for r in rows} == drill_counts
