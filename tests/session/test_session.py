"""Tests for the interactive session (rule tree, expand/collapse, sampling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, STAR, SizeWeight
from repro.errors import SessionError
from repro.session import DrillDownSession
from repro.storage import DiskTable


class TestInMemorySession:
    def test_root_shows_total_count(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        assert session.root.count == 6000
        assert session.root.rule.is_trivial

    def test_expand_adds_children(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        children = session.expand(session.root.rule)
        assert len(children) == 3
        assert all(c.depth == 1 for c in children)
        assert session.root.is_expanded

    def test_expand_twice_rejected(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        with pytest.raises(SessionError):
            session.expand(session.root.rule)

    def test_expand_unknown_rule_rejected(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        with pytest.raises(SessionError):
            session.expand(Rule.from_named(retail, Store="Walmart"))

    def test_nested_expansion(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        walmart = session.node(Rule.from_named(retail, Store="Walmart"))
        grandchildren = session.expand(walmart.rule)
        assert all(c.depth == 2 for c in grandchildren)
        assert len(session.displayed()) == 7  # root + 3 + 3

    def test_collapse_removes_subtree(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        walmart = Rule.from_named(retail, Store="Walmart")
        session.expand(walmart)
        session.collapse(walmart)
        assert not session.node(walmart).is_expanded
        assert len(session.displayed()) == 4
        # Collapsing the root removes everything.
        session.collapse(session.root.rule)
        assert len(session.displayed()) == 1

    def test_collapse_unexpanded_rejected(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        with pytest.raises(SessionError):
            session.collapse(session.root.rule)

    def test_collapse_then_reexpand(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        first = [c.rule for c in session.expand(session.root.rule)]
        session.collapse(session.root.rule)
        second = [c.rule for c in session.expand(session.root.rule)]
        assert first == second  # deterministic roll-up/drill-down

    def test_star_expansion(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        children = session.expand_star(session.root.rule, "Region")
        region_idx = retail.schema.index_of("Region")
        assert children
        assert all(not c.rule.is_star(region_idx) for c in children)

    def test_traditional_expansion(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        children = session.expand_traditional(session.root.rule, "Store")
        stores = {c.rule[0] for c in children}
        assert "Walmart" in stores
        counts = [c.count for c in children]
        assert counts == sorted(counts, reverse=True)

    def test_leaves(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        assert session.leaves() == [session.root]
        children = session.expand(session.root.rule)
        assert session.leaves() == children

    def test_history_records(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        assert len(session.history) == 1
        record = session.history[0]
        assert record.kind == "rule"
        assert record.sample_method == "direct"
        assert record.wall_seconds > 0

    def test_custom_k_per_expansion(self, retail):
        session = DrillDownSession(retail, k=2, mw=3.0)
        children = session.expand(session.root.rule, k=4)
        assert len(children) == 4

    def test_measure_session(self, measure_table):
        session = DrillDownSession(measure_table, k=2, mw=2.0, measure="Sales")
        children = session.expand(session.root.rule)
        assert children
        # Counts are sums of sales, not tuple counts.
        assert any(c.count > 10 for c in children)


class TestSampledSession:
    @pytest.fixture
    def disk(self):
        from repro.datasets import generate_zipf_table

        table = generate_zipf_table(
            30_000, [4, 6, 8], skew=1.0, seed=3, column_names=["A", "B", "C"]
        )
        return DiskTable(table, page_rows=2048)

    def test_expansion_uses_sampling(self, disk):
        session = DrillDownSession(
            disk,
            k=3,
            mw=3.0,
            memory_capacity=20_000,
            min_sample_size=2_000,
            rng=np.random.default_rng(0),
        )
        children = session.expand(session.root.rule)
        assert children
        assert session.history[0].sample_method == "create"
        assert session.history[0].scale > 1.0

    def test_counts_scaled_to_population(self, disk):
        session = DrillDownSession(
            disk,
            k=3,
            mw=3.0,
            memory_capacity=20_000,
            min_sample_size=2_000,
            rng=np.random.default_rng(0),
        )
        children = session.expand(session.root.rule)
        # Scaled counts are in full-table units: the top rule covers
        # a large share of the 30k rows.
        assert max(c.count for c in children) > 5_000

    def test_prefetch_makes_followups_memory_served(self, disk):
        session = DrillDownSession(
            disk,
            k=3,
            mw=3.0,
            memory_capacity=25_000,
            min_sample_size=2_000,
            rng=np.random.default_rng(0),
            prefetch=True,
        )
        children = session.expand(session.root.rule)
        session.expand(children[0].rule)
        assert session.history[-1].sample_method in ("find", "combine")
        # The follow-up expansion itself needed no disk I/O (any scans
        # after it are the *next* background prefetch).
        assert session.history[-1].simulated_io_seconds == 0.0

    def test_no_prefetch_pays_io_on_followup(self, disk):
        session = DrillDownSession(
            disk,
            k=3,
            mw=3.0,
            memory_capacity=25_000,
            min_sample_size=6_000,
            rng=np.random.default_rng(0),
            prefetch=False,
        )
        children = session.expand(session.root.rule)
        io_before = disk.io_stats.simulated_seconds
        session.expand(children[-1].rule)
        # minSS is large relative to selectivity: the sub-rule needs disk.
        assert disk.io_stats.simulated_seconds > io_before

    def test_history_tracks_io(self, disk):
        session = DrillDownSession(
            disk, k=3, mw=3.0, min_sample_size=2_000, memory_capacity=20_000
        )
        session.expand(session.root.rule)
        assert session.history[0].simulated_io_seconds > 0
