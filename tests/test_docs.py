"""Documentation health checks.

Dead relative links rot silently — this suite resolves every markdown
link in ``README.md`` and ``docs/`` against the repository tree and
fails the run on the first broken one.  External URLs and pure anchors
are out of scope (no network in CI); links into code are checked as
paths, so renaming a module or test suite without updating the docs
fails here.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose links are checked (globs relative to the repo root).
DOC_GLOBS = ["README.md", "docs/*.md"]

#: ``[text](target)`` — good enough for the plain markdown used here.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def _relative_links(doc: Path) -> list[str]:
    links = _LINK.findall(doc.read_text())
    return [
        link
        for link in links
        if not link.startswith(("http://", "https://", "mailto:", "#"))
    ]


def test_expected_docs_exist():
    """The documentation surface this repo promises is present."""
    for name in ("README.md", "docs/ARCHITECTURE.md", "docs/EXPERIMENTS.md"):
        assert (REPO_ROOT / name).is_file(), f"missing documentation file: {name}"
    assert _doc_files(), "doc globs matched nothing — check DOC_GLOBS"


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc: Path):
    """Every relative markdown link points at an existing file/directory."""
    broken = []
    for link in _relative_links(doc):
        target = link.split("#", 1)[0]  # drop any fragment
        if not target:
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(link)
    assert not broken, f"dead relative links in {doc.name}: {broken}"


def test_readme_quickstart_runs():
    """The README quickstart executes as written (k/mw as documented)."""
    from repro import DrillDownSession
    from repro.datasets import generate_retail

    session = DrillDownSession(generate_retail(), k=3, mw=3.0)
    session.expand(session.root.rule)
    text = session.to_text()
    assert text.strip() and len(session.root.children) == 3
