"""Documentation health checks.

Dead relative links rot silently — this suite resolves every markdown
link in ``README.md`` and ``docs/`` against the repository tree and
fails the run on the first broken one.  External URLs and pure anchors
are out of scope (no network in CI); links into code are checked as
paths, so renaming a module or test suite without updating the docs
fails here.

Code rots too: every ```` ```python ```` fence in the same documents
must at least *parse* (``ast.parse``), so an API rename that breaks a
documented snippet's syntax — or a snippet pasted with shell prompts —
fails the run.  Semantics are covered separately where it matters most
(``test_readme_quickstart_runs`` executes the README quickstart;
``tests/serving/test_http.py`` drives the SERVING.md walkthrough's
endpoints).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose links are checked (globs relative to the repo root).
DOC_GLOBS = ["README.md", "docs/*.md"]

#: ``[text](target)`` — good enough for the plain markdown used here.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks tagged as python.
_PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def _relative_links(doc: Path) -> list[str]:
    links = _LINK.findall(doc.read_text())
    return [
        link
        for link in links
        if not link.startswith(("http://", "https://", "mailto:", "#"))
    ]


def test_expected_docs_exist():
    """The documentation surface this repo promises is present."""
    for name in (
        "README.md",
        "docs/ANALYSIS.md",
        "docs/ARCHITECTURE.md",
        "docs/EXPERIMENTS.md",
        "docs/SERVING.md",
    ):
        assert (REPO_ROOT / name).is_file(), f"missing documentation file: {name}"
    assert _doc_files(), "doc globs matched nothing — check DOC_GLOBS"


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc: Path):
    """Every relative markdown link points at an existing file/directory."""
    broken = []
    for link in _relative_links(doc):
        target = link.split("#", 1)[0]  # drop any fragment
        if not target:
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(link)
    assert not broken, f"dead relative links in {doc.name}: {broken}"


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_python_snippets_parse(doc: Path):
    """Every ```python fence is syntactically valid Python."""
    broken = []
    for i, snippet in enumerate(_PYTHON_FENCE.findall(doc.read_text())):
        try:
            ast.parse(snippet)
        except SyntaxError as exc:
            broken.append(f"fence #{i + 1}: {exc}")
    assert not broken, f"unparseable python snippets in {doc.name}: {broken}"


def test_serving_walkthrough_documented():
    """SERVING.md keeps the parts the serving tests drive: the HTTP
    endpoints and the budget/eviction knobs."""
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text()
    for needle in (
        "repro.serving.http",
        "/sessions",
        "/tables",
        "expand_star",
        "tenant_budget",
        "ttl_seconds",
        "TenantBudgetError",
    ):
        assert needle in text, f"SERVING.md no longer documents {needle!r}"


def test_readme_quickstart_runs():
    """The README quickstart executes as written (k/mw as documented)."""
    from repro import DrillDownSession
    from repro.datasets import generate_retail

    session = DrillDownSession(generate_retail(), k=3, mw=3.0)
    session.expand(session.root.rule)
    text = session.to_text()
    assert text.strip() and len(session.root.children) == 3
