"""Shared plumbing for the static-analysis suite.

Every test under ``tests/analysis`` is stamped with the ``lint``
marker (registered in ``pytest.ini``) so ``-m lint`` runs the
invariant-linter gate alone — the fast lane after editing a rule or
adding a pragma.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_ANALYSIS_DIR = Path(__file__).resolve().parent

#: Repository root (tests/analysis/ -> tests/ -> root).
REPO_ROOT = _ANALYSIS_DIR.parent.parent


def pytest_collection_modifyitems(items):
    """Stamp every test under tests/analysis with the ``lint`` marker."""
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - exotic collection nodes
            continue
        if _ANALYSIS_DIR in path.parents or path.parent == _ANALYSIS_DIR:
            item.add_marker(pytest.mark.lint)


@pytest.fixture
def repo_root():
    return REPO_ROOT
