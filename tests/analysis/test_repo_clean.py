"""The tier-1 gate: the repository's own source passes its own linter.

``test_src_tree_is_clean`` is the enforcement point — every PR runs
the full five-rule pass over ``src/repro`` against the checked-in
baseline, so re-introducing a naked clock read, a blocking call under
a lock, a bare builtin raise on the request path, a torn-write
``open``, or unseeded randomness fails CI.  The re-introduction tests
prove the gate has teeth by mutating real source in memory and
checking the pass catches it.  The CLI tests pin the ``python -m
repro.analysis`` contract (exit codes, ``--json`` shape) that
tooling depends on.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.analysis import analyze_paths, analyze_source, load_baseline
from repro.analysis.baseline import DEFAULT_BASELINE_NAME


@pytest.fixture(scope="module")
def repo_report():
    from tests.analysis.conftest import REPO_ROOT

    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    return analyze_paths([str(REPO_ROOT / "src" / "repro")], baseline=baseline)


def test_src_tree_is_clean(repo_report):
    """THE gate: src/repro has no enforced findings, no stale baseline."""
    rendered = "\n".join(f.render() for f in repo_report.enforced)
    assert repo_report.enforced == [], f"lint findings in src/repro:\n{rendered}"
    assert repo_report.stale_baseline == [], (
        "stale baseline entries (code was fixed — remove them): "
        f"{repo_report.stale_baseline}"
    )
    assert repo_report.exit_code == 0


def test_shipped_baseline_is_empty(repo_report):
    """Everything the rules flagged at rollout was fixed or pragma'd —
    the baseline starts (and should stay) empty."""
    assert repo_report.baselined == []


def test_suppressions_all_carry_reasons(repo_report):
    assert repo_report.suppressed, "expected the documented pragma suppressions"
    for finding in repo_report.suppressed:
        assert finding.reason, f"suppression without a reason: {finding.render()}"
    # Today's suppressions are all deliberate real-time waits in the
    # serving tier's timer/pipe plumbing.
    assert {f.rule for f in repo_report.suppressed} == {"clock-discipline"}


def test_benchmarks_and_examples_sweep_report_only():
    """Satellite: the benchmark/example trees are swept advisory-only —
    findings there are logged in the JSON report, never failing."""
    from tests.analysis.conftest import REPO_ROOT

    report = analyze_paths(
        [
            str(REPO_ROOT / "src" / "repro"),
            str(REPO_ROOT / "benchmarks"),
            str(REPO_ROOT / "examples"),
        ],
        baseline=load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME),
        report_only_paths=["benchmarks", "examples"],
    )
    assert report.exit_code == 0
    payload = report.to_dict()
    assert "report_only" in payload  # the advisory findings are logged
    # The published-numbers trees are currently clean (all draws seeded).
    assert payload["report_only"] == []
    assert report.files_checked > 100


# -- the gate has teeth: re-introducing fixed bugs fails ---------------------------


def _server_source():
    from tests.analysis.conftest import REPO_ROOT

    path = REPO_ROOT / "src" / "repro" / "serving" / "server.py"
    return path.read_text(encoding="utf-8")


def test_reintroducing_naked_time_time_in_server_is_caught():
    """Mutate server.py back to the pre-PR shape (started_at from a
    naked time.time()) and assert the pass flags it."""
    source = _server_source()
    fixed = "self.started_at = self._wall_clock()"
    assert fixed in source  # the satellite fix this PR made
    mutated = source.replace(fixed, "self.started_at = time.time()")
    findings = [
        f
        for f in analyze_source(mutated, "repro/serving/server.py")
        if not f.suppressed
    ]
    assert [f.rule for f in findings] == ["clock-discipline"]
    assert "time.time" in findings[0].message


def test_server_source_is_clean_unmutated():
    findings = [
        f
        for f in analyze_source(_server_source(), "repro/serving/server.py")
        if not f.suppressed
    ]
    assert findings == []


def test_reintroducing_close_under_lock_is_caught():
    """The PR 4 eviction race: a close() moved back inside the registry
    lock must fail the gate."""
    from tests.analysis.conftest import REPO_ROOT

    path = REPO_ROOT / "src" / "repro" / "serving" / "registry.py"
    source = path.read_text(encoding="utf-8")
    # The real registry is clean today...
    clean = [
        f
        for f in analyze_source(source, "repro/serving/registry.py")
        if not f.suppressed
    ]
    assert clean == []
    # ...and would not be with a close() added under its lock.
    mutated = source.replace(
        "with self._lock:",
        "with self._lock:\n            self.on_evict and self.on_evict([]).close()",
        1,
    )
    findings = [
        f
        for f in analyze_source(mutated, "repro/serving/registry.py")
        if not f.suppressed
    ]
    assert [f.rule for f in findings] == ["lock-blocking"]


def test_removing_an_error_mapping_is_caught():
    """Deleting a branch from the HTTP mapper orphans part of the
    hierarchy (those classes would answer 500) — flagged."""
    from tests.analysis.conftest import REPO_ROOT

    path = REPO_ROOT / "src" / "repro" / "serving" / "http.py"
    source = path.read_text(encoding="utf-8")
    assert "ReproError" in source
    # Narrow the catch-all ReproError branch to SchemaError only: every
    # subclass not covered by an earlier specific branch is orphaned.
    mutated = source.replace("(ReproError, KeyError", "(SchemaError, KeyError")
    assert mutated != source
    findings = [
        f
        for f in analyze_source(mutated, "repro/serving/http.py")
        if not f.suppressed and f.rule == "typed-errors"
    ]
    assert findings, "orphaned hierarchy classes must be flagged"
    # SamplingError (and ten siblings) lost their only route to 400;
    # EngineError/ParameterError stay covered via their ValueError base.
    assert any("SamplingError" in f.message for f in findings)
    assert not any("EngineError" in f.message for f in findings)


# -- the CLI contract --------------------------------------------------------------


def _run_cli(*argv, cwd):
    env_src = str(cwd / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_cli_clean_tree_exits_zero(repo_root):
    proc = _run_cli("src/repro", cwd=repo_root)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_json_exits_nonzero_on_findings(tmp_path, repo_root):
    bad = tmp_path / "repro" / "serving"
    bad.mkdir(parents=True)
    (bad / "oops.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
    )
    proc = _run_cli(
        "--json", "--no-baseline", str(tmp_path / "repro"), cwd=repo_root
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["exit_code"] == 1
    assert [f["rule"] for f in payload["enforced"]] == ["clock-discipline"]
    assert payload["enforced"][0]["path"] == "repro/serving/oops.py"


def test_cli_unknown_rule_is_usage_error(repo_root):
    proc = _run_cli("--rules", "no-such-rule", "src/repro", cwd=repo_root)
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_write_baseline_then_clean(tmp_path, repo_root):
    bad = tmp_path / "repro" / "serving"
    bad.mkdir(parents=True)
    (bad / "oops.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
    )
    baseline = tmp_path / "lint-baseline.json"
    proc = _run_cli(
        "--baseline",
        str(baseline),
        "--write-baseline",
        str(tmp_path / "repro"),
        cwd=repo_root,
    )
    assert proc.returncode == 0, proc.stderr
    assert baseline.exists()
    # With the grandfathered baseline the same tree is clean...
    proc = _run_cli(
        "--baseline", str(baseline), str(tmp_path / "repro"), cwd=repo_root
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # ...and fixing the code makes the entry stale: exit 1 again until
    # the baseline shrinks (regenerate) — it can never grow cover.
    (bad / "oops.py").write_text("def f():\n    return 0\n", encoding="utf-8")
    proc = _run_cli(
        "--baseline", str(baseline), str(tmp_path / "repro"), cwd=repo_root
    )
    assert proc.returncode == 1
    assert "stale-baseline" in proc.stdout
