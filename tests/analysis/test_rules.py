"""Unit tests for each shipped rule over in-memory fixture snippets.

Every rule gets at least one *bad* snippet (must flag, at the right
line) and one *good* snippet (must stay silent) shaped like the real
code the rule patrols.  The pragma and baseline round-trips are pinned
here too, plus the regression fixture for the PR 4 eviction race shape
(``close()`` under ``with self._lock:``) that motivated the
``lock-blocking`` rule.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    analyze_source,
    default_rules,
    load_baseline,
    rule_names,
    write_baseline,
)
from repro.analysis.runner import BAD_PRAGMA_RULE, PARSE_ERROR_RULE, analyze_paths


def lint(source, relpath="repro/serving/fixture.py", rules=None):
    """analyze_source over a dedented snippet; findings list."""
    return analyze_source(textwrap.dedent(source), relpath, rules=rules)


def names(findings, *, include_suppressed=False):
    return [
        f.rule
        for f in findings
        if include_suppressed or not f.suppressed
    ]


def test_all_five_rules_registered():
    assert rule_names() == (
        "atomic-writes",
        "clock-discipline",
        "determinism",
        "lock-blocking",
        "typed-errors",
    )


def test_unknown_rule_name_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        default_rules(["no-such-rule"])


# -- clock-discipline --------------------------------------------------------------


def test_clock_naked_time_time_flagged():
    findings = lint(
        """
        import time

        class Server:
            def __init__(self):
                self.started_at = time.time()
        """
    )
    assert names(findings) == ["clock-discipline"]
    assert findings[0].line == 6


def test_clock_from_import_alias_seen_through():
    findings = lint(
        """
        from time import monotonic

        def deadline(timeout):
            return monotonic() + timeout
        """
    )
    assert names(findings) == ["clock-discipline"]


def test_clock_injectable_seam_not_flagged():
    # The seam *declaration* passes the function as a value — that is
    # the sanctioned shape, not a call.
    findings = lint(
        """
        import time

        class Registry:
            def __init__(self, clock=time.monotonic):
                self._clock = clock

            def now(self):
                return self._clock()
        """
    )
    assert findings == []


def test_clock_rule_scoped_to_serving_only():
    source = """
    import time

    def elapsed(start):
        return time.perf_counter() - start
    """
    assert names(lint(source, relpath="repro/core/brs.py")) == []
    assert names(lint(source, relpath="repro/serving/x.py")) == [
        "clock-discipline"
    ]


# -- lock-blocking -----------------------------------------------------------------


def test_lock_blocking_pr4_eviction_race_shape_flagged():
    # Regression pin: the exact shape PR 4 fixed by hand — closing an
    # evicted session while still holding the registry lock.  The rule
    # must keep flagging it forever.
    findings = lint(
        """
        class SessionRegistry:
            def evict(self, session_id):
                with self._lock:
                    entry = self._sessions.pop(session_id)
                    entry.session.close()
        """
    )
    assert names(findings) == ["lock-blocking"]
    assert "close" in findings[0].message
    assert "self._lock" in findings[0].message


def test_lock_blocking_fixed_shape_passes():
    # The corrected idiom: pop under the lock, close after releasing.
    findings = lint(
        """
        class SessionRegistry:
            def evict(self, session_id):
                with self._lock:
                    entry = self._sessions.pop(session_id)
                entry.session.close()
        """
    )
    assert findings == []


def test_lock_blocking_pipe_io_and_save_under_entry_lock():
    findings = lint(
        """
        class Handle:
            def request(self, frame):
                with entry.lock:
                    self.conn.send_bytes(frame)
                    raw = self.conn.recv_bytes()
                with self._lock:
                    self.store.save(snapshot)
                return raw
        """
    )
    assert names(findings) == ["lock-blocking"] * 3


def test_lock_blocking_hold_helper_counts_as_lock():
    findings = lint(
        """
        class Server:
            def expand(self, entry, deadline_at):
                with entry.hold(deadline_at, self._clock):
                    self.store.save(entry.snapshot())
        """
    )
    assert names(findings) == ["lock-blocking"]


def test_lock_blocking_condition_wait_not_flagged():
    # FairScheduler's dispatch gate: Condition.wait releases the lock,
    # so waiting under the condition is the *correct* pattern.
    findings = lint(
        """
        class FairScheduler:
            def dispatch_turn(self, tenant):
                with self._cond:
                    while not self._my_turn(tenant):
                        self._cond.wait()
        """
    )
    assert findings == []


def test_lock_blocking_nested_function_resets_lock_scope():
    # A closure *defined* under a lock does not run there.
    findings = lint(
        """
        class Server:
            def plan(self):
                with self._lock:
                    def later():
                        self.store.save(None)
                    self._deferred.append(later)
        """
    )
    assert findings == []


def test_lock_blocking_scoped_to_serving():
    source = """
    def f(self):
        with self._lock:
            self.pool.close()
    """
    assert names(lint(source, relpath="repro/core/parallel.py")) == []


# -- typed-errors ------------------------------------------------------------------


def test_typed_errors_bare_valueerror_flagged_in_core_and_serving():
    source = """
    def brs_iter(engine):
        if engine not in ("incremental", "scratch"):
            raise ValueError(f"unknown search engine {engine!r}")
    """
    for relpath in ("repro/core/brs.py", "repro/serving/server.py"):
        findings = lint(source, relpath=relpath)
        assert names(findings) == ["typed-errors"], relpath
    # ...but not outside the request path.
    assert lint(source, relpath="repro/table/table.py") == []


def test_typed_errors_reproerror_subclass_passes():
    findings = lint(
        """
        from repro.errors import EngineError

        def brs_iter(engine):
            if engine not in ("incremental", "scratch"):
                raise EngineError(f"unknown search engine {engine!r}")
        """,
        relpath="repro/core/brs.py",
    )
    assert findings == []


def test_typed_errors_pipe_protocol_builtins_allowed():
    findings = lint(
        """
        def request(self):
            if self.condemned:
                raise BrokenPipeError("condemned")
            raise EOFError("pipe closed")
        """,
        relpath="repro/serving/shard.py",
    )
    assert findings == []


def test_typed_errors_bare_reraise_allowed():
    findings = lint(
        """
        def f(self):
            try:
                g()
            except Exception:
                self.errors += 1
                raise
        """,
        relpath="repro/serving/server.py",
    )
    assert findings == []


def test_typed_errors_mapper_completeness_clean_on_real_mapper():
    # The real mapper catches ReproError, so every subclass resolves.
    import pathlib

    http_py = (
        pathlib.Path(__file__).resolve().parents[2]
        / "src"
        / "repro"
        / "serving"
        / "http.py"
    )
    findings = analyze_source(
        http_py.read_text(encoding="utf-8"),
        "repro/serving/http.py",
        rules=default_rules(["typed-errors"]),
    )
    assert [f for f in findings if not f.suppressed] == []


def test_typed_errors_mapper_missing_fail_function_flagged():
    findings = lint(
        """
        class Handler:
            def do_GET(self):
                pass
        """,
        relpath="repro/serving/http.py",
        rules=default_rules(["typed-errors"]),
    )
    assert names(findings) == ["typed-errors"]
    assert "_fail" in findings[0].message


def test_typed_errors_incomplete_mapper_flags_unmapped_hierarchy():
    # A mapper that only knows UnknownTableError: every other concrete
    # ReproError subclass (SchemaError, ShardError, ...) would fall to
    # the 500 fallback and must be flagged.
    findings = lint(
        """
        from repro.errors import UnknownTableError

        def _fail(self, exc):
            if isinstance(exc, UnknownTableError):
                return 404
            return 500
        """,
        relpath="repro/serving/http.py",
        rules=default_rules(["typed-errors"]),
    )
    assert len(findings) > 5
    assert all(f.rule == "typed-errors" for f in findings)
    assert any("SchemaError" in f.message for f in findings)


def test_typed_errors_stale_mapping_flagged():
    findings = lint(
        """
        from repro.errors import ReproError

        def _fail(self, exc):
            if isinstance(exc, GhostOfRemovedError):
                return 410
            if isinstance(exc, ReproError):
                return 400
            return 500
        """,
        relpath="repro/serving/http.py",
        rules=default_rules(["typed-errors"]),
    )
    assert names(findings) == ["typed-errors"]
    assert "GhostOfRemovedError" in findings[0].message


# -- atomic-writes -----------------------------------------------------------------


def test_atomic_writes_direct_open_w_flagged():
    findings = lint(
        """
        import json

        def save(self, path, payload):
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        """
    )
    assert names(findings) == ["atomic-writes"]


def test_atomic_writes_tmp_fsync_replace_idiom_passes():
    # The SnapshotStore.save shape: tmp sibling, fsync, os.replace.
    findings = lint(
        """
        import json
        import os

        def save(self, path, payload):
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        """
    )
    assert findings == []


def test_atomic_writes_read_open_not_flagged():
    findings = lint(
        """
        def load(self, path):
            with open(path, "r", encoding="utf-8") as fh:
                return fh.read()
        """
    )
    assert findings == []


def test_atomic_writes_write_text_flagged():
    findings = lint(
        """
        def save(self, path, text):
            path.write_text(text)
        """
    )
    assert names(findings) == ["atomic-writes"]


# -- determinism -------------------------------------------------------------------


def test_determinism_unseeded_default_rng_flagged():
    findings = lint(
        """
        import numpy as np

        def draw():
            return np.random.default_rng().random()
        """,
        relpath="repro/sampling/reservoir.py",
    )
    # The unseeded constructor, plus nothing else: the .random() draw
    # on the returned generator is not resolvable to numpy.random.*.
    assert names(findings) == ["determinism"]
    assert "without a seed" in findings[0].message


def test_determinism_seeded_default_rng_passes():
    findings = lint(
        """
        import numpy as np
        from repro.core.seeding import derive_seed

        def draw(base_seed):
            return np.random.default_rng(derive_seed("draw", base_seed))
        """,
        relpath="repro/sampling/reservoir.py",
    )
    assert findings == []


def test_determinism_legacy_global_numpy_api_flagged():
    findings = lint(
        """
        import numpy as np

        def shuffle(rows):
            np.random.seed(0)
            np.random.shuffle(rows)
        """,
        relpath="repro/sampling/reservoir.py",
    )
    assert names(findings) == ["determinism", "determinism"]


def test_determinism_stdlib_global_random_flagged_seeded_instance_ok():
    findings = lint(
        """
        import random

        def pick(items, seed):
            rng = random.Random(seed)
            good = rng.choice(items)
            bad = random.choice(items)
            return good, bad
        """,
        relpath="repro/sampling/reservoir.py",
    )
    assert names(findings) == ["determinism"]
    assert "random.choice" in findings[0].message


def test_determinism_unseeded_random_instance_flagged():
    findings = lint(
        """
        import random

        def make_rng():
            return random.Random()
        """,
        relpath="repro/sampling/reservoir.py",
    )
    assert names(findings) == ["determinism"]


def test_determinism_applies_to_benchmarks_too():
    findings = lint(
        """
        import numpy as np

        rng = np.random.default_rng()
        """,
        relpath="benchmarks/bench_demo.py",
    )
    assert names(findings) == ["determinism"]


# -- pragmas -----------------------------------------------------------------------


def test_pragma_trailing_suppresses_with_reason():
    findings = lint(
        """
        import time

        def f():
            return time.time()  # repro-lint: allow[clock-discipline] reason=wall time by design
        """
    )
    assert len(findings) == 1
    assert findings[0].suppressed
    assert findings[0].reason == "wall time by design"


def test_pragma_standalone_applies_to_next_code_line():
    findings = lint(
        """
        import time

        def f():
            # repro-lint: allow[clock-discipline] reason=real sleep cadence
            return time.monotonic()
        """
    )
    assert len(findings) == 1
    assert findings[0].suppressed


def test_pragma_wrong_rule_does_not_suppress():
    findings = lint(
        """
        import time

        def f():
            return time.time()  # repro-lint: allow[determinism] reason=misdirected
        """
    )
    assert len(findings) == 1
    assert not findings[0].suppressed


def test_pragma_without_reason_is_bad_pragma_and_suppresses_nothing():
    findings = lint(
        """
        import time

        def f():
            return time.time()  # repro-lint: allow[clock-discipline]
        """
    )
    rules = sorted(f.rule for f in findings)
    assert rules == [BAD_PRAGMA_RULE, "clock-discipline"]
    clock = next(f for f in findings if f.rule == "clock-discipline")
    assert not clock.suppressed


def test_pragma_in_docstring_is_inert():
    findings = lint(
        '''
        def f():
            """# repro-lint: allow[clock-discipline] reason=not a comment"""
            return 1
        '''
    )
    assert findings == []


def test_parse_error_is_a_finding_not_a_crash():
    findings = lint("def broken(:\n")
    assert names(findings) == [PARSE_ERROR_RULE]


# -- baseline ----------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = [
        Finding(rule="clock-discipline", path="repro/serving/x.py", line=7, message="m"),
        Finding(rule="typed-errors", path="repro/core/y.py", line=3, message="n"),
    ]
    path = tmp_path / "lint-baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    assert len(baseline) == 2
    assert baseline.consume(findings[0])
    assert baseline.consume(findings[1])
    assert baseline.stale_entries() == []


def test_baseline_grandfathers_and_reports_stale(tmp_path):
    src = tmp_path / "repro" / "serving"
    src.mkdir(parents=True)
    (src / "fixture.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
    )
    live = Finding(
        rule="clock-discipline", path="repro/serving/fixture.py", line=4, message="m"
    )
    fixed = Finding(
        rule="clock-discipline", path="repro/serving/gone.py", line=9, message="m"
    )
    path = tmp_path / "lint-baseline.json"
    write_baseline(path, [live, fixed])

    report = analyze_paths([str(tmp_path / "repro")], baseline=load_baseline(path))
    # The live finding is grandfathered...
    assert report.enforced == []
    assert [f.key for f in report.baselined] == [live.key]
    # ...but the entry whose code was fixed is stale and fails the gate.
    assert report.stale_baseline == [fixed.key]
    assert report.exit_code == 1


def test_baseline_missing_file_is_empty():
    baseline = load_baseline("/nonexistent/lint-baseline.json")
    assert len(baseline) == 0


def test_baseline_malformed_file_rejected(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text('{"version": 99}', encoding="utf-8")
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


# -- report classification ---------------------------------------------------------


def test_report_only_paths_are_advisory(tmp_path):
    bench = tmp_path / "benchmarks"
    bench.mkdir()
    (bench / "bench_demo.py").write_text(
        "import numpy as np\nrng = np.random.default_rng()\n", encoding="utf-8"
    )
    report = analyze_paths([str(bench)], report_only_paths=["benchmarks"])
    assert report.enforced == []
    assert [f.rule for f in report.report_only] == ["determinism"]
    assert report.exit_code == 0
    # The JSON payload logs the advisory findings.
    payload = report.to_dict()
    assert payload["report_only"][0]["rule"] == "determinism"
    assert payload["exit_code"] == 0
