"""Tests for the metered disk simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import DiskTable
from repro.table import Table


@pytest.fixture
def disk(tiny_table) -> DiskTable:
    return DiskTable(tiny_table, page_rows=3, page_read_seconds=0.01)


class TestScan:
    def test_chunks_cover_all_rows(self, disk, tiny_table):
        seen = []
        for ids, chunk in disk.scan():
            seen.extend(chunk.to_rows())
            assert chunk.n_rows == ids.size
        assert seen == tiny_table.to_rows()

    def test_page_accounting(self, disk):
        list(disk.scan())
        stats = disk.io_stats
        assert stats.scans_started == 1
        assert stats.scans_completed == 1
        assert stats.pages_read == 3  # ceil(8 / 3)
        assert stats.tuples_read == 8
        assert stats.simulated_seconds == pytest.approx(0.03)

    def test_row_ids_are_global(self, disk):
        all_ids = np.concatenate([ids for ids, _ in disk.scan()])
        assert all_ids.tolist() == list(range(8))

    def test_n_pages(self, disk):
        assert disk.n_pages == 3

    def test_multiple_scans_accumulate(self, disk):
        list(disk.scan())
        list(disk.scan())
        assert disk.io_stats.scans_completed == 2
        assert disk.io_stats.pages_read == 6


class TestRandomAccess:
    def test_fetch_rows_counts_touched_pages(self, disk):
        disk.fetch_rows(np.array([0, 1]))  # one page
        assert disk.io_stats.pages_read == 1
        disk.fetch_rows(np.array([0, 7]))  # two pages
        assert disk.io_stats.pages_read == 3

    def test_fetch_buffered_is_free(self, disk):
        table = disk.fetch_buffered(np.array([1, 6]))
        assert table.n_rows == 2
        assert disk.io_stats.pages_read == 0

    def test_materialize_counts_full_scan(self, disk, tiny_table):
        table = disk.materialize()
        assert table.to_rows() == tiny_table.to_rows()
        assert disk.io_stats.pages_read == disk.n_pages


class TestIOStats:
    def test_snapshot_and_delta(self, disk):
        before = disk.io_stats.snapshot()
        list(disk.scan())
        delta = disk.io_stats.delta(before)
        assert delta.pages_read == 3
        assert before.pages_read == 0  # snapshot unaffected

    def test_invalid_parameters(self, tiny_table):
        with pytest.raises(StorageError):
            DiskTable(tiny_table, page_rows=0)
        with pytest.raises(StorageError):
            DiskTable(tiny_table, page_read_seconds=-1.0)

    def test_metadata_is_free(self, disk):
        _ = disk.schema, disk.n_rows, disk.n_columns
        assert disk.io_stats.pages_read == 0
