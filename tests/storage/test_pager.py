"""Tests for the LRU page cache."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import DiskTable, PageCache


@pytest.fixture
def disk(tiny_table) -> DiskTable:
    return DiskTable(tiny_table, page_rows=2, page_read_seconds=0.01)  # 4 pages


class TestPageCache:
    def test_hit_after_miss(self, disk):
        cache = PageCache(disk, capacity_pages=2)
        cache.get_page(0)
        cache.get_page(0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert disk.io_stats.pages_read == 1  # second access free

    def test_lru_eviction(self, disk):
        cache = PageCache(disk, capacity_pages=2)
        cache.get_page(0)
        cache.get_page(1)
        cache.get_page(2)  # evicts page 0
        assert cache.stats.evictions == 1
        cache.get_page(0)  # miss again
        assert cache.stats.misses == 4

    def test_access_refreshes_recency(self, disk):
        cache = PageCache(disk, capacity_pages=2)
        cache.get_page(0)
        cache.get_page(1)
        cache.get_page(0)  # page 0 now most recent
        cache.get_page(2)  # evicts page 1, not 0
        cache.get_page(0)
        assert cache.stats.hits == 2

    def test_scan_through_cache(self, disk, tiny_table):
        cache = PageCache(disk, capacity_pages=4)
        rows = []
        for _, chunk in cache.scan():
            rows.extend(chunk.to_rows())
        assert rows == tiny_table.to_rows()
        # Second scan is fully cached.
        pages_before = disk.io_stats.pages_read
        list(cache.scan())
        assert disk.io_stats.pages_read == pages_before

    def test_hit_rate(self, disk):
        cache = PageCache(disk, capacity_pages=4)
        cache.get_page(0)
        cache.get_page(0)
        assert cache.stats.hit_rate == 0.5

    def test_page_out_of_range(self, disk):
        cache = PageCache(disk, capacity_pages=1)
        with pytest.raises(StorageError):
            cache.get_page(99)

    def test_invalid_capacity(self, disk):
        with pytest.raises(StorageError):
            PageCache(disk, capacity_pages=0)
