"""Tests for the Sample triple (f_s, N_s, T_s)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, STAR
from repro.errors import SamplingError
from repro.sampling import Sample
from repro.table import Table


def make_sample(tiny_table, indexes, filter_rule=None, population=None) -> Sample:
    idx = np.asarray(indexes, dtype=np.int64)
    filter_rule = filter_rule or Rule.trivial(3)
    population = population if population is not None else tiny_table.n_rows
    return Sample(
        filter_rule=filter_rule,
        scale=population / idx.size,
        table=tiny_table.take(idx),
        row_ids=idx,
        population=population,
    )


class TestSample:
    def test_size_and_rate(self, tiny_table):
        s = make_sample(tiny_table, [0, 2, 4, 6])
        assert s.size == 4
        assert s.scale == 2.0
        assert s.rate == 0.5

    def test_estimate_count_scales(self, tiny_table):
        s = make_sample(tiny_table, [0, 1, 5, 6])  # two 'a' rows among 4
        est = s.estimate_count(Rule(["a", STAR, STAR]))
        assert est == 2 * 2.0

    def test_restrict_returns_covered_rows(self, tiny_table):
        s = make_sample(tiny_table, [0, 1, 5, 7])
        ids, covered = s.restrict(Rule([STAR, "x", STAR]))
        assert ids.tolist() == [0, 1, 5]
        assert all(row[1] == "x" for row in covered.rows())

    def test_memory_tuples(self, tiny_table):
        assert make_sample(tiny_table, [0, 1]).memory_tuples() == 2

    def test_invalid_scale(self, tiny_table):
        with pytest.raises(SamplingError):
            Sample(Rule.trivial(3), 0.0, tiny_table, np.arange(8), 8)

    def test_row_ids_must_align(self, tiny_table):
        with pytest.raises(SamplingError):
            Sample(Rule.trivial(3), 1.0, tiny_table, np.arange(3), 8)

    def test_repr(self, tiny_table):
        assert "Sample(" in repr(make_sample(tiny_table, [0]))
