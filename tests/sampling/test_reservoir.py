"""Tests for reservoir sampling: invariants and statistical uniformity."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core import Rule, STAR
from repro.errors import SamplingError
from repro.sampling import MultiReservoir, ReservoirSampler, bernoulli_sample_indexes
from repro.table import Table


class TestReservoirInvariants:
    def test_holds_all_when_stream_small(self, rng):
        r = ReservoirSampler(10, rng)
        r.offer(np.arange(4))
        assert sorted(r.result().tolist()) == [0, 1, 2, 3]

    def test_capacity_respected(self, rng):
        r = ReservoirSampler(5, rng)
        r.offer(np.arange(100))
        assert r.size == 5
        assert r.seen == 100

    def test_sample_is_subset_of_stream(self, rng):
        r = ReservoirSampler(7, rng)
        r.offer(np.arange(50, 150))
        assert set(r.result().tolist()) <= set(range(50, 150))

    def test_chunked_offers_equal_stream(self, rng):
        r = ReservoirSampler(5, rng)
        for start in range(0, 100, 13):
            r.offer(np.arange(start, min(start + 13, 100)))
        assert r.seen == 100
        assert r.size == 5

    def test_zero_capacity(self, rng):
        r = ReservoirSampler(0, rng)
        r.offer(np.arange(10))
        assert r.size == 0
        assert r.seen == 10

    def test_negative_capacity_rejected(self, rng):
        with pytest.raises(SamplingError):
            ReservoirSampler(-1, rng)

    def test_2d_offer_rejected(self, rng):
        r = ReservoirSampler(2, rng)
        with pytest.raises(SamplingError):
            r.offer(np.zeros((2, 2), dtype=np.int64))

    def test_result_sorted(self, rng):
        r = ReservoirSampler(10, rng)
        r.offer(np.arange(1000))
        res = r.result()
        assert res.tolist() == sorted(res.tolist())


class TestReservoirUniformity:
    def test_inclusion_probability_uniform(self):
        """Each of n items lands in a k-reservoir with probability k/n.

        Chi-square over 3000 independent reservoirs of 5 from 25 items.
        """
        n, k, trials = 25, 5, 3000
        rng = np.random.default_rng(7)
        counts = np.zeros(n)
        for _ in range(trials):
            r = ReservoirSampler(k, rng)
            r.offer(np.arange(n))
            counts[r.result()] += 1
        expected = trials * k / n
        chi2 = ((counts - expected) ** 2 / expected).sum()
        p_value = 1.0 - scipy_stats.chi2.cdf(chi2, df=n - 1)
        assert p_value > 0.001  # uniform inclusion is not rejected

    def test_block_size_does_not_bias(self):
        """Offering in one block vs many yields the same distribution."""
        n, k, trials = 20, 4, 2000
        rng = np.random.default_rng(11)
        counts_single = np.zeros(n)
        counts_chunked = np.zeros(n)
        for _ in range(trials):
            r1 = ReservoirSampler(k, rng)
            r1.offer(np.arange(n))
            counts_single[r1.result()] += 1
            r2 = ReservoirSampler(k, rng)
            for i in range(0, n, 3):
                r2.offer(np.arange(i, min(i + 3, n)))
            counts_chunked[r2.result()] += 1
        # Two-sample chi-square on the inclusion histograms.
        total = counts_single + counts_chunked
        expected = total / 2
        chi2 = (
            ((counts_single - expected) ** 2 / np.maximum(expected, 1)).sum()
            + ((counts_chunked - expected) ** 2 / np.maximum(expected, 1)).sum()
        )
        p_value = 1.0 - scipy_stats.chi2.cdf(chi2, df=n - 1)
        assert p_value > 0.001


class TestMultiReservoir:
    def test_counts_exact_and_samples_covered(self, tiny_table, rng):
        rule_a = Rule(["a", STAR, STAR])
        rule_x = Rule([STAR, "x", STAR])
        multi = MultiReservoir({rule_a: 3, rule_x: 3}, rng)
        ids = np.arange(tiny_table.n_rows)
        multi.offer_chunk(ids, tiny_table)
        counts = multi.counts()
        assert counts[rule_a] == 5
        assert counts[rule_x] == 4
        results = multi.results()
        # Sampled ids must be rows actually covered by the filter.
        a_rows = {0, 1, 2, 3, 4}
        assert set(results[rule_a].tolist()) <= a_rows

    def test_multiple_chunks_accumulate(self, tiny_table, rng):
        rule = Rule(["a", STAR, STAR])
        multi = MultiReservoir({rule: 10}, rng)
        multi.offer_chunk(np.arange(4), tiny_table.take(np.arange(4)))
        multi.offer_chunk(np.arange(4, 8), tiny_table.take(np.arange(4, 8)))
        assert multi.counts()[rule] == 5
        assert multi.results()[rule].size == 5


class TestBernoulli:
    def test_rate_bounds(self, rng):
        with pytest.raises(SamplingError):
            bernoulli_sample_indexes(10, 1.5, rng)

    def test_rate_zero_and_one(self, rng):
        assert bernoulli_sample_indexes(10, 0.0, rng).size == 0
        assert bernoulli_sample_indexes(10, 1.0, rng).size == 10

    def test_expected_size(self):
        rng = np.random.default_rng(3)
        sizes = [bernoulli_sample_indexes(1000, 0.3, rng).size for _ in range(50)]
        assert 250 < np.mean(sizes) < 350
