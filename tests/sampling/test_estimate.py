"""Tests for count estimation and confidence intervals (§4.2, §4.3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Rule, STAR, count
from repro.errors import SamplingError
from repro.sampling import (
    Sample,
    coverage_fraction_bound,
    estimate_count,
    percent_error,
    required_sample_size,
)
from repro.table import Table
from repro.datasets import generate_zipf_table


def uniform_sample(table: Table, size: int, rng: np.random.Generator) -> Sample:
    idx = np.sort(rng.choice(table.n_rows, size=size, replace=False))
    return Sample(
        filter_rule=Rule.trivial(table.n_columns),
        scale=table.n_rows / size,
        table=table.take(idx),
        row_ids=idx,
        population=table.n_rows,
    )


class TestEstimateCount:
    def test_point_estimate_unbiased_shape(self):
        """Mean of repeated estimates lands near the true count."""
        table = generate_zipf_table(5000, [6, 6], skew=1.0, seed=5)
        rule = Rule(["c0_v0", STAR])
        true = count(rule, table)
        rng = np.random.default_rng(1)
        estimates = [
            estimate_count(uniform_sample(table, 400, rng), rule).estimate
            for _ in range(60)
        ]
        assert abs(np.mean(estimates) - true) < 0.1 * true

    def test_interval_contains_estimate(self, tiny_table, rng):
        s = uniform_sample(tiny_table, 6, rng)
        est = estimate_count(s, Rule(["a", STAR, STAR]))
        assert est.low <= est.estimate <= est.high

    def test_ci_coverage_near_nominal(self):
        """~95% of 95%-CIs should contain the true count."""
        table = generate_zipf_table(5000, [5], skew=0.8, seed=9)
        rule = Rule(["c0_v0"])
        true = count(rule, table)
        rng = np.random.default_rng(2)
        hits = sum(
            estimate_count(uniform_sample(table, 500, rng), rule).contains(true)
            for _ in range(200)
        )
        assert hits >= 0.85 * 200  # loose lower bound, no flakiness

    def test_width_shrinks_with_sample_size(self):
        table = generate_zipf_table(5000, [5], skew=0.8, seed=9)
        rule = Rule(["c0_v0"])
        rng = np.random.default_rng(3)
        small = estimate_count(uniform_sample(table, 100, rng), rule)
        large = estimate_count(uniform_sample(table, 2000, rng), rule)
        assert large.half_width < small.half_width

    def test_empty_sample_rejected(self, tiny_table):
        s = Sample(Rule.trivial(3), 1.0, tiny_table.take(np.array([], dtype=np.int64)),
                   np.array([], dtype=np.int64), 0)
        with pytest.raises(SamplingError):
            estimate_count(s, Rule.trivial(3))

    def test_bad_confidence(self, tiny_table, rng):
        s = uniform_sample(tiny_table, 4, rng)
        with pytest.raises(SamplingError):
            estimate_count(s, Rule.trivial(3), confidence=1.5)


class TestDegenerateDraws:
    """Regressions for the zero-variance edge cases: before the
    continuity correction these intervals collapsed to a single point
    and claimed certainty from a partial sample."""

    def test_all_out_draw_keeps_positive_width(self):
        """A rule covering *no* sampled row used to yield [0, 0] even
        when the table genuinely contains matching rows."""
        table = generate_zipf_table(2000, [40], skew=1.4, seed=11)
        rule = Rule(["c0_v39"])  # rare value: usually absent from a small draw
        true = count(rule, table)
        assert true > 0  # the premise: rarity, not absence
        rng = np.random.default_rng(4)
        for _ in range(50):
            est = estimate_count(uniform_sample(table, 30, rng), rule)
            if est.estimate == 0.0:
                break
        else:
            pytest.fail("never drew a sample missing the rare value")
        assert est.half_width > 0.0
        assert est.high > 0.0  # the interval admits the value may exist

    def test_all_in_draw_keeps_positive_width(self):
        """The mirror case: every sampled row covered (x == 1) on a
        partial sample must not produce a zero-width interval."""
        table = generate_zipf_table(2000, [2], skew=3.0, seed=12)
        rule = Rule(["c0_v0"])
        rng = np.random.default_rng(5)
        for _ in range(50):
            sample = uniform_sample(table, 20, rng)
            est = estimate_count(sample, rule)
            if est.estimate == sample.scale * sample.size:
                break
        else:
            pytest.fail("never drew an all-covered sample")
        assert est.half_width > 0.0
        assert est.low < est.estimate  # the truth may be below N_s·m

    def test_census_sample_is_exact_and_zero_width(self):
        """A sample that *is* its population has no sampling error: the
        interval collapses to the exact count by design (this is what
        lets small-table serving samples short-circuit escalation)."""
        table = generate_zipf_table(50, [3], skew=0.5, seed=13)
        idx = np.arange(table.n_rows, dtype=np.int64)
        sample = Sample(Rule.trivial(1), 1.0, table.take(idx), idx, table.n_rows)
        rule = Rule(["c0_v0"])
        est = estimate_count(sample, rule)
        assert est.estimate == count(rule, table)
        assert est.half_width == 0.0
        assert est.contains(est.estimate)


class TestPercentError:
    def test_exact_match_is_zero(self):
        assert percent_error(100.0, 100.0) == 0.0

    def test_formula(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)
        assert percent_error(90.0, 100.0) == pytest.approx(10.0)

    def test_zero_actual_is_finite(self):
        """Regression: an empty-cover rule used to yield ``inf``, which
        poisoned every mean over per-rule errors (Figure 8(b) averages);
        the denominator is now floored at one tuple."""
        assert percent_error(0.0, 0.0) == 0.0
        assert percent_error(5.0, 0.0) == 500.0
        assert math.isfinite(percent_error(1e9, 0.0))

    def test_small_actual_floor(self):
        # |actual| < 1 uses the one-tuple floor, not the tiny denominator.
        assert percent_error(1.0, 0.5) == pytest.approx(50.0)


class TestSampleSizeRules:
    def test_required_sample_size_formula(self):
        # x = 1/6, rho = 10 → 10 * 5 = 50.
        assert required_sample_size(1 / 6, rho=10.0) == pytest.approx(50.0)

    def test_full_coverage_needs_nothing(self):
        assert required_sample_size(1.0) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(SamplingError):
            required_sample_size(0.0)

    def test_coverage_fraction_bound(self):
        # Paper: |C|=10, |c|=5 → top rule covers ≥ 1/50 of tuples.
        assert coverage_fraction_bound(10, 5) == pytest.approx(1 / 50)

    def test_coverage_bound_invalid(self):
        with pytest.raises(SamplingError):
            coverage_fraction_bound(0, 5)
