"""Statistical acceptance suite for count estimation (ISSUE 7, §4.2/§4.3).

Two contracts are pinned here, both with *seeded* randomness so a
failure is a reproducible bug, never flake:

1. **Interval coverage.**  Over many independent seeded draws, the
   nominal-``c`` confidence interval from :func:`estimate_count` must
   contain the true count at a rate no lower than ``c`` minus binomial
   noise.  The acceptance thresholds below sit ~3 standard deviations
   under the nominal rate for the trial counts used, so a correct
   estimator passes with overwhelming probability while a broken one
   (e.g. the pre-fix zero-width degenerate intervals) fails hard.

2. **Escalation parity.**  The serving tier's approximate expansions
   escalate to exact mining whenever any estimate's half-width crosses
   ``error_target × max(estimate, 1)``; at a tight target this must
   make the approximate session's rule list *equal* the exact
   session's — rules and counts — on randomised tables.  This is the
   "provably converges to the exact rule list" half of the tentpole.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Rule, STAR, count
from repro.datasets import generate_zipf_table
from repro.sampling import Sample, estimate_count
from repro.serving import build_sample_set
from repro.session import DrillDownSession
from tests.conftest import random_table

pytestmark = [pytest.mark.statistical, pytest.mark.slow]


def _uniform_sample(table, size: int, rng: np.random.Generator) -> Sample:
    idx = np.sort(rng.choice(table.n_rows, size=size, replace=False))
    return Sample(
        filter_rule=Rule.trivial(table.n_columns),
        scale=table.n_rows / size,
        table=table.take(idx),
        row_ids=idx,
        population=table.n_rows,
    )


def _coverage_rate(table, rule, *, size: int, trials: int, confidence: float, seed: int) -> float:
    true = count(rule, table)
    rng = np.random.default_rng(seed)
    hits = sum(
        estimate_count(_uniform_sample(table, size, rng), rule, confidence=confidence).contains(
            true
        )
        for _ in range(trials)
    )
    return hits / trials


class TestIntervalCoverage:
    """CI coverage at (and above) the nominal rate, across regimes."""

    @pytest.mark.parametrize("size", [100, 400, 1200])
    def test_common_rule_95_coverage(self, size):
        """A well-sampled rule: 400 trials at 95% nominal; the 3-sigma
        binomial lower bound is 0.95 − 3·sqrt(.95·.05/400) ≈ 0.917."""
        table = generate_zipf_table(6000, [6, 6], skew=1.0, seed=21)
        rate = _coverage_rate(
            table, Rule(["c0_v0", STAR]), size=size, trials=400, confidence=0.95, seed=size
        )
        assert rate >= 0.91

    @pytest.mark.parametrize("confidence,floor", [(0.9, 0.85), (0.99, 0.965)])
    def test_other_nominal_levels(self, confidence, floor):
        table = generate_zipf_table(6000, [6, 6], skew=1.0, seed=22)
        rate = _coverage_rate(
            table,
            Rule(["c0_v1", STAR]),
            size=300,
            trials=400,
            confidence=confidence,
            seed=int(confidence * 100),
        )
        assert rate >= floor

    def test_rare_rule_coverage_survives_degenerate_draws(self):
        """The regression the continuity correction exists for: a rule
        rare enough that many draws cover zero sampled rows.  Pre-fix,
        every such draw produced the zero-width interval [0, 0] and
        missed the (positive) true count, dragging coverage far below
        nominal; with the correction the rate stays acceptable."""
        table = generate_zipf_table(4000, [50], skew=1.5, seed=23)
        rule = Rule(["c0_v30"])
        true = count(rule, table)
        assert 0 < true < 40  # genuinely rare, genuinely present
        # Confirm the degenerate regime is actually exercised.
        rng = np.random.default_rng(99)
        zero_draws = sum(
            estimate_count(_uniform_sample(table, 60, rng), rule).estimate == 0.0
            for _ in range(100)
        )
        assert zero_draws > 20, "premise broken: the rare rule is not rare enough"
        rate = _coverage_rate(table, rule, size=60, trials=400, confidence=0.95, seed=24)
        assert rate >= 0.91

    def test_stratified_serving_samples_cover(self):
        """End-to-end over the serving tier's own sample builder: the
        sample chosen for a child rule (stratum or uniform) must still
        deliver nominal coverage, stratum scales included."""
        rng = np.random.default_rng(30)
        hits = trials = 0
        for trial_seed in range(120):
            table = random_table(rng, n_rows=400, n_columns=3, domain=4)
            samples = build_sample_set(table, budget=120, seed=trial_seed)
            rule = Rule([f"v{trial_seed % 4}", STAR, STAR])
            sample = samples.sample_for(rule)
            est = estimate_count(sample, rule)
            hits += est.contains(count(rule, table))
            trials += 1
        # Non-identical trials (different tables), so the bound is the
        # same binomial argument at n=120: 0.95 − 3·sqrt(.95·.05/120) ≈ 0.89.
        assert hits / trials >= 0.89


class TestEscalationParity:
    """Tight error targets provably reproduce the exact rule list."""

    @pytest.mark.parametrize("seed", range(8))
    def test_tight_target_expand_matches_exact(self, seed):
        rng = np.random.default_rng(500 + seed)
        table = random_table(
            rng, n_rows=int(rng.integers(100, 300)), n_columns=3, domain=int(rng.integers(3, 5))
        )
        samples = build_sample_set(table, budget=48, seed=seed)
        exact = DrillDownSession(table, k=3)
        approx = DrillDownSession(table, k=3, samples=samples)
        root = Rule.trivial(3)
        exact_children = exact.expand(root)
        approx_children = approx.expand(root, approx=True, error_target=1e-9)
        assert [(tuple(c.rule), c.count) for c in approx_children] == [
            (tuple(c.rule), c.count) for c in exact_children
        ]
        for child in approx_children:
            assert child.estimate is not None
            assert child.estimate["escalated"] is True
            assert child.estimate["exact"] is True
            assert child.estimate["low"] == child.estimate["high"] == child.count

    @pytest.mark.parametrize("seed", range(4))
    def test_tight_target_star_and_traditional_match_exact(self, seed):
        rng = np.random.default_rng(900 + seed)
        table = random_table(rng, n_rows=200, n_columns=3, domain=4)
        samples = build_sample_set(table, budget=48, seed=seed)
        root = Rule.trivial(3)
        for kind in ("star", "traditional"):
            exact = DrillDownSession(table, k=3)
            approx = DrillDownSession(table, k=3, samples=samples)
            if kind == "star":
                e = exact.expand_star(root, 0)
                a = approx.expand_star(root, 0, approx=True, error_target=1e-9)
            else:
                e = exact.expand_traditional(root, 0, k=3)
                a = approx.expand_traditional(root, 0, k=3, approx=True, error_target=1e-9)
            assert [(tuple(c.rule), c.count) for c in a] == [
                (tuple(c.rule), c.count) for c in e
            ]

    def test_loose_target_stays_on_sample_and_brackets_truth(self):
        """The complement: a loose target must *not* escalate, and the
        returned intervals should bracket the true counts at roughly
        the nominal rate (binomial slack over all children seen)."""
        rng = np.random.default_rng(77)
        hits = total = 0
        escalations = 0
        for seed in range(40):
            table = random_table(rng, n_rows=500, n_columns=3, domain=3)
            samples = build_sample_set(table, budget=150, seed=seed)
            session = DrillDownSession(table, k=3, samples=samples)
            children = session.expand(Rule.trivial(3), approx=True, error_target=0.75)
            for child in children:
                est = child.estimate
                assert est is not None
                if est["escalated"]:
                    escalations += 1
                    continue
                total += 1
                hits += est["low"] <= count(child.rule, table) <= est["high"]
        assert escalations <= 4  # loose targets overwhelmingly stay approximate
        assert total >= 80
        assert hits / total >= 0.88

    def test_half_width_boundary_is_the_decision_rule(self):
        """White-box pin of the greedy boundary: an expansion escalates
        iff some child's half-width exceeds target·max(estimate, 1)."""
        rng = np.random.default_rng(123)
        table = random_table(rng, n_rows=400, n_columns=3, domain=3)
        samples = build_sample_set(table, budget=100, seed=0)
        probe = DrillDownSession(table, k=3, samples=samples)
        root = Rule.trivial(3)
        children = probe.expand(root, approx=True, error_target=math.inf)
        ratios = []
        for child in children:
            est = child.estimate
            assert est["escalated"] is False
            half = (est["high"] - est["low"]) / 2.0
            ratios.append(half / max(est["estimate"], 1.0))
        worst = max(ratios)
        assert worst > 0.0  # a real sample, not a census
        # Just above the worst ratio: no child crosses, stays approximate.
        loose = DrillDownSession(table, k=3, samples=samples)
        kids = loose.expand(root, approx=True, error_target=worst * 1.01)
        assert all(c.estimate["escalated"] is False for c in kids)
        # Just below it: the worst child crosses, the whole expansion escalates.
        tight = DrillDownSession(table, k=3, samples=samples)
        kids = tight.expand(root, approx=True, error_target=worst * 0.99)
        assert all(c.estimate["escalated"] is True for c in kids)
