"""Tests for sample-memory allocation (Problem 5, §4.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.sampling import (
    GroupSpec,
    LeafSpec,
    allocate_dp,
    allocate_exhaustive,
    allocate_uniform,
    enumerate_local_options,
)


def group(*leaves: tuple[float, float]) -> GroupSpec:
    """Shorthand: leaves given as (probability, selectivity) pairs."""
    return GroupSpec(
        parent="p",
        leaves=tuple(
            LeafSpec(name=f"l{i}", probability=p, selectivity=s)
            for i, (p, s) in enumerate(leaves)
        ),
    )


class TestSpecs:
    def test_leaf_validation(self):
        with pytest.raises(AllocationError):
            LeafSpec("x", probability=1.5, selectivity=0.5)
        with pytest.raises(AllocationError):
            LeafSpec("x", probability=0.5, selectivity=0.0)

    def test_group_needs_leaves(self):
        with pytest.raises(AllocationError):
            GroupSpec("p", ())

    def test_group_duplicate_leaf_names(self):
        with pytest.raises(AllocationError):
            GroupSpec("p", (LeafSpec("x", 0.5, 0.5), LeafSpec("x", 0.5, 0.5)))


class TestLocalOptions:
    def test_contains_zero_option(self):
        options = enumerate_local_options(group((0.5, 0.5)), 1000)
        assert any(o.cost == 0 and o.value == 0.0 for o in options)

    def test_non_dominated(self):
        options = enumerate_local_options(group((0.4, 0.2), (0.6, 0.8)), 1000)
        costs = [o.cost for o in options]
        values = [o.value for o in options]
        assert costs == sorted(costs)
        assert values == sorted(values)  # strictly better value for more cost

    def test_single_leaf_options(self):
        options = enumerate_local_options(group((1.0, 0.5)), 1000)
        # Satisfying the leaf costs min(own sample 1000, parent 2000) = 1000.
        full = [o for o in options if o.value == 1.0]
        assert full and min(o.cost for o in full) == 1000

    def test_parent_sharing_beats_individual_sampling(self):
        """With high selectivities, one parent sample serves all leaves."""
        g = group((0.5, 0.9), (0.5, 0.9))
        options = enumerate_local_options(g, 900)
        full = min(o for o in options if o.value == 1.0)
        # Parent sample of 1000 satisfies both (0.9 * 1000 = 900) at cost
        # 1000 < two individual samples at 1800.
        assert full.cost <= 1000

    def test_min_sample_size_validated(self):
        with pytest.raises(AllocationError):
            enumerate_local_options(group((0.5, 0.5)), 0)


class TestAllocateDP:
    def test_within_budget(self):
        groups = [group((0.5, 0.5), (0.5, 0.3))]
        result = allocate_dp(groups, 5000, 1000)
        assert result.cost <= 5000
        assert sum(result.sizes.values()) == result.cost

    def test_zero_memory(self):
        result = allocate_dp([group((1.0, 0.5))], 0, 1000)
        assert result.value == 0.0
        assert result.sizes == {}

    def test_satisfies_all_with_ample_memory(self):
        groups = [group((0.3, 0.5), (0.3, 0.2), (0.4, 0.8))]
        result = allocate_dp(groups, 100_000, 1000)
        assert result.value == pytest.approx(1.0)
        assert set(result.satisfied) == {"l0", "l1", "l2"}

    def test_prefers_probable_leaves_under_pressure(self):
        g = GroupSpec(
            "p",
            (
                LeafSpec("hot", probability=0.9, selectivity=0.5),
                LeafSpec("cold", probability=0.1, selectivity=0.5),
            ),
        )
        result = allocate_dp([g], 1000, 1000)
        assert "hot" in result.satisfied
        assert "cold" not in result.satisfied

    def test_multiple_groups_share_budget(self):
        groups = [
            GroupSpec("p1", (LeafSpec("a", 0.6, 0.9),)),
            GroupSpec("p2", (LeafSpec("b", 0.4, 0.9),)),
        ]
        result = allocate_dp(groups, 1500, 1000)
        # Only one leaf fits; the more probable one wins.
        assert result.satisfied == ("a",)

    def test_negative_memory_rejected(self):
        with pytest.raises(AllocationError):
            allocate_dp([group((0.5, 0.5))], -1, 100)

    @settings(deadline=None, max_examples=20)
    @given(
        seed=st.integers(0, 10_000),
        memory_factor=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_matches_exhaustive_on_tiny_instances(self, seed, memory_factor):
        """DP ≥ brute-force grid search (DP explores a superset of grids)."""
        rng = np.random.default_rng(seed)
        minss = 100
        g = GroupSpec(
            "p",
            tuple(
                LeafSpec(
                    name=f"l{i}",
                    probability=float(p),
                    selectivity=float(rng.uniform(0.1, 1.0)),
                )
                for i, p in enumerate(rng.dirichlet(np.ones(2)))
            ),
        )
        memory = int(300 * memory_factor)
        dp = allocate_dp([g], memory, minss)
        brute = allocate_exhaustive([g], memory, minss, grid=12)
        assert dp.value >= brute.value - 1e-9


class TestAllocateUniform:
    def test_even_split(self):
        groups = [group((0.5, 0.5), (0.5, 0.5))]
        result = allocate_uniform(groups, 4000, 1000)
        assert result.sizes == {"l0": 2000, "l1": 2000}
        assert result.value == pytest.approx(1.0)

    def test_wastes_memory_on_unlikely_leaves(self):
        """Uniform underperforms DP when probabilities are skewed."""
        g = GroupSpec(
            "p",
            tuple(
                LeafSpec(f"l{i}", probability=(0.91 if i == 0 else 0.01), selectivity=0.99)
                for i in range(10)
            ),
        )
        memory = 1200
        uniform = allocate_uniform([g], memory, 1000)
        dp = allocate_dp([g], memory, 1000)
        assert dp.value > uniform.value

    def test_empty_groups(self):
        result = allocate_uniform([], 100, 10)
        assert result.value == 0.0


class TestExhaustive:
    def test_too_many_nodes_rejected(self):
        groups = [group((0.2, 0.5), (0.2, 0.5), (0.2, 0.5), (0.2, 0.5), (0.2, 0.5), (0.2, 0.5))]
        with pytest.raises(AllocationError):
            allocate_exhaustive(groups, 100, 10)
