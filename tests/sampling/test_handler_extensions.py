"""Tests for the §4.2/§4.3 handler extensions: exact counts, cell budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, STAR, count
from repro.datasets import generate_zipf_table
from repro.errors import SamplingError
from repro.sampling import Sample, SampleHandler
from repro.storage import DiskTable


@pytest.fixture
def table():
    return generate_zipf_table(
        15_000, [4, 6, 8], skew=1.0, seed=7, column_names=["A", "B", "C"]
    )


@pytest.fixture
def disk(table):
    return DiskTable(table, page_rows=1024)


class TestExactCounts:
    def test_counts_match_direct_computation(self, disk, table):
        h = SampleHandler(disk, memory_capacity=6_000, min_sample_size=1_000)
        rules = [
            Rule(["A_v0", STAR, STAR]),
            Rule([STAR, "B_v0", STAR]),
            Rule(["A_v0", "B_v0", STAR]),
        ]
        got = h.exact_counts(rules)
        for rule in rules:
            assert got[rule] == count(rule, table)

    def test_one_metered_pass(self, disk):
        h = SampleHandler(disk, memory_capacity=6_000, min_sample_size=1_000)
        before = disk.io_stats.scans_completed
        h.exact_counts([Rule(["A_v0", STAR, STAR]), Rule([STAR, "B_v1", STAR])])
        assert disk.io_stats.scans_completed == before + 1

    def test_empty_rules_free(self, disk):
        h = SampleHandler(disk, memory_capacity=6_000, min_sample_size=1_000)
        before = disk.io_stats.scans_completed
        assert h.exact_counts([]) == {}
        assert disk.io_stats.scans_completed == before


class TestCellBudget:
    def test_memory_cells_accounting(self, table):
        sample = Sample(
            filter_rule=Rule(["A_v0", STAR, STAR]),
            scale=2.0,
            table=table.head(10),
            row_ids=np.arange(10),
            population=20,
        )
        # One of three columns is fixed by the filter: 10 × 2 cells.
        assert sample.memory_cells() == 20
        assert sample.memory_tuples() == 10

    def test_trivial_filter_costs_full_width(self, table):
        sample = Sample(
            filter_rule=Rule.trivial(3),
            scale=1.0,
            table=table.head(4),
            row_ids=np.arange(4),
            population=4,
        )
        assert sample.memory_cells() == 12

    def test_cells_budget_fits_more_samples(self, disk):
        """Filtered samples are cheaper under the §4.2 optimisation."""
        h = SampleHandler(
            disk,
            memory_capacity=9_000,
            min_sample_size=1_000,
            budget_unit="cells",
            rng=np.random.default_rng(0),
        )
        h.get_sample(Rule(["A_v0", STAR, STAR]))
        h.get_sample(Rule(["A_v1", STAR, STAR]))
        # Each sample: 3000 tuples × 2 free columns = 6000 cells, but
        # eviction keeps usage within the 9000-cell budget.
        assert h.memory_used() <= 9_000

    def test_tuples_budget_unchanged_by_filter(self, disk):
        h = SampleHandler(
            disk, memory_capacity=6_000, min_sample_size=1_000, budget_unit="tuples"
        )
        h.get_sample(Rule(["A_v0", STAR, STAR]))
        assert h.memory_used() == sum(s.size for s in h.samples.values())

    def test_invalid_budget_unit(self, disk):
        with pytest.raises(SamplingError):
            SampleHandler(disk, budget_unit="bytes")  # type: ignore[arg-type]


class TestSessionRefresh:
    def test_refresh_on_sampled_session(self, disk, table):
        from repro.session import DrillDownSession

        session = DrillDownSession(
            disk,
            k=3,
            mw=3.0,
            memory_capacity=10_000,
            min_sample_size=1_000,
            rng=np.random.default_rng(1),
        )
        session.expand(session.root.rule)
        deltas = session.refresh_exact_counts()
        for node in session.displayed():
            if node.rule.is_trivial:
                continue
            assert node.count == count(node.rule, table)
        # Estimated counts rarely hit exactly; some delta expected.
        assert isinstance(deltas, dict)

    def test_refresh_on_memory_session_is_noop(self, retail):
        from repro.session import DrillDownSession

        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        assert session.refresh_exact_counts() == {}

    def test_refresh_with_measure(self, measure_table):
        from repro.session import DrillDownSession

        session = DrillDownSession(measure_table, k=2, mw=2.0, measure="Sales")
        session.expand(session.root.rule)
        assert session.refresh_exact_counts() == {}
