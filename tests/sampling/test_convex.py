"""Tests for the convex relaxation (Problem 6, §4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.sampling import (
    GroupSpec,
    LeafSpec,
    hinge_objective,
    problem_from_groups,
    project_capped_simplex,
    solve_lp,
    solve_subgradient,
    step_objective,
)


def simple_problem(memory=10_000, minss=2_000):
    g = GroupSpec(
        "p",
        (
            LeafSpec("a", probability=0.5, selectivity=0.5),
            LeafSpec("b", probability=0.3, selectivity=0.2),
            LeafSpec("c", probability=0.2, selectivity=0.9),
        ),
    )
    return problem_from_groups([g], memory, minss)


class TestProblemConstruction:
    def test_nodes_and_leaves(self):
        p = simple_problem()
        assert set(p.leaf_names) == {"a", "b", "c"}
        assert "p" in p.node_names
        # Leaf self-selectivity is 1.
        a_leaf = p.leaf_names.index("a")
        a_node = p.node_names.index("a")
        assert p.selectivity[a_node, a_leaf] == 1.0

    def test_duplicate_leaf_rejected(self):
        g1 = GroupSpec("p1", (LeafSpec("x", 0.5, 0.5),))
        g2 = GroupSpec("p2", (LeafSpec("x", 0.5, 0.5),))
        with pytest.raises(AllocationError):
            problem_from_groups([g1, g2], 100, 10)

    def test_invalid_dimensions(self):
        p = simple_problem()
        with pytest.raises(AllocationError):
            type(p)(
                node_names=p.node_names,
                leaf_names=p.leaf_names,
                probabilities=np.zeros(2),
                selectivity=p.selectivity,
                memory=p.memory,
                min_sample_size=p.min_sample_size,
            )


class TestObjectives:
    def test_hinge_saturates_at_one(self):
        p = simple_problem()
        sizes = np.full(len(p.node_names), 1e9)
        assert hinge_objective(p, sizes) == pytest.approx(1.0)

    def test_hinge_zero_at_zero(self):
        p = simple_problem()
        assert hinge_objective(p, np.zeros(len(p.node_names))) == 0.0

    def test_step_counts_satisfied_leaves(self):
        p = simple_problem(minss=1000)
        sizes = np.zeros(len(p.node_names))
        sizes[p.node_names.index("a")] = 1000.0
        assert step_objective(p, sizes) == pytest.approx(0.5)

    def test_hinge_upper_bounds_step_scaled(self):
        """hinge ≥ step pointwise (min(1, e/m) ≥ I[e ≥ m])... equality at threshold."""
        p = simple_problem()
        rng = np.random.default_rng(0)
        for _ in range(20):
            sizes = rng.uniform(0, p.memory / 2, size=len(p.node_names))
            assert hinge_objective(p, sizes) >= step_objective(p, sizes) - 1e-9


class TestLP:
    def test_respects_budget(self):
        p = simple_problem()
        result = solve_lp(p)
        assert sum(result.sizes.values()) <= p.memory + 1e-6

    def test_saturates_with_ample_memory(self):
        p = simple_problem(memory=100_000, minss=1000)
        assert solve_lp(p).objective == pytest.approx(1.0)

    def test_rounded_sizes_integer(self):
        p = simple_problem()
        rounded = solve_lp(p).rounded_sizes()
        assert all(isinstance(v, int) for v in rounded.values())

    def test_lp_at_least_subgradient(self):
        p = simple_problem(memory=4000)
        lp = solve_lp(p)
        sg = solve_subgradient(p)
        assert lp.objective >= sg.objective - 1e-6


class TestSubgradient:
    def test_approaches_lp_optimum(self):
        p = simple_problem(memory=6000)
        lp = solve_lp(p)
        sg = solve_subgradient(p, iterations=1500)
        assert sg.objective >= 0.95 * lp.objective

    def test_feasible(self):
        p = simple_problem(memory=3000)
        sg = solve_subgradient(p)
        total = sum(sg.sizes.values())
        assert total <= p.memory + 1e-6
        assert all(v >= -1e-9 for v in sg.sizes.values())

    def test_zero_memory(self):
        p = simple_problem(memory=0)
        sg = solve_subgradient(p, iterations=50)
        assert sg.objective == 0.0


class TestProjection:
    def test_identity_when_feasible(self):
        x = np.array([1.0, 2.0])
        assert project_capped_simplex(x, 10.0).tolist() == [1.0, 2.0]

    def test_clips_negatives(self):
        x = np.array([-5.0, 3.0])
        assert project_capped_simplex(x, 10.0).tolist() == [0.0, 3.0]

    def test_projects_onto_simplex_when_over(self):
        x = np.array([6.0, 6.0])
        projected = project_capped_simplex(x, 6.0)
        assert projected.sum() == pytest.approx(6.0)
        assert projected.tolist() == [3.0, 3.0]

    def test_negative_cap_rejected(self):
        with pytest.raises(AllocationError):
            project_capped_simplex(np.array([1.0]), -1.0)

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=8),
        st.floats(0, 100),
    )
    def test_projection_properties(self, values, cap):
        x = np.asarray(values)
        y = project_capped_simplex(x, cap)
        assert (y >= -1e-9).all()
        assert y.sum() <= cap + 1e-6
        # Projection is no farther from x than any feasible grid point.
        rng = np.random.default_rng(0)
        for _ in range(5):
            z = rng.uniform(0, 1, size=x.size)
            z = z / max(z.sum(), 1e-9) * min(cap, rng.uniform(0, cap + 1e-9))
            assert np.linalg.norm(y - x) <= np.linalg.norm(z - x) + 1e-6
