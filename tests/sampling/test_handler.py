"""Tests for the SampleHandler (§4.3): Find / Combine / Create, eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, STAR, count
from repro.datasets import generate_zipf_table
from repro.errors import SamplingError
from repro.sampling import SampleHandler
from repro.storage import DiskTable


@pytest.fixture
def table():
    return generate_zipf_table(
        20_000, [4, 6, 8], skew=1.0, seed=3, column_names=["A", "B", "C"]
    )


@pytest.fixture
def disk(table):
    return DiskTable(table, page_rows=1024)


def handler(disk, **kw) -> SampleHandler:
    defaults = dict(
        memory_capacity=6_000, min_sample_size=1_000, rng=np.random.default_rng(0)
    )
    defaults.update(kw)
    return SampleHandler(disk, **defaults)


class TestCreate:
    def test_first_access_creates(self, disk):
        h = handler(disk)
        sample, method = h.get_sample(Rule.trivial(3))
        assert method == "create"
        # Default oversample of 3× gives Combine headroom.
        assert sample.size == 3000
        assert sample.population == 20_000
        assert sample.scale == pytest.approx(20_000 / 3000)
        assert disk.io_stats.scans_completed == 1

    def test_sample_rows_covered_by_filter(self, disk, table):
        h = handler(disk)
        rule = Rule(["A_v0", STAR, STAR])
        sample, method = h.get_sample(rule)
        assert method == "create"
        assert all(row[0] == "A_v0" for row in sample.table.rows())

    def test_scale_reflects_exact_population(self, disk, table):
        h = handler(disk)
        rule = Rule(["A_v0", STAR, STAR])
        sample, _ = h.get_sample(rule)
        assert sample.population == count(rule, table)

    def test_uncoverable_rule_raises(self, disk):
        h = handler(disk)
        with pytest.raises(SamplingError):
            h.get_sample(Rule(["nope", STAR, STAR]))

    def test_co_create_batches_one_pass(self, disk):
        h = handler(disk)
        extra = Rule([STAR, "B_v0", STAR])
        h.get_sample(Rule.trivial(3), co_create={extra: 800})
        assert disk.io_stats.scans_completed == 1
        assert extra in h.samples


class TestFind:
    def test_second_access_is_free(self, disk):
        h = handler(disk)
        h.get_sample(Rule.trivial(3))
        scans = disk.io_stats.scans_completed
        _, method = h.get_sample(Rule.trivial(3))
        assert method == "find"
        assert disk.io_stats.scans_completed == scans

    def test_undersized_sample_not_found(self, disk):
        h = handler(disk)
        # Co-created small sample cannot serve a find.
        small_rule = Rule([STAR, "B_v0", STAR])
        h.get_sample(Rule.trivial(3), co_create={small_rule: 200})
        _, method = h.get_sample(small_rule)
        assert method in ("combine", "create")


class TestCombine:
    def test_combines_from_root_sample(self, disk, table):
        h = handler(disk, min_sample_size=1000, memory_capacity=20_000)
        root, _ = h.get_sample(Rule.trivial(3))
        # Pick a rule covering well over minSS/|root| of the table.
        rule = Rule(["A_v0", STAR, STAR])
        scans = disk.io_stats.scans_completed
        sample, method = h.get_sample(rule)
        assert method == "combine"
        assert disk.io_stats.scans_completed == scans  # no disk pass
        assert sample.size >= 1000
        assert all(row[0] == "A_v0" for row in sample.table.rows())

    def test_combined_scale_estimates_population(self, disk, table):
        h = handler(disk, min_sample_size=1000, memory_capacity=20_000)
        h.get_sample(Rule.trivial(3))
        rule = Rule(["A_v0", STAR, STAR])
        sample, method = h.get_sample(rule)
        assert method == "combine"
        true = count(rule, table)
        assert sample.scale * sample.size == pytest.approx(true, rel=0.15)

    def test_combine_deduplicates_row_ids(self, disk):
        h = handler(disk, min_sample_size=500, memory_capacity=20_000)
        h.get_sample(Rule.trivial(3))
        rule = Rule(["A_v0", STAR, STAR])
        h.get_sample(rule)  # combine, stored
        combined = h.samples[rule]
        assert len(set(combined.row_ids.tolist())) == combined.size

    def test_effective_sample_size(self, disk):
        h = handler(disk)
        h.get_sample(Rule.trivial(3))
        rule = Rule(["A_v0", STAR, STAR])
        ess = h.effective_sample_size(rule)
        restricted = sum(
            1 for row in h.samples[Rule.trivial(3)].table.rows() if row[0] == "A_v0"
        )
        assert ess == restricted


class TestEviction:
    def test_memory_budget_respected(self, disk):
        h = handler(disk, memory_capacity=2_500, min_sample_size=1_000)
        h.get_sample(Rule.trivial(3))
        h.get_sample(Rule(["A_v0", STAR, STAR]))
        h.get_sample(Rule([STAR, "B_v0", STAR]))
        assert h.memory_used() <= 2_500

    def test_lru_eviction_order(self, disk):
        h = handler(disk, memory_capacity=2_000, min_sample_size=1_000)
        first = Rule.trivial(3)
        second = Rule(["A_v0", STAR, STAR])
        third = Rule([STAR, "B_v0", STAR])
        h.get_sample(first)
        h.get_sample(second)  # evicts nothing yet (2000 budget, 2 x 1000)
        h.get_sample(third)  # evicts the least recently used: first
        assert first not in h.samples
        assert third in h.samples

    def test_events_log(self, disk):
        h = handler(disk)
        h.get_sample(Rule.trivial(3))
        h.get_sample(Rule.trivial(3))
        methods = [e.method for e in h.events]
        assert methods == ["create", "find"]

    def test_invalid_configuration(self, disk):
        with pytest.raises(SamplingError):
            SampleHandler(disk, memory_capacity=100, min_sample_size=1_000)


class TestPrefetch:
    def test_prefetch_enables_memory_service(self, disk):
        h = handler(disk, memory_capacity=20_000, min_sample_size=1_000)
        root = Rule.trivial(3)
        h.get_sample(root)
        leaves = [
            Rule(["A_v0", STAR, STAR]),
            Rule(["A_v1", STAR, STAR]),
            Rule([STAR, "B_v1", STAR]),
        ]
        h.prefetch(root, leaves)
        scans = disk.io_stats.scans_completed
        for leaf in leaves:
            _, method = h.get_sample(leaf)
            assert method in ("find", "combine")
        assert disk.io_stats.scans_completed == scans

    def test_prefetch_skips_already_served(self, disk):
        h = handler(disk, memory_capacity=20_000, min_sample_size=200)
        root = Rule.trivial(3)
        h.get_sample(root)
        # A_v0 is frequent: the root sample already serves it at minSS=200.
        created = h.prefetch(root, [Rule(["A_v0", STAR, STAR])])
        assert created == {}

    def test_prefetch_events_flagged(self, disk):
        h = handler(disk, memory_capacity=20_000, min_sample_size=1_000)
        root = Rule.trivial(3)
        h.get_sample(root)
        h.prefetch(root, [Rule([STAR, STAR, "C_v7"])])
        assert any(e.prefetched for e in h.events)

    def test_bad_probabilities(self, disk):
        h = handler(disk)
        root = Rule.trivial(3)
        h.get_sample(root)
        with pytest.raises(SamplingError):
            h.prefetch(root, [Rule(["A_v0", STAR, STAR])], probabilities=[0.5, 0.5])

    def test_bad_safety(self, disk):
        h = handler(disk)
        root = Rule.trivial(3)
        h.get_sample(root)
        with pytest.raises(SamplingError):
            h.prefetch(root, [Rule([STAR, STAR, "C_v7"])], safety=0.5)


class TestStatisticalQuality:
    def test_created_sample_estimates_are_accurate(self, disk, table):
        """Estimated counts from a Create sample track true counts."""
        h = handler(disk, min_sample_size=2_000, memory_capacity=20_000)
        sample, _ = h.get_sample(Rule.trivial(3))
        for value in ("A_v0", "A_v1"):
            rule = Rule([value, STAR, STAR])
            estimate = sample.estimate_count(rule)
            true = count(rule, table)
            assert estimate == pytest.approx(true, rel=0.2)
