"""Tests for the simulated interaction traces and the memory-budget sweep."""

from __future__ import annotations

import pytest

from repro.datasets import generate_census
from repro.experiments import run_memory_budget_sweep, simulate_exploration


@pytest.fixture(scope="module")
def census():
    return generate_census(40_000, n_columns=7, seed=13)


class TestSimulateExploration:
    def test_trace_runs_to_depth(self, census):
        result = simulate_exploration(census, clicks=4, min_sample_size=2_000, seed=0)
        assert result.clicks >= 2
        assert result.created >= 1
        assert result.simulated_io_seconds > 0

    def test_deterministic_per_seed(self, census):
        a = simulate_exploration(census, clicks=4, min_sample_size=2_000, seed=3)
        b = simulate_exploration(census, clicks=4, min_sample_size=2_000, seed=3)
        # Wall time is inherently noisy; everything else is seeded.
        assert (a.clicks, a.served_from_memory, a.created, a.simulated_io_seconds) == (
            b.clicks,
            b.served_from_memory,
            b.created,
            b.simulated_io_seconds,
        )

    def test_prefetch_improves_hit_rate(self, census):
        with_prefetch = simulate_exploration(
            census, clicks=5, min_sample_size=2_000, seed=1, prefetch=True
        )
        without = simulate_exploration(
            census, clicks=5, min_sample_size=2_000, seed=1, prefetch=False
        )
        assert with_prefetch.memory_hit_rate >= without.memory_hit_rate

    def test_hit_rate_bounds(self, census):
        result = simulate_exploration(census, clicks=4, min_sample_size=2_000, seed=2)
        assert 0.0 <= result.memory_hit_rate <= 1.0


class TestMemoryBudgetSweep:
    def test_bigger_budget_never_hurts(self, census):
        sweep = run_memory_budget_sweep(
            census, [4_000, 40_000], clicks=4, min_sample_size=2_000, seeds=(0, 1)
        )
        assert sweep[40_000].memory_hit_rate >= sweep[4_000].memory_hit_rate
