"""Randomised session fuzzing: invariants hold under arbitrary interaction.

Drives hundreds of random expand/star/traditional/collapse operations
against in-memory and sampled sessions and asserts the structural
invariants after every step:

* the displayed set is a tree of strict super-rules,
* every node is registered exactly once,
* counts are positive and children's counts never exceed the parent's
  (exactly for in-memory sessions; within sampling tolerance otherwise),
* collapse fully undoes expand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SessionError
from repro.session import DrillDownSession


def check_invariants(session: DrillDownSession, *, exact_counts: bool) -> None:
    nodes = session.displayed()
    rules = [n.rule for n in nodes]
    assert len(set(rules)) == len(rules), "a rule is displayed twice"

    def walk(node, ancestors):
        for ancestor in ancestors:
            assert ancestor.rule.is_subrule_of(node.rule)
        assert node.count >= 0
        for child in node.children:
            assert child.depth == node.depth + 1
            assert node.rule.is_strict_subrule_of(child.rule)
            if exact_counts:
                assert child.count <= node.count + 1e-9
            walk(child, ancestors + [node])

    walk(session.root, [])


def random_walk(session: DrillDownSession, rng: np.random.Generator, steps: int,
                *, exact_counts: bool, categorical: tuple[int, ...]) -> None:
    for _ in range(steps):
        nodes = session.displayed()
        action = rng.choice(["expand", "star", "traditional", "collapse"])
        node = nodes[int(rng.integers(len(nodes)))]
        try:
            if action == "expand":
                session.expand(node.rule)
            elif action == "star":
                stars = [i for i in node.rule.star_indexes if i in categorical]
                if stars:
                    session.expand_star(node.rule, int(rng.choice(stars)))
            elif action == "traditional":
                stars = [i for i in node.rule.star_indexes if i in categorical]
                if stars:
                    session.expand_traditional(node.rule, int(rng.choice(stars)), k=3)
            else:
                session.collapse(node.rule)
        except SessionError:
            pass  # already expanded / not expanded / tiny cover: all legal refusals
        check_invariants(session, exact_counts=exact_counts)


class TestInMemoryFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_walk(self, retail, seed):
        session = DrillDownSession(retail, k=3, mw=3.0)
        random_walk(
            session,
            np.random.default_rng(seed),
            steps=25,
            exact_counts=True,
            categorical=retail.schema.categorical_indexes,
        )

    def test_collapse_restores_initial_state(self, retail):
        session = DrillDownSession(retail, k=3, mw=3.0)
        rng = np.random.default_rng(9)
        random_walk(
            session,
            rng,
            steps=15,
            exact_counts=True,
            categorical=retail.schema.categorical_indexes,
        )
        if session.root.is_expanded:
            session.collapse(session.root.rule)
        assert session.displayed() == [session.root]
        assert session.leaves() == [session.root]

    def test_star_on_numeric_column_rejected(self, retail):
        """Clicking the '?' of a measure column is a clear error."""
        from repro.errors import SchemaError

        session = DrillDownSession(retail, k=3, mw=3.0)
        with pytest.raises(SchemaError):
            session.expand_traditional(
                session.root.rule, retail.schema.index_of("Sales")
            )


class TestSampledFuzz:
    def test_random_walk_with_sampling(self):
        from repro.datasets import generate_zipf_table
        from repro.storage import DiskTable

        table = generate_zipf_table(
            25_000, [4, 5, 6, 7], skew=1.1, seed=5,
            column_names=["A", "B", "C", "D"],
        )
        session = DrillDownSession(
            DiskTable(table),
            k=3,
            mw=4.0,
            memory_capacity=15_000,
            min_sample_size=1_500,
            rng=np.random.default_rng(0),
        )
        random_walk(
            session,
            np.random.default_rng(1),
            steps=12,
            exact_counts=False,
            categorical=table.schema.categorical_indexes,
        )
        # The handler stayed within its budget throughout.
        assert session.handler is not None
        assert session.handler.memory_used() <= 15_000
