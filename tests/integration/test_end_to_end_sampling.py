"""Integration tests: the full sampling pipeline on a large disk table.

The §5.2 claims exercised end-to-end: samples make drill-downs cheap
after the first pass, estimated counts track true counts, and the
experiment runners produce the paper's curve shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, SizeWeight, brs, count
from repro.datasets import generate_census
from repro.experiments import (
    run_approximation_study,
    run_minss_sweep,
    run_mw_sweep,
    run_scaling_sweep,
    trend_slope,
)
from repro.session import DrillDownSession
from repro.storage import DiskTable


@pytest.fixture(scope="module")
def census():
    return generate_census(60_000, n_columns=7)


class TestSampledExploration:
    def test_three_level_exploration(self, census):
        disk = DiskTable(census)
        session = DrillDownSession(
            disk,
            k=3,
            mw=5.0,
            memory_capacity=30_000,
            min_sample_size=3_000,
            rng=np.random.default_rng(1),
        )
        level1 = session.expand(session.root.rule)
        level2 = session.expand(level1[0].rule)
        assert level2
        # All rules displayed are genuine super-rules down the tree.
        for child in level2:
            assert level1[0].rule.is_subrule_of(child.rule)

    def test_estimated_counts_track_truth(self, census):
        disk = DiskTable(census)
        session = DrillDownSession(
            disk,
            k=4,
            mw=5.0,
            memory_capacity=30_000,
            min_sample_size=5_000,
            rng=np.random.default_rng(2),
        )
        children = session.expand(session.root.rule)
        for child in children:
            true = count(child.rule, census)
            assert child.count == pytest.approx(true, rel=0.25)

    def test_sampled_rules_match_full_table_rules_mostly(self, census):
        """§5.2.2: incorrect-rule count is small at healthy minSS."""
        truth = set(brs(census, SizeWeight(), 4, 5.0).rules)
        disk = DiskTable(census)
        session = DrillDownSession(
            disk,
            k=4,
            mw=5.0,
            memory_capacity=30_000,
            min_sample_size=5_000,
            rng=np.random.default_rng(3),
        )
        sampled = {c.rule for c in session.expand(session.root.rule)}
        assert len(sampled - truth) <= 1

    def test_io_only_on_first_expansion(self, census):
        disk = DiskTable(census)
        session = DrillDownSession(
            disk,
            k=3,
            mw=5.0,
            memory_capacity=30_000,
            min_sample_size=3_000,
            rng=np.random.default_rng(4),
        )
        children = session.expand(session.root.rule)
        session.expand(children[0].rule)
        session.expand(children[1].rule)
        # Prefetch already paid any needed pass before the user clicked:
        # the follow-up expansions themselves cost no disk I/O.
        assert session.history[1].simulated_io_seconds == 0.0
        assert session.history[2].simulated_io_seconds == 0.0


class TestExperimentShapes:
    def test_mw_sweep_monotone_scores(self, census):
        series = run_mw_sweep(census, "size", [1, 2, 3, 5], repeats=1)
        scores = series.extra("score")
        assert scores == sorted(scores)  # larger mw never hurts the score

    def test_minss_error_decays(self, census):
        points = run_minss_sweep(
            census, "size", [250, 1000, 4000], iterations=4, seed=0
        )
        errors = [p.percent_error for p in points]
        assert errors[0] > errors[-1]
        # Roughly 1/sqrt(minSS): quadrupling the sample roughly halves error.
        assert errors[-1] < 0.75 * errors[0]

    def test_minss_incorrect_rules_decrease(self, census):
        points = run_minss_sweep(
            census, "size", [100, 4000], iterations=4, seed=1
        )
        assert points[-1].incorrect_rules <= points[0].incorrect_rules

    def test_scaling_linear_in_table_size(self):
        tables = [generate_census(n, n_columns=7, seed=9) for n in (10_000, 20_000, 40_000)]
        series = run_scaling_sweep(tables, min_sample_size=2_000)
        io_secs = series.extra("simulated_io_seconds")
        # Simulated scan cost doubles with table size.
        assert io_secs[1] == pytest.approx(2 * io_secs[0], rel=0.1)
        assert io_secs[2] == pytest.approx(4 * io_secs[0], rel=0.1)
        # BRS-only cost does not grow with |T| (it sees only the sample).
        brs_secs = series.extra("brs_only_seconds")
        assert max(brs_secs) < 10 * min(brs_secs) + 0.05

    def test_approximation_ratios_respect_bound(self):
        series = run_approximation_study(n_trials=5, n_rows=25)
        bound = 1 - (1 - 1 / 3) ** 3
        assert all(r >= bound - 1e-9 for r in series.ys)
        assert all(r <= 1.0 + 1e-9 for r in series.ys)

    def test_trend_slope_helper(self):
        assert trend_slope([1, 2, 3], [2, 4, 6]) == pytest.approx(2.0)
        assert trend_slope([1], [1]) == 0.0
