"""Integration tests: the paper's tables and figures reproduce end-to-end.

These tests pin the *content* of every qualitative artefact (Tables
1–3, Figures 1–4, 6, 7) on the synthetic datasets, exactly as
EXPERIMENTS.md reports them.
"""

from __future__ import annotations

import pytest

from repro.core import Rule, STAR, SizeWeight
from repro.experiments import (
    run_fig1_empty_rule,
    run_fig2_star_education,
    run_fig3_rule_expansion,
    run_fig4_traditional_age,
    run_fig6_bits,
    run_fig7_size_minus_one,
    run_tables_1_2_3,
)
from repro.session import DrillDownSession


class TestTables123:
    def test_table2_rule_set(self):
        table2, _ = run_tables_1_2_3()
        got = {(str(e.rule), int(e.count)) for e in table2.rule_list}
        assert got == {
            ("(Target, bicycles, ?, ?)", 200),
            ("(?, comforters, MA-3, ?)", 600),
            ("(Walmart, ?, ?, ?)", 1000),
        }

    def test_table3_rule_set(self):
        _, table3 = run_tables_1_2_3()
        got = {(str(e.rule), int(e.count)) for e in table3.rule_list}
        assert got == {
            ("(Walmart, cookies, ?, ?)", 200),
            ("(Walmart, ?, CA-1, ?)", 150),
            ("(Walmart, ?, WA-5, ?)", 130),
        }

    def test_table2_display_order_weight_descending(self):
        table2, _ = run_tables_1_2_3()
        weights = [e.weight for e in table2.rule_list]
        assert weights == [2.0, 2.0, 1.0]

    def test_full_session_transcript(self):
        """Drive the interaction through the session layer (Tables 1→3)."""
        from repro.datasets import generate_retail

        retail = generate_retail()
        session = DrillDownSession(retail, k=3, mw=3.0)
        session.expand(session.root.rule)
        session.expand(Rule.from_named(retail, Store="Walmart"))
        text = session.to_text()
        assert ". . Walmart" in text  # depth-2 rows exist
        assert "6000" in text


class TestFigure1:
    def test_rule_set(self):
        fig1 = run_fig1_empty_rule()
        got = {(str(e.rule), int(e.count)) for e in fig1.rule_list}
        assert got == {
            ("(?, Female, ?, ?, ?, ?, ?)", 4918),
            ("(?, Male, ?, ?, ?, ?, ?)", 4075),
            ("(?, Female, ?, ?, ?, ?, >10 years)", 2940),
            ("(?, Male, Never married, ?, ?, ?, >10 years)", 980),
        }

    def test_stable_across_seeds(self):
        baseline = {str(e.rule) for e in run_fig1_empty_rule(seed=42).rule_list}
        for seed in (1, 2, 77):
            assert {str(e.rule) for e in run_fig1_empty_rule(seed=seed).rule_list} == baseline


class TestFigure2:
    def test_education_values_for_females(self):
        fig2 = run_fig2_star_education()
        assert len(fig2.rules) == 4
        for rule in fig2.rules:
            assert rule[1] == "Female"  # Sex column kept
            assert not rule.is_star(4)  # Education instantiated

    def test_most_frequent_levels_selected(self):
        """The chosen education levels are the most frequent among females."""
        from repro.core import count as rule_count
        from repro.experiments import marketing_first_seven

        table = marketing_first_seven()
        fig2 = run_fig2_star_education()
        chosen_counts = sorted((e.count for e in fig2.rule_list), reverse=True)
        # Compare against the exhaustive per-level counts.
        edu = table.categorical("Education")
        female_counts = sorted(
            (
                rule_count(Rule.from_named(table, Sex="Female", Education=level), table)
                for level in set(edu.to_list())
            ),
            reverse=True,
        )
        assert chosen_counts == female_counts[:4]


class TestFigure3:
    def test_children_refine_parent(self):
        fig3 = run_fig3_rule_expansion()
        parent_sex, parent_time = 1, 6
        assert fig3.rules
        for rule in fig3.rules:
            assert rule[parent_sex] == "Female"
            assert rule[parent_time] == ">10 years"
            assert rule.size >= 3  # strictly more specific


class TestFigure4:
    def test_one_rule_per_age_bucket(self):
        fig4 = run_fig4_traditional_age()
        ages = [r[3] for r in fig4.rules]
        assert len(ages) == len(set(ages)) == 7

    def test_counts_cover_whole_table(self):
        fig4 = run_fig4_traditional_age()
        assert sum(e.count for e in fig4.rule_list) == 8993


class TestFigure6:
    def test_bits_avoids_binary_sex_column(self):
        """The paper: Bits weighting surfaces Marital/TimeInBayArea
        information instead of the binary Gender column."""
        fig6 = run_fig6_bits()
        sex_idx = 1
        sex_instantiating = [r for r in fig6.rules if not r.is_star(sex_idx)]
        # At most one rule may touch Sex; the Figure 1 summary had two.
        assert len(sex_instantiating) <= 1

    def test_weights_use_bits(self):
        fig6 = run_fig6_bits()
        assert all(e.weight >= 3.0 for e in fig6.rule_list)


class TestFigure7:
    def test_all_rules_at_least_size_two(self):
        fig7 = run_fig7_size_minus_one()
        assert all(r.size >= 2 for r in fig7.rules)

    def test_distinct_from_figure1(self):
        fig1 = {str(r) for r in run_fig1_empty_rule().rules}
        fig7 = {str(r) for r in run_fig7_size_minus_one().rules}
        assert fig7 != fig1
