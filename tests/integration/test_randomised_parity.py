"""Randomised parity: the full operator stack against brute force.

The unit suites verify Algorithm 2 against brute force in isolation;
these tests verify the *composed* operators — drill-down reductions
with merged weights, star constraints, and Sum measures — by scoring
their outputs against exhaustively optimal ones on tiny random tables.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MergedWeight,
    Rule,
    STAR,
    SizeWeight,
    StarConstrainedWeight,
    best_marginal_rule_brute,
    cover_mask,
    find_best_marginal_rule,
    rule_drilldown,
    score_set,
    star_drilldown,
    top_weights,
)
from repro.table import Table
from tests.conftest import random_table


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000))
def test_merged_weight_search_matches_brute(seed):
    """Algorithm 2 under MergedWeight (the drill-down lifting) ≡ brute."""
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_rows=24, n_columns=3, domain=2)
    parent = Rule.from_items(3, {0: "v0"})
    sub = table.filter(cover_mask(parent, table))
    if sub.n_rows == 0:
        return
    wf = MergedWeight(SizeWeight(), parent)
    top = np.full(sub.n_rows, 1.0)  # parent weight seeding
    fast = find_best_marginal_rule(sub, wf, top, 3.0)
    brute = best_marginal_rule_brute(sub, wf, top, 3.0)
    if brute is None:
        assert fast is None
    else:
        assert fast is not None
        assert fast.marginal == pytest.approx(brute[1])


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000))
def test_star_constrained_merged_search_matches_brute(seed):
    """The star drill-down weight stack ≡ brute force."""
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_rows=24, n_columns=3, domain=2)
    wf = StarConstrainedWeight(SizeWeight(), 2)
    top = np.zeros(table.n_rows)
    fast = find_best_marginal_rule(table, wf, top, 3.0)
    brute = best_marginal_rule_brute(table, wf, top, 3.0)
    if brute is None:
        assert fast is None
    else:
        assert fast is not None
        assert fast.marginal == pytest.approx(brute[1])


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_sum_measures_search_matches_brute(seed):
    """Algorithm 2 with random non-negative measures ≡ brute force."""
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_rows=20, n_columns=3, domain=2)
    measures = rng.integers(0, 5, size=table.n_rows).astype(np.float64)
    top = np.zeros(table.n_rows)
    fast = find_best_marginal_rule(table, SizeWeight(), top, 3.0, measures=measures)
    brute = best_marginal_rule_brute(table, SizeWeight(), top, 3.0, measures=measures)
    if brute is None:
        assert fast is None
    else:
        assert fast is not None
        assert fast.marginal == pytest.approx(brute[1])


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 10_000))
def test_drilldown_children_score_near_optimal(seed):
    """Rule drill-down children achieve ≥ (1−1/e) of the best child set.

    Ground truth: among all strict super-rules of the parent with
    positive support, the optimal k-set under the parent-seeded score
    (children credited for weight above the parent's).
    """
    import itertools

    rng = np.random.default_rng(seed)
    table = random_table(rng, n_rows=22, n_columns=3, domain=2)
    parent = Rule.from_items(3, {1: "v0"})
    sub = table.filter(cover_mask(parent, table))
    if sub.n_rows < 2:
        return
    wf = SizeWeight()
    k = 2
    result = rule_drilldown(table, parent, wf, k, 3.0)

    def seeded_score(rules):
        """Σ_t max over covering rules of W, floored at W(parent)."""
        tops = top_weights(rules, sub, wf)
        return float(np.maximum(tops, wf.weight(parent)).sum())

    from repro.core import enumerate_supported_rules

    pool = [
        r.merge(parent)
        for r in enumerate_supported_rules(sub)
        if r.merge(parent) is not None
    ]
    pool = [r for r in set(pool) if r != parent]
    best = seeded_score(())
    for combo in itertools.combinations(pool, min(k, len(pool))):
        best = max(best, seeded_score(combo))
    achieved = seeded_score(result.rules)
    bound = 1 - (1 - 1 / k) ** k
    baseline = seeded_score(())
    assert achieved - baseline >= bound * (best - baseline) - 1e-9


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 10_000))
def test_star_drilldown_all_instantiate_column(seed):
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_rows=22, n_columns=3, domain=3)
    result = star_drilldown(table, Rule.trivial(3), 1, SizeWeight(), 3, 3.0)
    for rule in result.rules:
        assert not rule.is_star(1)
