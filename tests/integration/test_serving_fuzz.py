"""Multi-tenant workload replay: three serving stacks, one transcript.

Extends the randomised session-fuzz approach (``test_session_fuzz.py``)
up the serving stack: generate randomised multi-tenant op sequences —
create / expand / star-expand / traditional-expand / collapse / render
/ close, interleaved across tenants and tables — and replay the same
transcript against

(a) standalone :class:`~repro.session.DrillDownSession` objects,
(b) a one-process :class:`~repro.serving.DrillDownServer`, and
(c) an N-shard :class:`~repro.serving.ShardRouter` (N ∈ {1, 2, 4}),

asserting after every step that all three agree *exactly*: the same
children (rules, counts, weights, estimate metadata) for every
expansion, the same typed error class for every rejected op, and
byte-identical renders — the ISSUE 5 acceptance criterion that
sharding changes where work runs, never what any tenant sees.

The op generator deliberately does not avoid invalid operations
(re-expanding an expanded rule, collapsing a leaf): error *parity* is
part of the contract the serving layers must preserve.

The approx dimension (ISSUE 7): with ``sample_budget`` set the serving
tiers pre-build samples at registration while the standalone replica
builds the same set by hand (same table bytes, same derived seed), so

* ``approx=False`` transcripts must stay identical to a run with no
  sampling at all — registration-time sampling is invisible to exact
  expansions, and
* seeded ``approx=True`` transcripts must produce the *same estimates
  and confidence metadata* on every backend, including the shard
  workers that rebuild samples from wire-decoded tables.

The append/version dimension (ISSUE 10): with ``append_prob`` set the
generator interleaves ``append_rows`` ops — each creates a new table
version on both serving tiers while the standalone side mirrors the
append with the same deterministic :meth:`Table.append_rows`.
Sessions opened *before* an append stay pinned to their version
(their renders must not move by a byte); sessions opened *after* see
the appended table and must match a standalone session built directly
over it — across the incremental export growth and delta-maintained
first-pick marginals the serving tiers use under the hood.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.serving import DrillDownServer, ShardRouter, build_sample_set, derive_seed
from repro.session import DrillDownSession
from tests.conftest import random_table

pytestmark = [pytest.mark.serving, pytest.mark.slow]

N_TABLES = 3
MAX_LIVE_SESSIONS = 5
TENANTS = ("alice", "bob", "carol")


def _make_tables(seed: int) -> dict:
    rng = np.random.default_rng(1000 + seed)
    tables = {}
    for i in range(N_TABLES):
        tables[f"table-{i}"] = random_table(
            rng,
            n_rows=int(rng.integers(40, 90)),
            n_columns=3,
            domain=int(rng.integers(3, 5)),
        )
    return tables


class _Replica:
    """One client session replicated across the three backends."""

    def __init__(self, table_name, standalone, server_sid, router_sid):
        self.table_name = table_name
        self.standalone = standalone
        self.server_sid = server_sid
        self.router_sid = router_sid


def _estimate_key(estimate: dict | None):
    """An estimate dict as a hashable, order-independent tuple."""
    if estimate is None:
        return None
    return tuple(sorted(estimate.items()))


def _outcome(fn):
    """Run one backend's op; normalise to comparable plain data."""
    try:
        result = fn()
    except ReproError as exc:
        return ("error", type(exc).__name__)
    if result is None:
        return ("ok", None)
    if isinstance(result, str):
        return ("ok", result)
    return (
        "ok",
        tuple(
            (tuple(c.rule), c.count, c.weight, c.depth, _estimate_key(c.estimate))
            for c in result
        ),
    )


def _assert_same(step: int, op: str, outcomes: dict) -> None:
    values = list(outcomes.values())
    assert values[0] == values[1] == values[2], (
        f"step {step}: backends diverged on {op!r}:\n"
        + "\n".join(f"  {name}: {out!r}" for name, out in outcomes.items())
    )


def _renders(replica, server, router) -> dict:
    return {
        "standalone": _outcome(replica.standalone.to_text),
        "server": _outcome(lambda: server.render(replica.server_sid)),
        "router": _outcome(lambda: router.render(replica.router_sid)),
    }


def run_replay(
    seed: int,
    n_shards: int,
    steps: int = 25,
    *,
    default_deadline: float | None = None,
    sample_budget: int | None = None,
    approx: bool = False,
    marginal_cache: bool = True,
    marginal_pairs: int = 0,
    append_prob: float = 0.0,
) -> int:
    rng = np.random.default_rng(seed)
    tables = _make_tables(seed)
    performed = 0
    # The standalone replica mirrors the catalog's registration-time
    # sampling by hand: same table bytes, same per-name derived seed.
    standalone_samples: dict[str, object] = {}
    if approx:
        assert sample_budget is not None, "approx replay needs a sample_budget"
        for name, table in tables.items():
            standalone_samples[name] = build_sample_set(
                table, budget=sample_budget, seed=derive_seed(name, 0)
            )
    with DrillDownServer(
        default_deadline=default_deadline, sample_budget=sample_budget,
        marginal_cache=marginal_cache, marginal_pairs=marginal_pairs,
    ) as server, ShardRouter(
        n_shards, default_deadline=default_deadline, sample_budget=sample_budget,
        marginal_cache=marginal_cache, marginal_pairs=marginal_pairs,
    ) as router:
        for name, table in tables.items():
            server.register_table(name, table)
            router.register_table(name, table)
        live: list[_Replica] = []
        closed_ids: set[str] = set()

        def create() -> None:
            name = f"table-{rng.integers(N_TABLES)}"
            tenant = TENANTS[int(rng.integers(len(TENANTS)))]
            k = int(rng.integers(2, 4))
            mw = float(rng.choice([3.0, 5.0]))
            table = tables[name]
            replica = _Replica(
                name,
                DrillDownSession(
                    table, k=k, mw=mw, samples=standalone_samples.get(name)
                ),
                server.create_session(name, tenant=tenant, k=k, mw=mw),
                router.create_session(name, tenant=tenant, k=k, mw=mw),
            )
            assert router.shard_of_session(replica.router_sid) == router.shard_of_table(name)
            live.append(replica)

        for step in range(steps):
            if append_prob and rng.random() < append_prob:
                # Append to a random table on both serving tiers and
                # mirror it standalone with the same deterministic
                # Table.append_rows.  Live replicas keep their pinned
                # pre-append sessions; replicas created after this step
                # open over the appended table on every backend.
                name = f"table-{rng.integers(N_TABLES)}"
                new_rows = [
                    tuple(f"v{rng.integers(7)}" for _ in range(3))
                    for _ in range(int(rng.integers(1, 4)))
                ]
                server_record = server.append_rows(name, new_rows)
                router_record = router.append_rows(name, new_rows)
                assert server_record["version"] == router_record["version"], (
                    f"step {step}: version skew after append on {name!r}"
                )
                tables[name] = tables[name].append_rows(new_rows)
                assert server_record["rows"] == tables[name].n_rows
                performed += 1
                continue
            if not live or (len(live) < MAX_LIVE_SESSIONS and rng.random() < 0.25):
                create()
                performed += 1
                continue
            replica = live[int(rng.integers(len(live)))]
            nodes = replica.standalone.displayed()
            node = nodes[int(rng.integers(len(nodes)))]
            rule = node.rule
            action = str(
                rng.choice(["expand", "star", "traditional", "collapse", "render", "close"],
                           p=[0.3, 0.2, 0.1, 0.15, 0.15, 0.1])
            )
            if action in ("star", "traditional"):
                stars = rule.star_indexes
                if not stars:
                    continue  # fully instantiated rule: no ? cell to click
                column = int(rng.choice(stars))
            if action == "close":
                outcomes = {
                    "standalone": _outcome(lambda: live.remove(replica) or replica.standalone.close()),
                    "server": ("ok", None if server.close_session(replica.server_sid) else "gone"),
                    "router": ("ok", None if router.close_session(replica.router_sid) else "gone"),
                }
                _assert_same(step, action, outcomes)
                closed_ids.add(replica.router_sid)
                performed += 1
                continue
            if action == "render":
                _assert_same(step, action, _renders(replica, server, router))
                performed += 1
                continue
            # Approx runs mix error targets, including one tight enough
            # to force the escalate-to-exact path through every backend.
            ap = True if approx else None
            et = float(rng.choice([0.5, 0.25, 1e-9])) if approx else None
            if action == "expand":
                k = None if rng.random() < 0.5 else int(rng.integers(2, 4))
                outcomes = {
                    "standalone": _outcome(
                        lambda: replica.standalone.expand(rule, k=k, approx=ap, error_target=et)
                    ),
                    "server": _outcome(
                        lambda: server.expand(
                            replica.server_sid, rule, k=k, approx=ap, error_target=et
                        )
                    ),
                    "router": _outcome(
                        lambda: router.expand(
                            replica.router_sid, rule, k=k, approx=ap, error_target=et
                        )
                    ),
                }
            elif action == "star":
                outcomes = {
                    "standalone": _outcome(
                        lambda: replica.standalone.expand_star(
                            rule, column, approx=ap, error_target=et
                        )
                    ),
                    "server": _outcome(
                        lambda: server.expand_star(
                            replica.server_sid, rule, column, approx=ap, error_target=et
                        )
                    ),
                    "router": _outcome(
                        lambda: router.expand_star(
                            replica.router_sid, rule, column, approx=ap, error_target=et
                        )
                    ),
                }
            elif action == "traditional":
                outcomes = {
                    "standalone": _outcome(
                        lambda: replica.standalone.expand_traditional(
                            rule, column, k=3, approx=ap, error_target=et
                        )
                    ),
                    "server": _outcome(
                        lambda: server.expand_traditional(
                            replica.server_sid, rule, column, k=3, approx=ap, error_target=et
                        )
                    ),
                    "router": _outcome(
                        lambda: router.expand_traditional(
                            replica.router_sid, rule, column, k=3, approx=ap, error_target=et
                        )
                    ),
                }
            else:  # collapse
                outcomes = {
                    "standalone": _outcome(lambda: replica.standalone.collapse(rule)),
                    "server": _outcome(lambda: server.collapse(replica.server_sid, rule)),
                    "router": _outcome(lambda: router.collapse(replica.router_sid, rule)),
                }
            _assert_same(step, action, outcomes)
            # After every mutating step the acting session must render
            # identically everywhere — the tightest possible invariant.
            _assert_same(step, f"render-after-{action}", _renders(replica, server, router))
            performed += 1

        # Endgame: every still-live session agrees in full, and every
        # closed id is equally dead on both serving stacks.
        for replica in live:
            _assert_same(steps, "final-render", _renders(replica, server, router))
        for sid in closed_ids:
            assert router.close_session(sid) is False
    return performed


class TestMultiTenantReplayParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_replay_is_bit_identical_across_backends(self, seed, n_shards):
        performed = run_replay(seed, n_shards)
        assert performed >= 15  # the transcript really exercised the tiers

    def test_replay_touches_every_op_kind(self):
        """One long deterministic run covering all actions (sanity that
        the generator's distribution does not silently degenerate)."""
        performed = run_replay(7, 2, steps=60)
        assert performed >= 40

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_replay_unchanged_by_registration_time_sampling(self, seed, n_shards):
        """Registering tables under a ``sample_budget`` must not perturb
        exact serving: the standalone replica has *no* samples at all,
        yet every exact expansion/render still matches the sampled
        tiers byte for byte — sampling is pay-only-when-asked."""
        performed = run_replay(seed, n_shards, sample_budget=32)
        assert performed >= 15

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_approx_replay_is_bit_identical_across_backends(self, seed, n_shards):
        """Seeded approximate transcripts — estimates, confidence
        metadata, and escalations included in every outcome tuple —
        agree exactly across standalone/one-process/N-shard backends.
        The shard workers rebuild samples from wire-decoded tables, so
        this pins that decode produces bit-identical draws."""
        performed = run_replay(seed, n_shards, sample_budget=32, approx=True)
        assert performed >= 15

    @pytest.mark.cache
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("enabled", [True, False])
    def test_replay_parity_with_and_without_marginal_cache(self, enabled, n_shards):
        """The marginal-cache dimension: the standalone replica never
        has a first-pick cache, so every step's equality against the
        serving tiers (which rebuild identical caches per shard from
        wire-decoded tables when enabled) is a byte-level proof that
        cached first picks change latency, never transcripts.  The
        mw mix (3.0 vs the cache's 5.0) exercises hit and strict-miss
        paths in one run."""
        performed = run_replay(4, n_shards, marginal_cache=enabled)
        assert performed >= 15

    @pytest.mark.cache
    def test_replay_parity_with_level2_pair_cache(self):
        """Same transcript invariant with the bounded level-2 pair
        cache switched on in both serving tiers."""
        performed = run_replay(5, 2, steps=40, marginal_pairs=8)
        assert performed >= 25

    @pytest.mark.versioning
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_replay_with_interleaved_appends(self, seed, n_shards):
        """The append/version dimension: randomly interleaved
        ``append_rows`` ops must leave every pre-append (pinned)
        session's transcript untouched and every post-append session
        byte-equal to a standalone session over the appended table —
        across the one-process server and 1/2/4-shard routers, i.e.
        across incremental export growth, delta-maintained first-pick
        marginals, and the shard wire protocol's append op."""
        performed = run_replay(seed, n_shards, steps=40, append_prob=0.15)
        assert performed >= 25

    @pytest.mark.versioning
    def test_append_replay_unchanged_by_registration_time_sampling(self):
        """Appends under a ``sample_budget``: the serving tiers lazily
        rebuild each table's sample set after an append, and exact
        transcripts must still match a standalone replica that has no
        samples at all."""
        performed = run_replay(2, 2, steps=40, append_prob=0.15, sample_budget=32)
        assert performed >= 25

    @pytest.mark.versioning
    @pytest.mark.cache
    def test_append_replay_parity_without_marginal_cache(self):
        """Appends with the first-pick cache disabled: parity must not
        depend on the delta-maintenance path existing at all."""
        performed = run_replay(6, 2, steps=40, append_prob=0.2, marginal_cache=False)
        assert performed >= 25

    def test_replay_with_deadlines_enabled_is_still_bit_identical(self):
        """The deadline machinery must be pure overhead on the happy
        path: with a generous ``default_deadline`` threaded through
        every op on both serving stacks (lock-acquire bounds, pipe
        poll, scheduler queue entry), no request times out and every
        response stays byte-equal to the standalone session."""
        performed = run_replay(3, 2, steps=40, default_deadline=30.0)
        assert performed >= 25
