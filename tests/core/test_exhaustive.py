"""Tests for the brute-force ground-truth solvers."""

from __future__ import annotations

import pytest

from repro.core import (
    Rule,
    STAR,
    SizeWeight,
    count,
    enumerate_supported_rules,
    optimal_rule_set,
    score_set,
)
from repro.table import Table


class TestEnumerateSupportedRules:
    def test_every_rule_has_support(self, tiny_table):
        for rule in enumerate_supported_rules(tiny_table):
            assert count(rule, tiny_table) > 0

    def test_exact_count_small_table(self):
        # 2 distinct tuples over 2 columns: per tuple 3 projections
        # (sizes 1..2), minus shared singletons.
        table = Table.from_rows(["A", "B"], [("a", "x"), ("a", "y")])
        rules = enumerate_supported_rules(table)
        expected = {
            Rule(["a", STAR]),
            Rule([STAR, "x"]),
            Rule([STAR, "y"]),
            Rule(["a", "x"]),
            Rule(["a", "y"]),
        }
        assert set(rules) == expected

    def test_max_size_filter(self, tiny_table):
        rules = enumerate_supported_rules(tiny_table, max_size=1)
        assert all(r.size == 1 for r in rules)
        # 2 + 3 + 3 distinct values.
        assert len(rules) == 8

    def test_include_trivial(self, tiny_table):
        rules = enumerate_supported_rules(tiny_table, max_size=1, include_trivial=True)
        assert Rule.trivial(3) in rules

    def test_deterministic_order(self, tiny_table):
        a = enumerate_supported_rules(tiny_table)
        b = enumerate_supported_rules(tiny_table)
        assert a == b
        sizes = [r.size for r in a]
        assert sizes == sorted(sizes)

    def test_skips_numeric_columns(self, measure_table):
        rules = enumerate_supported_rules(measure_table)
        sales_idx = measure_table.schema.index_of("Sales")
        assert all(r.is_star(sales_idx) for r in rules)


class TestOptimalRuleSet:
    def test_beats_or_ties_any_candidate_set(self, tiny_table):
        wf = SizeWeight()
        optimal = optimal_rule_set(tiny_table, wf, 2)
        pool = enumerate_supported_rules(tiny_table)
        import itertools

        for combo in itertools.combinations(pool, 2):
            assert optimal.score >= score_set(combo, tiny_table, wf) - 1e-9

    def test_rules_sorted_by_weight(self, tiny_table):
        optimal = optimal_rule_set(tiny_table, SizeWeight(), 3)
        wf = SizeWeight()
        weights = [wf.weight(r) for r in optimal.rules]
        assert weights == sorted(weights, reverse=True)

    def test_k_larger_never_worse(self, tiny_table):
        wf = SizeWeight()
        s2 = optimal_rule_set(tiny_table, wf, 2).score
        s3 = optimal_rule_set(tiny_table, wf, 3).score
        assert s3 >= s2

    def test_empty_table(self):
        table = Table.from_rows(["A"], [])
        optimal = optimal_rule_set(table, SizeWeight(), 2)
        assert optimal.rules == ()
        assert optimal.score == 0.0

    def test_explicit_candidates(self, tiny_table):
        wf = SizeWeight()
        pool = [Rule(["a", STAR, STAR]), Rule(["b", STAR, STAR])]
        optimal = optimal_rule_set(tiny_table, wf, 2, candidates=pool)
        assert set(optimal.rules) == set(pool)
        assert optimal.score == 8.0
