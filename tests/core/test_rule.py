"""Unit and property tests for the rule model (paper §2.1 semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rule, STAR, Wildcard, cover_mask, count
from repro.errors import RuleError
from repro.table import Interval, Schema, Table


class TestWildcard:
    def test_singleton(self):
        assert Wildcard() is STAR
        assert Wildcard() is Wildcard()

    def test_repr(self):
        assert repr(STAR) == "?"


class TestRuleBasics:
    def test_trivial_rule(self):
        rule = Rule.trivial(3)
        assert rule.size == 0
        assert rule.is_trivial
        assert len(rule) == 3
        assert all(rule.is_star(i) for i in range(3))

    def test_size_counts_non_stars(self):
        assert Rule(["a", STAR, "c"]).size == 2
        assert Rule(["a", "b", "c"]).size == 3

    def test_from_items(self):
        rule = Rule.from_items(4, {1: "b", 3: "d"})
        assert rule.values == (STAR, "b", STAR, "d")
        assert rule.instantiated_indexes == (1, 3)
        assert rule.star_indexes == (0, 2)

    def test_from_items_out_of_range(self):
        with pytest.raises(RuleError):
            Rule.from_items(2, {5: "x"})

    def test_from_named(self, tiny_table):
        rule = Rule.from_named(tiny_table, B="x")
        assert rule.values == (STAR, "x", STAR)

    def test_unhashable_value_rejected(self):
        with pytest.raises(RuleError):
            Rule([["list"], STAR])

    def test_equality_and_hash(self):
        assert Rule(["a", STAR]) == Rule(["a", STAR])
        assert hash(Rule(["a", STAR])) == hash(Rule(["a", STAR]))
        assert Rule(["a", STAR]) != Rule([STAR, "a"])

    def test_str_uses_question_marks(self):
        assert str(Rule(["a", STAR, "c"])) == "(a, ?, c)"

    def test_items_iterates_instantiated(self):
        assert list(Rule([STAR, "b", "c"]).items()) == [(1, "b"), (2, "c")]

    def test_with_value_and_star_roundtrip(self):
        rule = Rule.trivial(3).with_value(1, "b")
        assert rule.values == (STAR, "b", STAR)
        assert rule.with_star(1) == Rule.trivial(3)

    def test_with_value_out_of_range(self):
        with pytest.raises(RuleError):
            Rule.trivial(2).with_value(2, "x")


class TestSubsumption:
    def test_trivial_is_subrule_of_everything(self):
        trivial = Rule.trivial(3)
        assert trivial.is_subrule_of(Rule(["a", "b", "c"]))
        assert trivial.is_subrule_of(trivial)

    def test_paper_example(self):
        # "rule (a, ?) is a sub-rule of (a, b)"
        assert Rule(["a", STAR]).is_subrule_of(Rule(["a", "b"]))
        assert not Rule(["a", "b"]).is_subrule_of(Rule(["a", STAR]))

    def test_conflicting_values_not_subrule(self):
        assert not Rule(["a", STAR]).is_subrule_of(Rule(["b", "c"]))

    def test_strict_subrule_excludes_equal(self):
        rule = Rule(["a", STAR])
        assert not rule.is_strict_subrule_of(rule)
        assert Rule([STAR, STAR]).is_strict_subrule_of(rule)

    def test_superrule_is_inverse(self):
        sub, sup = Rule(["a", STAR]), Rule(["a", "b"])
        assert sup.is_superrule_of(sub)
        assert not sub.is_superrule_of(sup)

    def test_arity_mismatch_raises(self):
        with pytest.raises(RuleError):
            Rule(["a"]).is_subrule_of(Rule(["a", "b"]))

    def test_merge_compatible(self):
        merged = Rule(["a", STAR, STAR]).merge(Rule([STAR, "b", STAR]))
        assert merged == Rule(["a", "b", STAR])

    def test_merge_conflict_is_none(self):
        assert Rule(["a", STAR]).merge(Rule(["b", STAR])) is None

    def test_merge_is_least_upper_bound(self):
        r1, r2 = Rule(["a", STAR, "c"]), Rule(["a", "b", STAR])
        merged = r1.merge(r2)
        assert r1.is_subrule_of(merged) and r2.is_subrule_of(merged)


class TestCoverage:
    def test_covers_row(self):
        rule = Rule(["a", STAR, "p"])
        assert rule.covers_row(("a", "x", "p"))
        assert not rule.covers_row(("a", "x", "q"))
        assert not rule.covers_row(("b", "x", "p"))

    def test_covers_row_arity_mismatch(self):
        with pytest.raises(RuleError):
            Rule(["a"]).covers_row(("a", "b"))

    def test_cover_mask_matches_row_loop(self, tiny_table):
        rule = Rule(["a", "x", STAR])
        mask = cover_mask(rule, tiny_table)
        expected = [rule.covers_row(row) for row in tiny_table.rows()]
        assert mask.tolist() == expected

    def test_count_on_tiny_table(self, tiny_table):
        assert count(Rule(["a", STAR, STAR]), tiny_table) == 5
        assert count(Rule([STAR, "x", STAR]), tiny_table) == 4
        assert count(Rule(["a", "x", STAR]), tiny_table) == 3
        assert count(Rule(["a", "x", "p"]), tiny_table) == 2
        assert count(Rule.trivial(3), tiny_table) == 8

    def test_unknown_value_covers_nothing(self, tiny_table):
        assert count(Rule(["zzz", STAR, STAR]), tiny_table) == 0

    def test_cover_mask_arity_mismatch(self, tiny_table):
        with pytest.raises(RuleError):
            cover_mask(Rule(["a"]), tiny_table)

    def test_interval_rule_on_numeric_column(self):
        table = Table.from_dict({"name": ["a", "b", "c"], "age": [10.0, 25.0, 40.0]})
        rule = Rule([STAR, Interval(20.0, 30.0)])
        assert cover_mask(rule, table).tolist() == [False, True, False]

    def test_scalar_rule_on_numeric_column(self):
        table = Table.from_dict({"name": ["a", "b"], "age": [10.0, 25.0]})
        rule = Rule([STAR, 25.0])
        assert cover_mask(rule, table).tolist() == [False, True]

    def test_interval_covers_row_semantics(self):
        rule = Rule([Interval(0.0, 10.0)])
        assert rule.covers_row((5.0,))
        assert not rule.covers_row((10.0,))  # half-open
        closed = Rule([Interval(0.0, 10.0, closed_right=True)])
        assert closed.covers_row((10.0,))


# -- hypothesis strategies ----------------------------------------------------

_values = st.sampled_from(["a", "b", "c"])
_cells = st.one_of(st.just(STAR), _values)


def _rules(n_columns: int = 4):
    return st.lists(_cells, min_size=n_columns, max_size=n_columns).map(Rule)


@st.composite
def _rule_pairs_sub_super(draw):
    """Generate (sub, super) pairs by starring out columns of super."""
    sup = draw(_rules())
    starred = draw(st.sets(st.integers(0, 3)))
    sub = sup
    for i in starred:
        sub = sub.with_star(i)
    return sub, sup


class TestRuleProperties:
    @given(_rule_pairs_sub_super())
    def test_starring_yields_subrule(self, pair):
        sub, sup = pair
        assert sub.is_subrule_of(sup)

    @given(_rules(), _rules())
    def test_subrule_antisymmetry(self, r1, r2):
        if r1.is_subrule_of(r2) and r2.is_subrule_of(r1):
            assert r1 == r2

    @given(_rules(), _rules(), _rules())
    def test_subrule_transitivity(self, r1, r2, r3):
        if r1.is_subrule_of(r2) and r2.is_subrule_of(r3):
            assert r1.is_subrule_of(r3)

    @given(_rules(), st.lists(_values, min_size=4, max_size=4))
    def test_subrule_covers_superset(self, rule, row):
        """t ∈ r2 and r1 ⊑ r2 imply t ∈ r1 (paper §2.1)."""
        row = tuple(row)
        for i in range(4):
            sub = rule.with_star(i)
            if rule.covers_row(row):
                assert sub.covers_row(row)

    @given(_rules(), _rules())
    def test_merge_symmetric(self, r1, r2):
        assert r1.merge(r2) == r2.merge(r1)

    @given(_rules(), _rules())
    def test_merge_covers_intersection(self, r1, r2):
        merged = r1.merge(r2)
        rows = [("a", "a", "a", "a"), ("a", "b", "c", "a"), ("b", "b", "b", "b")]
        for row in rows:
            both = r1.covers_row(row) and r2.covers_row(row)
            if merged is None:
                assert not both
            else:
                assert merged.covers_row(row) == both
