"""Differential equivalence & invalidation suite for the first-pick cache.

The cache's contract is *bit-identity*: a search served cached level-1
(or level-2) marginals must return exactly — not approximately — the
rule lists the cold scan returns, across both engines, every weighting
in the fast family, near-tie tables, and mw edge values.  The lifecycle
half pins strict ``(table fingerprint, weighting, mw)`` keying: a
changed table, a corrupt file, or a mismatched parameter must rebuild,
never serve stale marginals.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    BitsWeight,
    CallableWeight,
    Rule,
    STAR,
    SizeMinusOneWeight,
    SizeWeight,
    brs,
    find_best_marginal_rule,
    top_weights,
)
from repro.core.first_pick import FirstPickCache, build_first_pick_cache
from repro.serving.catalog import TableCatalog
from repro.serving.marginals import (
    load_first_pick,
    save_first_pick,
    table_fingerprint,
)
from repro.session import DrillDownSession
from repro.table import Schema, Table
from tests.conftest import random_table

WEIGHTINGS = {
    "size": SizeWeight,
    "bits": None,  # built per-table below
    "size_minus_one": SizeMinusOneWeight,
}


def make_weight(name: str, table: Table):
    if name == "bits":
        return BitsWeight.for_table(table)
    return WEIGHTINGS[name]()


def picks_of(result):
    """The greedy selection as plain tuples for exact comparison."""
    return [(p.rule, p.weight, p.count, p.marginal) for p in result.picks]


def near_tie_table() -> Table:
    """Columns B and C are exact copies of A: every level-1 marginal
    ties exactly, so any tie-break drift between the cached heap-build
    and the cold scan shows up as a different rule list."""
    rows = [("a", "a", "a")] * 4 + [("b", "b", "b")] * 3 + [("c", "c", "c")] * 2
    return Table.from_rows(Schema.categorical(["A", "B", "C"]), rows)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("weighting", ["size", "bits", "size_minus_one"])
    @pytest.mark.parametrize("mw", [0.5, 3.0, 100.0])
    @pytest.mark.parametrize("engine", ["incremental", "scratch"])
    def test_brs_bit_identical(self, seed, weighting, mw, engine):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=40, n_columns=4, domain=4)
        wf = make_weight(weighting, table)
        cache = build_first_pick_cache(table, wf, mw)
        assert cache is not None
        cold = brs(table, wf, 3, mw, engine=engine)
        warm = brs(table, wf, 3, mw, engine=engine, first_pick=cache)
        assert picks_of(warm) == picks_of(cold)
        assert warm.rule_list.rules == cold.rule_list.rules
        assert cache.hits >= 1

    @pytest.mark.parametrize("engine", ["incremental", "scratch"])
    def test_exact_ties_break_identically(self, engine):
        table = near_tie_table()
        wf = SizeWeight()
        cache = build_first_pick_cache(table, wf, 3.0)
        cold = brs(table, wf, 4, 3.0, engine=engine)
        warm = brs(table, wf, 4, 3.0, engine=engine, first_pick=cache)
        assert picks_of(warm) == picks_of(cold)

    def test_first_pick_search_parity_and_hit(self, tiny_table):
        wf = SizeWeight()
        cache = build_first_pick_cache(tiny_table, wf, 3.0)
        top = np.zeros(tiny_table.n_rows)
        cold = find_best_marginal_rule(tiny_table, wf, top, 3.0)
        warm = find_best_marginal_rule(tiny_table, wf, top, 3.0, first_pick=cache)
        assert (warm.rule, warm.weight, warm.count, warm.marginal) == (
            cold.rule, cold.weight, cold.count, cold.marginal
        )
        assert cache.hits == 1 and cache.misses == 0

    def test_nonzero_top_bypasses_cache(self, tiny_table):
        wf = SizeWeight()
        cache = build_first_pick_cache(tiny_table, wf, 3.0)
        top = top_weights([Rule(["a", "x", STAR])], tiny_table, wf)
        cold = find_best_marginal_rule(tiny_table, wf, top, 3.0)
        warm = find_best_marginal_rule(tiny_table, wf, top, 3.0, first_pick=cache)
        assert (warm.rule, warm.marginal) == (cold.rule, cold.marginal)
        assert cache.hits == 0 and cache.misses >= 1

    def test_explicit_all_ones_measures_still_hit(self, tiny_table):
        # tuple_measures(table, None) materialises np.ones, so the
        # serving path always passes an explicit measures array; the
        # cache must accept it (identical kernel inputs) or it would
        # never fire in production.
        wf = SizeWeight()
        cache = build_first_pick_cache(tiny_table, wf, 3.0)
        ones = np.ones(tiny_table.n_rows)
        top = np.zeros(tiny_table.n_rows)
        warm = find_best_marginal_rule(
            tiny_table, wf, top, 3.0, measures=ones, first_pick=cache
        )
        cold = find_best_marginal_rule(tiny_table, wf, top, 3.0)
        assert (warm.rule, warm.marginal) == (cold.rule, cold.marginal)
        assert cache.hits == 1

    def test_real_measures_bypass_cache(self, measure_table):
        from repro.core import tuple_measures

        wf = SizeWeight()
        cache = build_first_pick_cache(measure_table, wf, 3.0)
        measures = tuple_measures(measure_table, "Sales")
        top = np.zeros(measure_table.n_rows)
        cold = find_best_marginal_rule(measure_table, wf, top, 3.0, measures=measures)
        warm = find_best_marginal_rule(
            measure_table, wf, top, 3.0, measures=measures, first_pick=cache
        )
        assert (warm.rule, warm.marginal) == (cold.rule, cold.marginal)
        assert cache.hits == 0 and cache.misses >= 1

    def test_mismatched_mw_bypasses_cache(self, tiny_table):
        wf = SizeWeight()
        cache = build_first_pick_cache(tiny_table, wf, 3.0)
        top = np.zeros(tiny_table.n_rows)
        warm = find_best_marginal_rule(tiny_table, wf, top, 2.0, first_pick=cache)
        cold = find_best_marginal_rule(tiny_table, wf, top, 2.0)
        assert (warm.rule, warm.marginal) == (cold.rule, cold.marginal)
        assert cache.hits == 0 and cache.misses >= 1

    def test_foreign_wf_instance_bypasses_cache(self, tiny_table):
        cache = build_first_pick_cache(tiny_table, SizeWeight(), 3.0)
        assert not cache.matches(tiny_table, SizeWeight(), 3.0)

    def test_slow_path_weighting_builds_nothing(self, tiny_table):
        wf = CallableWeight(lambda rule: float(rule.size()))
        assert build_first_pick_cache(tiny_table, wf, 3.0) is None

    def test_no_categoricals_builds_nothing(self):
        table = Table.from_dict({"x": [1.0, 2.0, 3.0]})
        assert build_first_pick_cache(table, SizeWeight(), 3.0) is None


class TestLevel2Pairs:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_pair_cache_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=60, n_columns=4, domain=3)
        wf = SizeWeight()
        cache = build_first_pick_cache(table, wf, 4.0, pair_limit=16, pair_threshold=1)
        cold = brs(table, wf, 5, 4.0, engine="incremental")
        warm = brs(table, wf, 5, 4.0, engine="incremental", first_pick=cache)
        assert picks_of(warm) == picks_of(cold)
        assert cache.pairs_built > 0

    def test_pair_limit_zero_never_builds(self, tiny_table):
        cache = build_first_pick_cache(tiny_table, SizeWeight(), 3.0)
        cache.note_pair(0, 1)
        cache.note_pair(0, 1)
        assert cache.pairs_built == 0 and cache.describe()["pairs"] == 0

    def test_pair_threshold_gates_build(self, tiny_table):
        cache = build_first_pick_cache(
            tiny_table, SizeWeight(), 3.0, pair_limit=4, pair_threshold=2
        )
        cache.note_pair(0, 1)
        assert cache.pairs_built == 0
        cache.note_pair(0, 1)
        assert cache.pairs_built == 1


class TestSessionEquivalence:
    def transcript(self, table, wf, cache):
        out = []
        for op in ("expand", "star", "traditional"):
            session = DrillDownSession(table, wf=wf, k=3, mw=4.0, marginals=cache)
            try:
                root = session.root.rule
                if op == "expand":
                    children = [c.rule for c in session.expand(root)]
                    out.append(children)
                    if children:
                        # Drill one level deeper so a warmed (top != 0)
                        # search runs with the cache attached but not
                        # consumed.
                        out.append([c.rule for c in session.expand(children[0])])
                elif op == "star":
                    out.append([c.rule for c in session.expand_star(root, 0)])
                else:
                    out.append(
                        [c.rule for c in session.expand_traditional(root, 1)]
                    )
            finally:
                session.close()
        return out

    @pytest.mark.parametrize("seed", [0, 3])
    def test_expansions_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=50, n_columns=4, domain=3)
        wf = SizeWeight()
        cache = build_first_pick_cache(table, wf, 4.0)
        assert self.transcript(table, wf, cache) == self.transcript(table, wf, None)
        assert cache.hits >= 1


class TestPersistenceRoundTrip:
    def test_save_load_bit_identical(self, tiny_table, tmp_path):
        wf = SizeWeight()
        built = build_first_pick_cache(tiny_table, wf, 3.0)
        fp = table_fingerprint(tiny_table)
        path = tmp_path / "t.size.marginals.json"
        save_first_pick(built, path, fingerprint=fp, weighting="size")
        loaded = load_first_pick(
            path, tiny_table, wf, 3.0, fingerprint=fp, weighting="size"
        )
        assert loaded is not None
        for a, b in zip(built.entries, loaded.entries):
            assert a[0] == b[0]
            for x, y in zip(a[1:], b[1:]):
                assert np.array_equal(x, y)
        cold = brs(tiny_table, wf, 3, 3.0)
        warm = brs(tiny_table, wf, 3, 3.0, first_pick=loaded)
        assert picks_of(warm) == picks_of(cold)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mw": 4.0},
            {"fingerprint": "not-the-fingerprint"},
            {"weighting": "bits"},
        ],
    )
    def test_mismatch_rejected(self, tiny_table, tmp_path, kwargs):
        wf = SizeWeight()
        built = build_first_pick_cache(tiny_table, wf, 3.0)
        fp = table_fingerprint(tiny_table)
        path = tmp_path / "t.size.marginals.json"
        save_first_pick(built, path, fingerprint=fp, weighting="size")
        load_kwargs = dict(fingerprint=fp, weighting="size")
        mw = kwargs.pop("mw", 3.0)
        load_kwargs.update(kwargs)
        assert load_first_pick(path, tiny_table, wf, mw, **load_kwargs) is None

    def test_corrupt_file_returns_none(self, tiny_table, tmp_path):
        path = tmp_path / "t.size.marginals.json"
        path.write_text("{not json", encoding="utf-8")
        assert (
            load_first_pick(
                path, tiny_table, SizeWeight(), 3.0,
                fingerprint=table_fingerprint(tiny_table), weighting="size",
            )
            is None
        )

    def test_out_of_range_codes_rejected(self, tiny_table, tmp_path):
        wf = SizeWeight()
        built = build_first_pick_cache(tiny_table, wf, 3.0)
        fp = table_fingerprint(tiny_table)
        path = tmp_path / "t.size.marginals.json"
        save_first_pick(built, path, fingerprint=fp, weighting="size")
        payload = json.loads(path.read_text())
        payload["entries"][0]["supported"] = [99] * len(
            payload["entries"][0]["supported"]
        )
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert (
            load_first_pick(path, tiny_table, wf, 3.0, fingerprint=fp, weighting="size")
            is None
        )

    def test_missing_file_returns_none(self, tiny_table, tmp_path):
        assert (
            load_first_pick(
                tmp_path / "absent.json", tiny_table, SizeWeight(), 3.0,
                fingerprint="x", weighting="size",
            )
            is None
        )

    def test_interrupted_save_leaves_no_litter(self, tiny_table, tmp_path, monkeypatch):
        import os as os_module

        wf = SizeWeight()
        built = build_first_pick_cache(tiny_table, wf, 3.0)
        path = tmp_path / "t.size.marginals.json"

        def boom(*args, **kwargs):
            raise OSError("disk detached")

        monkeypatch.setattr(os_module, "replace", boom)
        with pytest.raises(OSError):
            save_first_pick(built, path, fingerprint="fp", weighting="size")
        # The failed publish removed its temp file and the final path
        # never appeared — readers can't observe a half-written cache.
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_fingerprint_tracks_content_not_name(self, tiny_table):
        rows = [("a", "x", "p")] * tiny_table.n_rows
        same_shape = Table.from_rows(Schema.categorical(["A", "B", "C"]), rows)
        assert table_fingerprint(tiny_table) != table_fingerprint(same_shape)
        clone = Table.from_rows(
            Schema.categorical(["A", "B", "C"]),
            [tuple(tiny_table.row(i)) for i in range(tiny_table.n_rows)],
        )
        assert table_fingerprint(tiny_table) == table_fingerprint(clone)


class TestCatalogLifecycle:
    def make_table(self, seed=0):
        rng = np.random.default_rng(seed)
        return random_table(rng, n_rows=40, n_columns=3, domain=3)

    def test_register_builds_and_serves(self, tmp_path):
        table = self.make_table()
        catalog = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        try:
            registered = catalog.register("t", table)
            cache = catalog.marginals_for("t", "size", 3.0)
            assert cache is not None and cache.table is registered
            assert cache.wf is catalog.weight("size", registered)
            stats = catalog.marginal_stats()
            assert stats["built"] == 1 and stats["loaded"] == 0
            assert "size" in stats["tables"]["t"]
        finally:
            catalog.close()

    def test_strict_keying(self, tmp_path):
        catalog = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        try:
            catalog.register("t", self.make_table())
            assert catalog.marginals_for("t", "size", 3.0) is not None
            assert catalog.marginals_for("t", "size", 2.0) is None
            assert catalog.marginals_for("t", "bits", 3.0) is None
            assert catalog.marginals_for("absent", "size", 3.0) is None
            # mw=None defers validation to the search's own matches().
            assert catalog.marginals_for("t", "size", None) is not None
        finally:
            catalog.close()

    def test_warm_restart_loads_identical_arrays(self, tmp_path):
        table = self.make_table()
        first = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        first.register("t", table)
        built = first.marginals_for("t", "size", 3.0)
        first.close()

        second = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        try:
            registered = second.register("t", self.make_table())
            stats = second.marginal_stats()
            assert stats["loaded"] == 1 and stats["built"] == 0
            loaded = second.marginals_for("t", "size", 3.0)
            for a, b in zip(built.entries, loaded.entries):
                assert a[0] == b[0]
                for x, y in zip(a[1:], b[1:]):
                    assert np.array_equal(x, y)
            wf = second.weight("size", registered)
            cold = brs(registered, wf, 3, 3.0)
            warm = brs(registered, wf, 3, 3.0, first_pick=loaded)
            assert picks_of(warm) == picks_of(cold)
        finally:
            second.close()

    def test_changed_table_rejects_stale_file(self, tmp_path):
        first = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        first.register("t", self.make_table(seed=0))
        first.close()

        changed = self.make_table(seed=99)
        second = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        try:
            registered = second.register("t", changed)
            stats = second.marginal_stats()
            # The stale file's fingerprint disagrees: rejected, rebuilt.
            assert stats["rejected"] == 1 and stats["built"] == 1
            cache = second.marginals_for("t", "size", 3.0)
            assert cache is not None and cache.table is registered
        finally:
            second.close()

    def test_reregister_same_name_serves_new_table(self, tmp_path):
        catalog = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        try:
            catalog.register("t", self.make_table(seed=0))
            old = catalog.marginals_for("t", "size", 3.0)
            # Served tables are immutable under a name: replacing the
            # data goes through unregister + register.
            catalog.unregister("t")
            assert catalog.marginals_for("t", "size", 3.0) is None
            replacement = catalog.register("t", self.make_table(seed=5))
            fresh = catalog.marginals_for("t", "size", 3.0)
            assert fresh is not old and fresh.table is replacement
            # The old cache can no longer validate against the new table.
            wf = catalog.weight("size", replacement)
            assert not old.matches(replacement, wf, 3.0)
        finally:
            catalog.close()

    def test_corrupt_file_counted_and_rebuilt(self, tmp_path):
        first = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        first.register("t", self.make_table())
        first.close()
        for path in tmp_path.glob("*.marginals.json"):
            path.write_text("garbage", encoding="utf-8")

        second = TableCatalog(marginal_mw=3.0, marginal_dir=tmp_path)
        try:
            second.register("t", self.make_table())
            stats = second.marginal_stats()
            assert stats["rejected"] == 1 and stats["built"] == 1
            assert second.marginals_for("t", "size", 3.0) is not None
        finally:
            second.close()

    def test_tmp_litter_swept_at_construction(self, tmp_path):
        # Regression: SIGKILL mid-save leaves "<file>.tmp" in the
        # marginals directory; before the sweep covered it, the litter
        # accumulated forever.
        marginal_dir = tmp_path / "marginals"
        sample_dir = tmp_path / "samples"
        marginal_dir.mkdir()
        sample_dir.mkdir()
        (marginal_dir / "t.size.marginals.json.tmp").write_text("partial")
        (sample_dir / "t.samples.json.tmp").write_text("partial")
        catalog = TableCatalog(
            marginal_mw=3.0, marginal_dir=marginal_dir,
            sample_budget=100, sample_dir=sample_dir,
        )
        try:
            assert catalog.cleaned_tmp == 2
            assert list(marginal_dir.glob("*.tmp")) == []
            assert list(sample_dir.glob("*.tmp")) == []
        finally:
            catalog.close()

    def test_unregister_drops_cache(self, tmp_path):
        catalog = TableCatalog(marginal_mw=3.0)
        try:
            catalog.register("t", self.make_table())
            assert catalog.marginals_for("t", "size", 3.0) is not None
            catalog.unregister("t")
            assert catalog.marginals_for("t", "size", 3.0) is None
        finally:
            catalog.close()

    def test_disabled_by_default(self):
        catalog = TableCatalog()
        try:
            catalog.register("t", self.make_table())
            assert catalog.marginals_for("t", "size", 3.0) is None
            assert catalog.marginal_stats()["mw"] is None
        finally:
            catalog.close()

    def test_memory_only_when_no_dir(self):
        catalog = TableCatalog(marginal_mw=3.0)
        try:
            catalog.register("t", self.make_table())
            assert catalog.marginals_for("t", "size", 3.0) is not None
            assert catalog.marginal_stats()["built"] == 1
        finally:
            catalog.close()


class TestServerIntegration:
    def test_first_expand_hits_and_stats(self, tmp_path):
        from repro.serving import DrillDownServer

        rng = np.random.default_rng(1)
        table = random_table(rng, n_rows=60, n_columns=4, domain=3)
        with DrillDownServer(marginal_mw=4.0) as server:
            server.register_table("t", table)
            sid = server.create_session("t", k=3, mw=4.0)
            server.expand(sid)
            stats = server.stats()["marginals"]
            assert stats["mw"] == 4.0
            counters = stats["tables"]["t"]["size"]
            assert counters["hits"] >= 1

    def test_cache_off_matches_cache_on(self):
        from repro.serving import DrillDownServer

        rng = np.random.default_rng(2)
        table = random_table(rng, n_rows=60, n_columns=4, domain=3)
        transcripts = []
        for enabled in (True, False):
            with DrillDownServer(marginal_cache=enabled, marginal_mw=4.0) as server:
                server.register_table("t", table)
                sid = server.create_session("t", k=3, mw=4.0)
                transcripts.append(server.render(sid))
        assert transcripts[0] == transcripts[1]
