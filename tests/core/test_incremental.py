"""Equivalence tests: the incremental engine ≡ the from-scratch greedy.

The cached/CELF engine (:mod:`repro.core.search_cache`) must return
*byte-identical* rule lists, weights, counts, and marginals to a cold
:func:`find_best_marginal_rule` per pick, across weight functions,
Sum vs Count measures, pruning on/off, and rule-size caps — plus reuse
the cache correctly across runs, drill-downs, and sessions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BitsWeight,
    MergedWeight,
    Rule,
    STAR,
    SearchContext,
    SizeMinusOneWeight,
    SizeWeight,
    StarConstrainedWeight,
    brs,
    brs_iter,
    find_best_marginal_rule,
    rule_drilldown,
    star_drilldown,
    tuple_measures,
)
from repro.core.marginal import SearchStats
from repro.errors import EngineError, RuleError
from repro.session import DrillDownSession
from tests.conftest import random_table


def _weighting(name: str, table):
    if name == "size":
        return SizeWeight()
    if name == "bits":
        return BitsWeight.for_table(table)
    if name == "size_minus_one":
        return SizeMinusOneWeight()
    if name == "merged":
        return MergedWeight(SizeWeight(), Rule.from_items(table.n_columns, {0: "v0"}))
    if name == "star":
        return StarConstrainedWeight(SizeWeight(), min(1, table.n_columns - 1))
    raise AssertionError(name)


def _assert_identical(a, b):
    """Byte-identical pick sequences: rules, weights, counts, marginals."""
    assert [p.rule for p in a.picks] == [p.rule for p in b.picks]
    assert [p.weight for p in a.picks] == [p.weight for p in b.picks]
    assert [p.count for p in a.picks] == [p.count for p in b.picks]
    assert [p.marginal for p in a.picks] == [p.marginal for p in b.picks]
    assert a.rules == b.rules
    assert a.score == b.score
    for ea, eb in zip(a.rule_list.entries, b.rule_list.entries):
        assert (ea.rule, ea.weight, ea.count, ea.mcount) == (
            eb.rule,
            eb.weight,
            eb.count,
            eb.mcount,
        )


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "weighting", ["size", "bits", "size_minus_one", "merged", "star"]
    )
    @pytest.mark.parametrize("prune", [True, False])
    def test_weightings_on_tiny_table(self, tiny_table, weighting, prune):
        wf = _weighting(weighting, tiny_table)
        scratch = brs(tiny_table, wf, 5, 3.0, prune=prune, engine="scratch")
        lazy = brs(tiny_table, wf, 5, 3.0, prune=prune, engine="incremental")
        _assert_identical(scratch, lazy)

    @pytest.mark.parametrize("max_rule_size", [None, 1, 2])
    def test_rule_size_caps(self, tiny_table, max_rule_size):
        wf = SizeWeight()
        scratch = brs(
            tiny_table, wf, 4, 3.0, max_rule_size=max_rule_size, engine="scratch"
        )
        lazy = brs(tiny_table, wf, 4, 3.0, max_rule_size=max_rule_size)
        _assert_identical(scratch, lazy)

    @pytest.mark.parametrize("measure", [None, "Sales"])
    @pytest.mark.parametrize("prune", [True, False])
    def test_sum_vs_count_measures(self, measure_table, measure, prune):
        wf = SizeWeight()
        measures = tuple_measures(measure_table, measure)
        scratch = brs(
            measure_table, wf, 4, 2.0, measures=measures, prune=prune, engine="scratch"
        )
        lazy = brs(measure_table, wf, 4, 2.0, measures=measures, prune=prune)
        _assert_identical(scratch, lazy)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_tables(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=40, n_columns=4, domain=3)
        for weighting in ("size", "bits", "star"):
            wf = _weighting(weighting, table)
            scratch = brs(table, wf, 6, 3.0, engine="scratch")
            lazy = brs(table, wf, 6, 3.0)
            _assert_identical(scratch, lazy)

    def test_initial_top_seeding(self, tiny_table):
        wf = SizeWeight()
        seed = np.full(tiny_table.n_rows, 1.0)
        scratch = brs(tiny_table, wf, 3, 3.0, initial_top=seed, engine="scratch")
        lazy = brs(tiny_table, wf, 3, 3.0, initial_top=seed)
        _assert_identical(scratch, lazy)

    def test_exhausts_identically(self, tiny_table):
        """Both engines stop at the same pick when marginals dry up."""
        wf = SizeWeight()
        scratch = brs(tiny_table, wf, 100, 3.0, engine="scratch")
        lazy = brs(tiny_table, wf, 100, 3.0)
        assert len(scratch.picks) == len(lazy.picks) < 100
        _assert_identical(scratch, lazy)

    def test_streaming_iter_equivalence(self, tiny_table):
        wf = SizeWeight()
        scratch = [r.rule for r in brs_iter(tiny_table, wf, 3.0, engine="scratch")]
        lazy = [r.rule for r in brs_iter(tiny_table, wf, 3.0)]
        assert scratch == lazy

    def test_matches_single_search_sequence(self, tiny_table):
        """context.find_best ≡ find_best_marginal_rule pick by pick."""
        wf = SizeWeight()
        ctx = SearchContext(tiny_table, wf, 3.0)
        top = np.zeros(tiny_table.n_rows)
        for _ in range(4):
            cold = find_best_marginal_rule(tiny_table, wf, top.copy(), 3.0)
            warm = ctx.find_best(top.copy())
            if cold is None:
                assert warm is None
                break
            assert warm is not None
            assert (warm.rule, warm.weight, warm.count, warm.marginal) == (
                cold.rule,
                cold.weight,
                cold.count,
                cold.marginal,
            )
            from repro.core import cover_mask

            mask = cover_mask(cold.rule, tiny_table)
            top[mask] = np.maximum(top[mask], cold.weight)


class TestContextReuse:
    def test_second_run_identical_and_cheaper(self, marketing7):
        wf = SizeWeight()
        ctx = SearchContext(marketing7, wf, 5.0)
        first = brs(marketing7, wf, 4, 5.0, context=ctx)
        second = brs(marketing7, wf, 4, 5.0, context=ctx)
        _assert_identical(first, second)
        # The second run regenerates nothing: every candidate it needs
        # is already cached.
        assert second.stats.candidates_generated == 0
        assert second.stats.cache_hits > 0
        assert second.stats.rows_scanned < first.stats.rows_scanned

    def test_growing_k_reuses_cache(self, tiny_table):
        """k=2 then k=4 on one context: the k=4 run prefixes identically."""
        wf = SizeWeight()
        ctx = SearchContext(tiny_table, wf, 3.0)
        small = brs(tiny_table, wf, 2, 3.0, context=ctx)
        large = brs(tiny_table, wf, 4, 3.0, context=ctx)
        fresh = brs(tiny_table, wf, 4, 3.0, engine="scratch")
        assert [p.rule for p in large.picks[:2]] == [p.rule for p in small.picks]
        _assert_identical(fresh, large)

    def test_lazy_counters_populated(self, marketing7):
        result = brs(marketing7, SizeWeight(), 4, 5.0)
        assert result.stats.cache_hits > 0
        assert result.stats.lazy_skips > 0

    def test_incompatible_context_rejected(self, tiny_table, measure_table):
        wf = SizeWeight()
        ctx = SearchContext(tiny_table, wf, 3.0)
        with pytest.raises(RuleError):
            brs(measure_table, wf, 2, 3.0, context=ctx)
        with pytest.raises(RuleError):
            brs(tiny_table, wf, 2, 2.0, context=ctx)  # different mw
        with pytest.raises(RuleError):
            brs(tiny_table, wf, 2, 3.0, prune=False, context=ctx)
        with pytest.raises(RuleError):
            brs(tiny_table, SizeWeight(), 2, 3.0, context=ctx)  # different wf object

    def test_unknown_engine_rejected(self, tiny_table):
        # EngineError subclasses ValueError, so both spellings catch it.
        with pytest.raises(EngineError):
            brs(tiny_table, SizeWeight(), 2, 3.0, engine="warp")
        with pytest.raises(ValueError):
            brs(tiny_table, SizeWeight(), 2, 3.0, engine="warp")


class TestDrilldownReuse:
    def test_rule_drilldown_context_roundtrip(self, marketing7):
        wf = SizeWeight()
        parent = Rule.from_items(
            marketing7.n_columns, {0: marketing7.categorical(0).decode(0)}
        )
        first = rule_drilldown(marketing7, parent, wf, 3, 5.0)
        assert first.context is not None
        second = rule_drilldown(
            marketing7, parent, wf, 3, 5.0, context=first.context
        )
        assert second.context is first.context
        assert first.rules == second.rules
        assert [e.mcount for e in first.rule_list] == [e.mcount for e in second.rule_list]
        # Reuse serves most of the lattice from cache: far fewer
        # candidates are generated than a cold run needs (a few pruned
        # subtrees may expand late, since the redo re-verifies bounds
        # under its own top sequence).
        assert second.stats.candidates_generated < first.stats.candidates_generated / 2
        assert second.stats.cache_hits > 0

    def test_rule_drilldown_matches_scratch(self, marketing7):
        wf = SizeWeight()
        parent = Rule.from_items(
            marketing7.n_columns, {0: marketing7.categorical(0).decode(0)}
        )
        lazy = rule_drilldown(marketing7, parent, wf, 3, 5.0)
        cold = rule_drilldown(marketing7, parent, wf, 3, 5.0, engine="scratch")
        assert cold.context is None
        assert lazy.rules == cold.rules

    def test_stale_context_rebuilt(self, tiny_table, measure_table):
        """A context from another table/parent is ignored, not an error."""
        wf = SizeWeight()
        parent_a = Rule(["a", STAR, STAR])
        parent_b = Rule(["b", STAR, STAR])
        first = rule_drilldown(tiny_table, parent_a, wf, 2, 3.0)
        second = rule_drilldown(tiny_table, parent_b, wf, 2, 3.0, context=first.context)
        assert second.context is not first.context
        cold = rule_drilldown(tiny_table, parent_b, wf, 2, 3.0, engine="scratch")
        assert second.rules == cold.rules

    def test_star_drilldown_context_roundtrip(self, tiny_table):
        wf = SizeWeight()
        parent = Rule(["a", STAR, STAR])
        first = star_drilldown(tiny_table, parent, 1, wf, 2, 3.0)
        second = star_drilldown(
            tiny_table, parent, 1, wf, 2, 3.0, context=first.context
        )
        assert second.context is first.context
        assert first.rules == second.rules
        cold = star_drilldown(tiny_table, parent, 1, wf, 2, 3.0, engine="scratch")
        assert first.rules == cold.rules


class TestSessionReuse:
    def test_expand_collapse_expand_identical(self, marketing7):
        session = DrillDownSession(marketing7, k=3, mw=5.0)
        root = session.root.rule
        first = [c.rule for c in session.expand(root)]
        ctx = session._search_contexts[("rule", root, None)]
        session.collapse(root)
        again = [c.rule for c in session.expand(root)]
        assert first == again
        # Same context object survived the collapse and served the redo.
        assert session._search_contexts[("rule", root, None)] is ctx
        assert ctx.total_stats.cache_hits > 0

    def test_clear_search_cache(self, tiny_table):
        session = DrillDownSession(tiny_table, k=2, mw=3.0)
        session.expand(session.root.rule)
        assert session._search_contexts
        session.clear_search_cache()
        assert not session._search_contexts


class TestSearchStatsCounters:
    def test_merge_accumulates_new_counters(self):
        a = SearchStats(cache_hits=2, lazy_skips=5)
        b = SearchStats(cache_hits=3, lazy_skips=7, rows_scanned=10)
        a.merge(b)
        assert a.cache_hits == 5
        assert a.lazy_skips == 12
        assert a.rows_scanned == 10

    def test_scratch_engine_reports_no_cache_work(self, tiny_table):
        result = brs(tiny_table, SizeWeight(), 3, 3.0, engine="scratch")
        assert result.stats.cache_hits == 0
        assert result.stats.lazy_skips == 0
