"""Tests for parameter guidance (§4.2, §6.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    SizeWeight,
    estimate_mw,
    estimate_parametric_mw,
    exponent_for_target_fraction,
    kkt_analysis,
    recommend_min_sample_size,
)
from repro.errors import ParameterError
from repro.table import Table, compute_stats


class TestEstimateMW:
    def test_covers_actual_max_weight(self, marketing7):
        """2× the pilot's max weight should cover the true optimum."""
        from repro.core import brs

        wf = SizeWeight()
        mw = estimate_mw(marketing7, wf, 4, sample_size=2000, rng=np.random.default_rng(1))
        full = brs(marketing7, wf, 4, 7.0)
        true_max = max(wf.weight(r) for r in full.rules)
        assert mw >= true_max

    def test_small_table_uses_everything(self, tiny_table):
        mw = estimate_mw(tiny_table, SizeWeight(), 2, sample_size=100)
        assert mw >= 1.0

    def test_empty_table(self):
        table = Table.from_rows(["A"], [])
        assert estimate_mw(table, SizeWeight(), 2) == 1.0

    def test_safety_factor_scales(self, tiny_table):
        base = estimate_mw(tiny_table, SizeWeight(), 2, safety_factor=1.0)
        doubled = estimate_mw(tiny_table, SizeWeight(), 2, safety_factor=2.0)
        assert doubled == pytest.approx(2.0 * base)


class TestMinSSRecommendation:
    def test_formula(self, tiny_table):
        # |C| = 3 columns, min distinct = 2 → ρ·6.
        assert recommend_min_sample_size(tiny_table, rho=10.0) == 60.0

    def test_accepts_stats(self, tiny_table):
        stats = compute_stats(tiny_table)
        assert recommend_min_sample_size(stats) == recommend_min_sample_size(tiny_table)

    def test_paper_example(self):
        """|T|=10000, |c|=5, |C|=10 → minSS ≫ 50 (paper §4.2)."""
        rows = [(f"v{i % 5}", *[f"x{i % 7}_{j}" for j in range(9)]) for i in range(100)]
        table = Table.from_rows([f"c{j}" for j in range(10)], rows)
        assert recommend_min_sample_size(table, rho=1.0) == 10 * 5


class TestKKT:
    def test_uniform_bits_ratio_equal(self):
        """With f_c = 1/|c| and w_c = log|c|, all ratios are equal (§6.1)."""
        domains = [4, 8, 16]
        fs = [1.0 / d for d in domains]
        ws = [math.log2(d) for d in domains]
        analysis = kkt_analysis(fs, ws, exponent=1.0)
        ratios = [r for r in analysis.ratios]
        assert max(ratios) - min(ratios) < 1e-9

    def test_size_weighting_prefers_frequent_values(self):
        """Under Size weighting the best columns have the largest f_c."""
        fs = [0.9, 0.2, 0.5]
        ws = [1.0, 1.0, 1.0]
        analysis = kkt_analysis(fs, ws, exponent=1.0)
        assert analysis.predicted_columns[0] == 0

    def test_fraction_formula(self):
        fs = [0.5, 0.5]
        k = 1.0
        analysis = kkt_analysis(fs, [1.0, 1.0], exponent=k)
        expected = -k / (math.log(0.5) + math.log(0.5))
        assert analysis.instantiated_fraction == pytest.approx(expected)

    def test_exponent_for_target_roundtrip(self):
        fs = [0.3, 0.6, 0.4]
        target = 0.5
        k = exponent_for_target_fraction(fs, target)
        analysis = kkt_analysis(fs, [1.0, 1.0, 1.0], exponent=k)
        assert analysis.instantiated_fraction == pytest.approx(target)

    def test_target_fraction_bounds(self):
        # ParameterError subclasses ValueError: both spellings catch it.
        with pytest.raises(ParameterError):
            exponent_for_target_fraction([0.5], 1.5)
        with pytest.raises(ValueError):
            exponent_for_target_fraction([0.5], -0.1)

    def test_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            kkt_analysis([0.5], [1.0, 1.0], 1.0)

    def test_parametric_mw_on_table(self, tiny_table):
        mw = estimate_parametric_mw(tiny_table, [1.0, 1.0, 1.0], exponent=1.0)
        assert 0.0 <= mw <= 3.0

    def test_predicted_mw_monotone_in_exponent(self):
        fs = [0.5, 0.5, 0.5]
        ws = [1.0, 1.0, 1.0]
        low = kkt_analysis(fs, ws, exponent=0.5).instantiated_fraction
        high = kkt_analysis(fs, ws, exponent=2.0).instantiated_fraction
        assert high > low
