"""Equivalence + lifecycle tests for the shared-memory counting pool.

The parallel backend (:mod:`repro.core.parallel`) must produce
*bit-identical* rule lists, weights, counts, and marginals to the
serial engines across weight functions, engines, and worker counts —
a task is one whole (parent, column) bincount pair, so not even float
accumulation order may differ.  The lifecycle half covers the serial
fallbacks (``n_workers=1``, small tables, slow-path weights, closed
pools) and shared-memory cleanup on pool/session close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BitsWeight,
    CallableWeight,
    CountingPool,
    MergedWeight,
    Rule,
    SearchContext,
    SizeMinusOneWeight,
    SizeWeight,
    StarConstrainedWeight,
    brs,
    default_pool,
    find_best_marginal_rule,
    resolve_pool,
    rule_drilldown,
    star_drilldown,
    tuple_measures,
)
from repro.session import DrillDownSession

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None


@pytest.fixture(scope="module")
def pool2():
    """A two-worker pool with thresholds zeroed so tiny tables dispatch."""
    with CountingPool(2, min_table_rows=0, min_task_rows=0) as pool:
        yield pool


def _weighting(name: str, table):
    if name == "size":
        return SizeWeight()
    if name == "bits":
        return BitsWeight.for_table(table)
    if name == "size_minus_one":
        return SizeMinusOneWeight()
    if name == "merged":
        return MergedWeight(SizeWeight(), Rule.from_items(table.n_columns, {0: "v0"}))
    if name == "star":
        return StarConstrainedWeight(SizeWeight(), min(1, table.n_columns - 1))
    raise AssertionError(name)


def _assert_identical(a, b):
    """Byte-identical pick sequences: rules, weights, counts, marginals."""
    assert [p.rule for p in a.picks] == [p.rule for p in b.picks]
    assert [p.weight for p in a.picks] == [p.weight for p in b.picks]
    assert [p.count for p in a.picks] == [p.count for p in b.picks]
    assert [p.marginal for p in a.picks] == [p.marginal for p in b.picks]
    assert a.rules == b.rules
    assert a.score == b.score


class TestParallelEquivalence:
    @pytest.mark.parametrize(
        "weighting", ["size", "bits", "size_minus_one", "merged", "star"]
    )
    def test_weight_functions(self, marketing7, weighting, pool2):
        wf = _weighting(weighting, marketing7)
        serial = brs(marketing7, wf, 4, 5.0)
        parallel = brs(marketing7, wf, 4, 5.0, pool=pool2)
        _assert_identical(serial, parallel)

    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_worker_counts(self, marketing7, n_workers):
        wf = SizeWeight()
        serial = brs(marketing7, wf, 4, 5.0)
        with CountingPool(n_workers, min_table_rows=0, min_task_rows=0) as pool:
            parallel = brs(marketing7, wf, 4, 5.0, pool=pool)
        _assert_identical(serial, parallel)

    def test_scratch_engine(self, marketing7, pool2):
        wf = SizeWeight()
        serial = brs(marketing7, wf, 4, 5.0, engine="scratch")
        parallel = brs(marketing7, wf, 4, 5.0, engine="scratch", pool=pool2)
        _assert_identical(serial, parallel)

    def test_census_workload_dispatches(self, census_small, pool2):
        wf = SizeWeight()
        serial = brs(census_small, wf, 5, 5.0)
        ctx = SearchContext(census_small, wf, 5.0, pool=pool2)
        parallel = brs(census_small, wf, 5, 5.0, context=ctx)
        _assert_identical(serial, parallel)
        assert ctx.backend is not None
        assert ctx.backend.tasks_dispatched > 0  # workers really ran

    def test_sum_measures(self, measure_table, pool2):
        wf = SizeWeight()
        measures = tuple_measures(measure_table, "Sales")
        serial = brs(measure_table, wf, 4, 2.0, measures=measures)
        parallel = brs(measure_table, wf, 4, 2.0, measures=measures, pool=pool2)
        _assert_identical(serial, parallel)

    def test_single_search(self, marketing7, pool2):
        wf = SizeWeight()
        top = np.zeros(marketing7.n_rows)
        cold = find_best_marginal_rule(marketing7, wf, top, 5.0)
        warm = find_best_marginal_rule(marketing7, wf, top, 5.0, pool=pool2)
        assert (warm.rule, warm.weight, warm.count, warm.marginal) == (
            cold.rule,
            cold.weight,
            cold.count,
            cold.marginal,
        )

    def test_rule_drilldown(self, marketing7, pool2):
        wf = SizeWeight()
        parent = Rule.from_items(
            marketing7.n_columns, {0: marketing7.categorical(0).decode(0)}
        )
        serial = rule_drilldown(marketing7, parent, wf, 3, 5.0)
        parallel = rule_drilldown(marketing7, parent, wf, 3, 5.0, pool=pool2)
        assert serial.rules == parallel.rules
        assert [e.mcount for e in serial.rule_list] == [
            e.mcount for e in parallel.rule_list
        ]

    def test_star_drilldown(self, marketing7, pool2):
        wf = SizeWeight()
        parent = Rule.trivial(marketing7.n_columns)
        serial = star_drilldown(marketing7, parent, 1, wf, 3, 5.0)
        parallel = star_drilldown(marketing7, parent, 1, wf, 3, 5.0, pool=pool2)
        assert serial.rules == parallel.rules

    def test_interleaved_contexts_share_one_export(self, marketing7, pool2):
        """Alternating searches from two contexts over one shared export
        must each see their own ``top`` (the segment is re-published on
        ownership change), not the other search's."""
        wf = SizeWeight()
        c1 = SearchContext(marketing7, wf, 5.0, pool=pool2)
        c2 = SearchContext(marketing7, wf, 5.0, pool=pool2)
        assert c1.backend.export is c2.backend.export
        tops = [np.zeros(marketing7.n_rows), np.zeros(marketing7.n_rows)]
        picks = [[], []]
        for _ in range(3):
            for i, ctx in enumerate((c1, c2)):
                result = ctx.find_best(tops[i].copy())
                picks[i].append((result.rule, result.marginal))
                rows = ctx.last_rows
                tops[i][rows] = np.maximum(tops[i][rows], result.weight)
        assert picks[0] == picks[1]
        reference = brs(marketing7, wf, 3, 5.0)
        assert [p.rule for p in reference.picks] == [r for r, _ in picks[0]]

    def test_float_top_normalised(self, marketing7, pool2):
        """A non-float64 top is normalised identically on the serial and
        parallel paths (local fallback vs shared segment)."""
        wf = SizeWeight()
        top = np.zeros(marketing7.n_rows, dtype=np.float32)
        top[: marketing7.n_rows // 2] = 1.5
        cold = find_best_marginal_rule(marketing7, wf, top, 5.0)
        warm = find_best_marginal_rule(marketing7, wf, top, 5.0, pool=pool2)
        assert (cold.rule, cold.marginal, cold.count) == (
            warm.rule,
            warm.marginal,
            warm.count,
        )

    def test_session_expansions(self, marketing7, pool2):
        serial = DrillDownSession(marketing7, k=3, mw=5.0)
        serial.expand(serial.root.rule)
        with DrillDownSession(marketing7, k=3, mw=5.0, pool=pool2) as parallel:
            parallel.expand(parallel.root.rule)
            assert [n.rule for n in serial.displayed()] == [
                n.rule for n in parallel.displayed()
            ]


class TestSerialFallbacks:
    def test_n_workers_one_is_serial(self, marketing7):
        assert resolve_pool(None, None) is None
        assert resolve_pool(None, 1) is None
        ctx = SearchContext(marketing7, SizeWeight(), 5.0, n_workers=1)
        assert ctx.backend is None
        result = brs(marketing7, SizeWeight(), 3, 5.0, n_workers=1)
        _assert_identical(result, brs(marketing7, SizeWeight(), 3, 5.0))

    def test_n_workers_zero_means_all_cores(self):
        import os

        pool = resolve_pool(None, 0)
        if (os.cpu_count() or 1) > 1:
            assert pool is not None and pool.n_workers == os.cpu_count()
        else:
            assert pool is None

    def test_small_table_not_exported(self, tiny_table, pool2):
        with CountingPool(2) as strict:  # default min_table_rows
            assert strict.backend_for(tiny_table) is None
        # zeroed thresholds do export it, and results still agree
        serial = brs(tiny_table, SizeWeight(), 3, 3.0)
        parallel = brs(tiny_table, SizeWeight(), 3, 3.0, pool=pool2)
        _assert_identical(serial, parallel)

    def test_slow_path_weight_falls_back(self, tiny_table, pool2):
        wf = CallableWeight(lambda rule: float(rule.size))
        ctx = SearchContext(tiny_table, wf, 3.0, pool=pool2)
        assert ctx.backend is None  # value-dependent weights stay serial
        serial = brs(tiny_table, wf, 3, 3.0)
        parallel = brs(tiny_table, wf, 3, 3.0, pool=pool2)
        _assert_identical(serial, parallel)

    def test_pool_of_one_never_dispatches(self, marketing7):
        pool = CountingPool(1, min_table_rows=0, min_task_rows=0)
        assert not pool.usable
        assert pool.backend_for(marketing7) is None
        pool.close()

    def test_tasks_below_threshold_run_locally(self, marketing7):
        wf = SizeWeight()
        with CountingPool(2, min_table_rows=0, min_task_rows=10**9) as pool:
            ctx = SearchContext(marketing7, wf, 5.0, pool=pool)
            result = brs(marketing7, wf, 3, 5.0, context=ctx)
            assert ctx.backend is not None
            assert ctx.backend.tasks_dispatched == 0
            assert ctx.backend.tasks_local > 0
        _assert_identical(result, brs(marketing7, SizeWeight(), 3, 5.0))

    def test_closed_pool_is_serial(self, marketing7):
        pool = CountingPool(2, min_table_rows=0)
        pool.close()
        assert pool.backend_for(marketing7) is None
        result = brs(marketing7, SizeWeight(), 3, 5.0, pool=pool)
        _assert_identical(result, brs(marketing7, SizeWeight(), 3, 5.0))


@pytest.mark.skipif(shared_memory is None, reason="no shared_memory support")
class TestLifecycle:
    def test_export_reused_across_searches(self, marketing7, pool2):
        a = pool2.backend_for(marketing7)
        b = pool2.backend_for(marketing7)
        assert a is not b and a.export is b.export

    def test_pool_close_unlinks_segments(self, marketing7):
        pool = CountingPool(2, min_table_rows=0, min_task_rows=0)
        backend = pool.backend_for(marketing7)
        data_name, top_name = backend.export.meta[0], backend.export.meta[1]
        probe = shared_memory.SharedMemory(name=data_name)
        probe.close()
        pool.close()
        for name in (data_name, top_name):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_session_close_releases_owned_pool(self, marketing7):
        session = DrillDownSession(marketing7, k=3, mw=5.0, n_workers=2)
        pool = session.pool
        assert pool is not None and pool.n_workers == 2
        session.expand(session.root.rule)
        session.close()
        assert pool.closed
        assert session.pool is None
        assert not session._search_contexts

    def test_session_close_keeps_shared_pool(self, marketing7, pool2):
        session = DrillDownSession(marketing7, k=3, mw=5.0, pool=pool2)
        session.expand(session.root.rule)
        session.close()
        assert not pool2.closed  # shared pools outlive the session

    def test_session_n_workers_one_owns_no_pool(self, marketing7):
        session = DrillDownSession(marketing7, k=3, mw=5.0, n_workers=1)
        assert session.pool is None
        session.expand(session.root.rule)
        session.close()

    def test_default_pool_cached_and_reopened(self):
        a = default_pool(2)
        assert default_pool(2) is a
        a.close()
        b = default_pool(2)
        assert b is not a and not b.closed
        b.close()
