"""Tests for the Section 6 extensions: time budgets and column preferences."""

from __future__ import annotations

import pytest

from repro.core import (
    BitsWeight,
    CallableWeight,
    ParametricWeight,
    Rule,
    STAR,
    SizeWeight,
    adjust_column_preference,
    brs,
    brs_time_limited,
)
from repro.errors import WeightFunctionError


class TestTimeLimitedBRS:
    def test_returns_prefix_of_fixed_k(self, marketing7):
        """The time-limited output prefixes the fixed-k greedy output."""
        wf = SizeWeight()
        limited = brs_time_limited(marketing7, wf, 5.0, time_limit_seconds=60.0, max_rules=3)
        full = brs(marketing7, wf, 6, 5.0)
        assert [p.rule for p in limited.picks] == [p.rule for p in full.picks[:3]]

    def test_always_finds_at_least_one_rule(self, tiny_table):
        result = brs_time_limited(tiny_table, SizeWeight(), 3.0, time_limit_seconds=1e-9)
        assert len(result.rules) >= 1

    def test_generous_budget_exhausts_rules(self, tiny_table):
        result = brs_time_limited(tiny_table, SizeWeight(), 3.0, time_limit_seconds=30.0)
        # Stops when no positive marginal remains, like plain BRS.
        unlimited = brs(tiny_table, SizeWeight(), 1000, 3.0)
        assert set(result.rules) == set(unlimited.rules)

    def test_invalid_budget(self, tiny_table):
        with pytest.raises(ValueError):
            brs_time_limited(tiny_table, SizeWeight(), 3.0, time_limit_seconds=0.0)

    def test_max_rules_cap(self, marketing7):
        result = brs_time_limited(
            marketing7, SizeWeight(), 5.0, time_limit_seconds=60.0, max_rules=2
        )
        assert len(result.rules) == 2


class TestColumnPreference:
    def test_size_promoted_to_parametric(self):
        adjusted = adjust_column_preference(SizeWeight(), 1, 3.0, 3)
        assert isinstance(adjusted, ParametricWeight)
        assert adjusted.weight(Rule([STAR, "b", STAR])) == 3.0
        assert adjusted.weight(Rule(["a", STAR, STAR])) == 1.0

    def test_ignore_zeroes_column(self):
        adjusted = adjust_column_preference(SizeWeight(), 0, 0.0, 2)
        assert adjusted.weight(Rule(["a", STAR])) == 0.0
        assert adjusted.weight(Rule(["a", "b"])) == 1.0

    def test_bits_scaled(self, tiny_table):
        base = BitsWeight.for_table(tiny_table)
        adjusted = adjust_column_preference(base, 1, 2.0, 3)
        assert isinstance(adjusted, BitsWeight)
        assert adjusted.column_bits[1] == base.column_bits[1] * 2

    def test_parametric_scaled_preserves_exponent(self):
        base = ParametricWeight([1.0, 2.0], exponent=2.0)
        adjusted = adjust_column_preference(base, 0, 4.0, 2)
        assert isinstance(adjusted, ParametricWeight)
        assert adjusted.exponent == 2.0
        assert adjusted.column_weights == (4.0, 2.0)

    def test_unsupported_weight_rejected(self):
        wf = CallableWeight(lambda r: float(r.size))
        with pytest.raises(WeightFunctionError):
            adjust_column_preference(wf, 0, 2.0, 2)

    def test_invalid_parameters(self):
        with pytest.raises(WeightFunctionError):
            adjust_column_preference(SizeWeight(), 0, -1.0, 2)
        with pytest.raises(WeightFunctionError):
            adjust_column_preference(SizeWeight(), 5, 1.0, 2)

    def test_favoring_changes_selection(self, marketing7):
        """Favouring Occupation surfaces Occupation rules (§6.1 intent)."""
        occ = marketing7.schema.index_of("Occupation")
        favoured = adjust_column_preference(SizeWeight(), occ, 4.0, marketing7.n_columns)
        result = brs(marketing7, favoured, 4, 8.0)
        assert any(not r.is_star(occ) for r in result.rules)

    def test_ignored_column_never_selected(self, marketing7):
        sex = marketing7.schema.index_of("Sex")
        ignoring = adjust_column_preference(SizeWeight(), sex, 0.0, marketing7.n_columns)
        result = brs(marketing7, ignoring, 4, 5.0)
        assert all(r.is_star(sex) for r in result.rules)
