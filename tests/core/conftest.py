"""Marker stamping for the core suite.

Files named ``*marginal_cache*`` carry the ``cache`` marker (registered
in pytest.ini), so ``-m cache`` selects the first-pick marginal-cache
suites alone — the same auto-stamp idiom the serving conftest uses for
its tier marker.
"""

from __future__ import annotations

from pathlib import Path

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        if "marginal_cache" in Path(str(item.fspath)).name:
            item.add_marker(pytest.mark.cache)
