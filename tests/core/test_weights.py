"""Tests for weighting functions (paper §2.2, §6.1): contracts and values."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BitsWeight,
    CallableWeight,
    ColumnIndicatorWeight,
    MergedWeight,
    ParametricWeight,
    Rule,
    STAR,
    SizeMinusOneWeight,
    SizeWeight,
    StarConstrainedWeight,
    bits_per_column,
    validate_weight_function,
)
from repro.core.weights import all_column_subsets
from repro.errors import WeightFunctionError
from repro.table import Table


class TestSizeWeight:
    def test_equals_rule_size(self):
        wf = SizeWeight()
        assert wf.weight(Rule.trivial(3)) == 0.0
        assert wf.weight(Rule(["a", STAR, STAR])) == 1.0
        assert wf.weight(Rule(["a", "b", "c"])) == 3.0

    def test_max_weight(self):
        assert SizeWeight().max_weight(5) == 5.0

    def test_paper_table2_weights(self):
        # (Target, bicycles, ?) has weight 2 (paper §2.2 example).
        assert SizeWeight().weight(Rule(["Target", "bicycles", STAR])) == 2.0


class TestBitsWeight:
    def test_for_table(self, tiny_table):
        wf = BitsWeight.for_table(tiny_table)
        # Columns have 2, 3, 3 distinct values → ceil(log2) = 1, 2, 2.
        assert wf.column_bits == (1.0, 2.0, 2.0)
        assert wf.weight(Rule(["a", "x", STAR])) == 3.0
        assert wf.max_weight(3) == 5.0

    def test_binary_column_weighs_one(self):
        table = Table.from_dict({"sex": ["F", "M", "F"], "edu": ["a", "b", "c"]})
        wf = BitsWeight.for_table(table)
        assert wf.weight(Rule(["F", STAR])) == 1.0
        assert wf.weight(Rule([STAR, "a"])) == 2.0

    def test_single_valued_column_weighs_zero(self):
        table = Table.from_dict({"const": ["k", "k"], "ab": ["a", "b"]})
        bits = bits_per_column(table)
        assert bits == (0.0, 1.0)

    def test_negative_bits_rejected(self):
        with pytest.raises(WeightFunctionError):
            BitsWeight([-1.0])

    def test_numeric_column_gets_zero_bits(self, measure_table):
        bits = bits_per_column(measure_table)
        assert bits[measure_table.schema.index_of("Sales")] == 0.0


class TestSizeMinusOne:
    def test_values(self):
        wf = SizeMinusOneWeight()
        assert wf.weight(Rule.trivial(3)) == 0.0
        assert wf.weight(Rule(["a", STAR, STAR])) == 0.0
        assert wf.weight(Rule(["a", "b", STAR])) == 1.0
        assert wf.weight(Rule(["a", "b", "c"])) == 2.0


class TestParametricWeight:
    def test_size_special_case(self):
        wf = ParametricWeight([1.0, 1.0, 1.0], exponent=1.0)
        for cols in all_column_subsets(3):
            assert wf.weight_of_columns(cols) == len(cols)

    def test_exponent_two(self):
        wf = ParametricWeight([1.0, 2.0], exponent=2.0)
        assert wf.weight(Rule(["a", "b"])) == 9.0
        assert wf.weight(Rule(["a", STAR])) == 1.0

    def test_zero_exponent_is_indicator_of_nonempty(self):
        wf = ParametricWeight([1.0, 1.0], exponent=0.0)
        assert wf.weight(Rule(["a", STAR])) == 1.0
        assert wf.weight(Rule.trivial(2)) == 0.0  # base 0 stays 0

    def test_invalid_parameters(self):
        with pytest.raises(WeightFunctionError):
            ParametricWeight([-1.0])
        with pytest.raises(WeightFunctionError):
            ParametricWeight([1.0], exponent=-1.0)


class TestColumnIndicator:
    def test_indicates_column(self):
        wf = ColumnIndicatorWeight(1)
        assert wf.weight(Rule(["a", "b", STAR])) == 1.0
        assert wf.weight(Rule(["a", STAR, "c"])) == 0.0

    def test_negative_column_rejected(self):
        with pytest.raises(WeightFunctionError):
            ColumnIndicatorWeight(-1)


class TestStarConstrainedWeight:
    def test_zeroes_starred_column(self):
        wf = StarConstrainedWeight(SizeWeight(), 1)
        assert wf.weight(Rule(["a", STAR, "c"])) == 0.0
        assert wf.weight(Rule(["a", "b", STAR])) == 2.0

    def test_monotone(self, tiny_table):
        validate_weight_function(StarConstrainedWeight(SizeWeight(), 0), tiny_table)


class TestMergedWeight:
    def test_scores_merge_with_parent(self):
        parent = Rule(["W", STAR, STAR])
        wf = MergedWeight(SizeWeight(), parent)
        assert wf.weight(Rule.trivial(3)) == 1.0  # merge = parent itself
        assert wf.weight(Rule([STAR, "x", STAR])) == 2.0
        assert wf.weight(Rule(["W", "x", STAR])) == 2.0  # idempotent on parent cols

    def test_conflicting_candidate_falls_back(self):
        parent = Rule(["W", STAR])
        wf = MergedWeight(SizeWeight(), parent)
        assert wf.weight(Rule(["T", STAR])) == 1.0

    def test_monotone(self, tiny_table):
        parent = Rule(["a", STAR, STAR])
        validate_weight_function(MergedWeight(SizeWeight(), parent), tiny_table)


class TestCallableWeight:
    def test_wraps_function(self):
        wf = CallableWeight(lambda r: float(r.size * 2))
        assert wf.weight(Rule(["a", "b"])) == 4.0

    def test_negative_weight_raises(self):
        wf = CallableWeight(lambda r: -1.0)
        with pytest.raises(WeightFunctionError):
            wf.weight(Rule(["a"]))


class TestValidator:
    def test_accepts_all_builtins(self, tiny_table):
        for wf in (
            SizeWeight(),
            BitsWeight.for_table(tiny_table),
            SizeMinusOneWeight(),
            ParametricWeight([1.0, 2.0, 0.5], exponent=1.5),
            ColumnIndicatorWeight(0),
        ):
            validate_weight_function(wf, tiny_table)

    def test_rejects_non_monotone(self, tiny_table):
        # Weight decreasing in size violates monotonicity.
        bad = CallableWeight(lambda r: float(3 - r.size))
        with pytest.raises(WeightFunctionError):
            validate_weight_function(bad, tiny_table, trials=500)

    def test_rejects_negative(self, tiny_table):
        bad = CallableWeight(lambda r: float(r.size - 1))
        with pytest.raises(WeightFunctionError):
            validate_weight_function(bad, tiny_table, trials=500)

    def test_empty_table_passes(self):
        empty = Table.from_rows(["A"], [])
        validate_weight_function(SizeWeight(), empty)


_subset = st.sets(st.integers(0, 4)).map(lambda s: tuple(sorted(s)))


class TestMonotonicityProperties:
    @given(_subset, _subset)
    def test_column_set_monotone(self, s1, s2):
        """W monotone over column-set inclusion for all built-ins."""
        if not set(s1) <= set(s2):
            return
        for wf in (
            SizeWeight(),
            BitsWeight([1.0, 2.0, 3.0, 1.0, 2.0]),
            SizeMinusOneWeight(),
            ParametricWeight([1.0, 0.5, 2.0, 1.0, 0.0], exponent=2.0),
            ColumnIndicatorWeight(2),
        ):
            assert wf.weight_of_columns(s1) <= wf.weight_of_columns(s2) + 1e-12

    @given(_subset)
    def test_non_negative(self, s):
        for wf in (
            SizeWeight(),
            BitsWeight([1.0, 2.0, 3.0, 1.0, 2.0]),
            SizeMinusOneWeight(),
            ParametricWeight([1.0, 0.5, 2.0, 1.0, 0.0], exponent=0.5),
        ):
            assert wf.weight_of_columns(s) >= 0.0
