"""Tests for the drill-down operators (§2.3, §3.1 reductions, §5.1)."""

from __future__ import annotations

import pytest

from repro.core import (
    ColumnIndicatorWeight,
    Rule,
    STAR,
    SizeWeight,
    count,
    rule_drilldown,
    star_drilldown,
    traditional_drilldown,
)
from repro.errors import RuleError


class TestRuleDrillDown:
    def test_children_are_strict_superrules(self, tiny_table):
        parent = Rule(["a", STAR, STAR])
        result = rule_drilldown(tiny_table, parent, SizeWeight(), 2, 3.0)
        for rule in result.rules:
            assert parent.is_strict_subrule_of(rule)

    def test_counts_are_global(self, tiny_table):
        """A child's count on the sub-table equals its full-table count."""
        parent = Rule(["a", STAR, STAR])
        result = rule_drilldown(tiny_table, parent, SizeWeight(), 2, 3.0)
        for entry in result.rule_list:
            assert entry.count == count(entry.rule, tiny_table)

    def test_subtable_rows(self, tiny_table):
        parent = Rule(["a", STAR, STAR])
        result = rule_drilldown(tiny_table, parent, SizeWeight(), 2, 3.0)
        assert result.subtable_rows == 5

    def test_trivial_parent_is_plain_brs(self, tiny_table):
        from repro.core import brs

        via_drill = rule_drilldown(tiny_table, Rule.trivial(3), SizeWeight(), 2, 3.0)
        via_brs = brs(tiny_table, SizeWeight(), 2, 3.0)
        assert via_drill.rules == tuple(via_brs.rule_list.rules)

    def test_parent_not_among_children(self, retail):
        walmart = Rule.from_named(retail, Store="Walmart")
        result = rule_drilldown(retail, walmart, SizeWeight(), 3, 3.0)
        assert walmart not in result.rules

    def test_arity_mismatch(self, tiny_table):
        with pytest.raises(RuleError):
            rule_drilldown(tiny_table, Rule(["a"]), SizeWeight(), 2, 3.0)

    def test_paper_table3(self, retail):
        """The Walmart expansion reproduces Table 3 exactly."""
        walmart = Rule.from_named(retail, Store="Walmart")
        result = rule_drilldown(retail, walmart, SizeWeight(), 3, 3.0)
        got = {(str(e.rule), int(e.count)) for e in result.rule_list}
        assert got == {
            ("(Walmart, cookies, ?, ?)", 200),
            ("(Walmart, ?, CA-1, ?)", 150),
            ("(Walmart, ?, WA-5, ?)", 130),
        }

    def test_measure_changes_selection(self, measure_table):
        by_count = rule_drilldown(
            measure_table, Rule.trivial(3), SizeWeight(), 1, 2.0
        )
        by_sum = rule_drilldown(
            measure_table, Rule.trivial(3), SizeWeight(), 1, 2.0, measure="Sales"
        )
        assert by_count.rules != by_sum.rules


class TestStarDrillDown:
    def test_children_instantiate_clicked_column(self, tiny_table):
        result = star_drilldown(tiny_table, Rule.trivial(3), "C", SizeWeight(), 3, 3.0)
        c_idx = tiny_table.schema.index_of("C")
        assert result.rules
        for rule in result.rules:
            assert not rule.is_star(c_idx)

    def test_with_nontrivial_parent(self, tiny_table):
        parent = Rule(["a", STAR, STAR])
        result = star_drilldown(tiny_table, parent, 2, SizeWeight(), 2, 3.0)
        for rule in result.rules:
            assert parent.is_subrule_of(rule)
            assert not rule.is_star(2)

    def test_clicking_instantiated_column_raises(self, tiny_table):
        parent = Rule(["a", STAR, STAR])
        with pytest.raises(RuleError):
            star_drilldown(tiny_table, parent, 0, SizeWeight(), 2, 3.0)

    def test_column_by_name_and_index_agree(self, tiny_table):
        by_name = star_drilldown(tiny_table, Rule.trivial(3), "B", SizeWeight(), 2, 3.0)
        by_index = star_drilldown(tiny_table, Rule.trivial(3), 1, SizeWeight(), 2, 3.0)
        assert by_name.rules == by_index.rules

    def test_paper_fig2_education_values(self, marketing7):
        """Star expansion on Education of the Female rule (Figure 2)."""
        female = Rule.from_named(marketing7, Sex="Female")
        result = star_drilldown(marketing7, female, "Education", SizeWeight(), 4, 5.0)
        edu_idx = marketing7.schema.index_of("Education")
        sex_idx = marketing7.schema.index_of("Sex")
        assert len(result.rules) == 4
        for rule in result.rules:
            assert rule[sex_idx] == "Female"
            assert not rule.is_star(edu_idx)


class TestTraditionalDrillDown:
    def test_one_rule_per_distinct_value(self, tiny_table):
        result = traditional_drilldown(tiny_table, Rule.trivial(3), "C")
        assert len(result.rules) == 3  # p, q, r

    def test_sorted_by_count_descending(self, tiny_table):
        result = traditional_drilldown(tiny_table, Rule.trivial(3), "C")
        counts = [e.count for e in result.rule_list]
        assert counts == sorted(counts, reverse=True)

    def test_counts_partition_subtable(self, tiny_table):
        parent = Rule(["a", STAR, STAR])
        result = traditional_drilldown(tiny_table, parent, "B")
        assert sum(e.count for e in result.rule_list) == 5

    def test_k_truncates(self, tiny_table):
        result = traditional_drilldown(tiny_table, Rule.trivial(3), "C", k=2)
        assert len(result.rules) == 2

    def test_equivalent_via_brs(self, tiny_table):
        """§5.1: traditional drill-down = BRS with an indicator weight."""
        direct = traditional_drilldown(tiny_table, Rule.trivial(3), "B")
        via_brs = traditional_drilldown(tiny_table, Rule.trivial(3), "B", via_brs=True)
        assert set(direct.rules) == set(via_brs.rules)

    def test_via_brs_counts_match(self, tiny_table):
        direct = traditional_drilldown(tiny_table, Rule.trivial(3), "B")
        via_brs = traditional_drilldown(tiny_table, Rule.trivial(3), "B", via_brs=True)
        direct_counts = {e.rule: e.count for e in direct.rule_list}
        brs_counts = {e.rule: e.count for e in via_brs.rule_list}
        assert direct_counts == brs_counts

    def test_instantiated_column_raises(self, tiny_table):
        with pytest.raises(RuleError):
            traditional_drilldown(tiny_table, Rule(["a", STAR, STAR]), 0)

    def test_measure_ordering(self, measure_table):
        result = traditional_drilldown(
            measure_table, Rule.trivial(3), "Store", measure="Sales"
        )
        # T has 40 sales, W has 30, C has 1.
        assert [e.rule[0] for e in result.rule_list] == ["T", "W", "C"]
        assert [e.count for e in result.rule_list] == [40.0, 30.0, 1.0]


class TestNumericColumnGuards:
    def test_star_on_numeric_column_rejected(self, measure_table):
        """Numeric columns must be bucketized before star drill-down (§6.2)."""
        with pytest.raises(RuleError):
            star_drilldown(
                measure_table, Rule.trivial(3), "Sales", SizeWeight(), 2, 3.0
            )

    def test_star_works_after_bucketization(self, measure_table):
        from repro.table import bucketize

        bucketed = bucketize(measure_table, "Sales", n_buckets=2)
        result = star_drilldown(
            bucketed, Rule.trivial(3), "Sales", SizeWeight(), 2, 3.0
        )
        sales_idx = bucketed.schema.index_of("Sales")
        assert result.rules
        assert all(not r.is_star(sales_idx) for r in result.rules)
