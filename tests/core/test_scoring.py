"""Tests for Count/MCount/Score (paper §2.1) and Lemma 1."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Rule,
    RuleList,
    STAR,
    SizeWeight,
    aggregate,
    count,
    marginal_counts,
    score_list,
    score_set,
    sort_rules_by_weight,
    top_weights,
    tuple_measures,
)
from repro.core.exhaustive import enumerate_supported_rules
from repro.errors import RuleError
from repro.table import Table
from tests.conftest import random_table


class TestMeasures:
    def test_default_is_ones(self, tiny_table):
        m = tuple_measures(tiny_table)
        assert m.tolist() == [1.0] * 8

    def test_measure_column(self, measure_table):
        m = tuple_measures(measure_table, "Sales")
        assert m.tolist() == [10.0, 20.0, 5.0, 5.0, 30.0, 1.0]

    def test_negative_measure_rejected(self):
        table = Table.from_dict({"a": ["x"], "v": [-1.0]})
        with pytest.raises(RuleError):
            tuple_measures(table, "v")


class TestMarginalCounts:
    def test_disjoint_rules(self, tiny_table):
        rules = [Rule(["a", STAR, STAR]), Rule(["b", STAR, STAR])]
        assert marginal_counts(rules, tiny_table) == [5.0, 3.0]

    def test_overlapping_rules(self, tiny_table):
        rules = [Rule(["a", STAR, STAR]), Rule([STAR, "x", STAR])]
        # (?, x, ?) covers 4 rows, 3 already covered by (a, ?, ?).
        assert marginal_counts(rules, tiny_table) == [5.0, 1.0]

    def test_duplicate_rule_has_zero_marginal(self, tiny_table):
        rule = Rule(["a", STAR, STAR])
        assert marginal_counts([rule, rule], tiny_table) == [5.0, 0.0]

    def test_empty_list(self, tiny_table):
        assert marginal_counts([], tiny_table) == []

    def test_with_measures(self, measure_table):
        m = tuple_measures(measure_table, "Sales")
        rules = [Rule(["W", STAR, STAR]), Rule([STAR, "x", STAR])]
        # W covers sales 10+20; x covers 10+5+5 of which 10 is W's.
        assert marginal_counts(rules, measure_table, m) == [30.0, 10.0]


class TestScore:
    def test_score_list_formula(self, tiny_table):
        wf = SizeWeight()
        rules = [Rule(["a", "x", STAR]), Rule(["a", STAR, STAR])]
        # 2*3 + 1*(5-3) = 8
        assert score_list(rules, tiny_table, wf) == 8.0

    def test_score_set_sorts_by_weight(self, tiny_table):
        wf = SizeWeight()
        rules = [Rule(["a", STAR, STAR]), Rule(["a", "x", STAR])]
        # As a set, the size-2 rule is credited first: same 8.0.
        assert score_set(rules, tiny_table, wf) == 8.0
        # As a mis-ordered list, the size-1 rule absorbs the overlap: 5 + 2*0 = 5.
        assert score_list(rules, tiny_table, wf) == 5.0

    def test_score_equals_top_weight_sum(self, tiny_table):
        """Score(R) = Σ_t W(TOP(t, R)) (the proof-of-Lemma-1 identity)."""
        wf = SizeWeight()
        rules = [Rule(["a", "x", STAR]), Rule([STAR, STAR, "q"])]
        top = top_weights(rules, tiny_table, wf)
        assert score_set(rules, tiny_table, wf) == pytest.approx(top.sum())

    def test_lemma1_on_all_permutations(self, tiny_table):
        """Weight-descending order maximises list score (Lemma 1)."""
        wf = SizeWeight()
        rules = [
            Rule(["a", STAR, STAR]),
            Rule(["a", "x", STAR]),
            Rule([STAR, STAR, "q"]),
        ]
        best = score_set(rules, tiny_table, wf)
        for perm in itertools.permutations(rules):
            assert score_list(list(perm), tiny_table, wf) <= best + 1e-9


class TestTopWeights:
    def test_uncovered_tuples_zero(self, tiny_table):
        top = top_weights([Rule(["a", STAR, STAR])], tiny_table, SizeWeight())
        assert top.tolist() == [1, 1, 1, 1, 1, 0, 0, 0]

    def test_takes_max_weight(self, tiny_table):
        rules = [Rule(["a", STAR, STAR]), Rule(["a", "x", "p"])]
        top = top_weights(rules, tiny_table, SizeWeight())
        assert top.tolist() == [3, 3, 1, 1, 1, 0, 0, 0]


class TestRuleList:
    def test_sorted_descending_by_weight(self, tiny_table):
        wf = SizeWeight()
        rl = RuleList(
            [Rule(["a", STAR, STAR]), Rule(["a", "x", "p"]), Rule(["a", "x", STAR])],
            tiny_table,
            wf,
        )
        weights = [e.weight for e in rl]
        assert weights == sorted(weights, reverse=True)

    def test_entries_carry_count_and_mcount(self, tiny_table):
        wf = SizeWeight()
        rl = RuleList([Rule(["a", "x", STAR]), Rule(["a", STAR, STAR])], tiny_table, wf)
        assert rl[0].count == 3.0 and rl[0].mcount == 3.0
        assert rl[1].count == 5.0 and rl[1].mcount == 2.0

    def test_score_matches_score_set(self, tiny_table):
        wf = SizeWeight()
        rules = [Rule(["a", STAR, STAR]), Rule([STAR, "x", STAR])]
        rl = RuleList(rules, tiny_table, wf)
        assert rl.score == score_set(rules, tiny_table, wf)

    def test_scaled_entry(self, tiny_table):
        rl = RuleList([Rule(["a", STAR, STAR])], tiny_table, SizeWeight())
        scaled = rl[0].scaled(10.0)
        assert scaled.count == 50.0 and scaled.mcount == 50.0
        assert scaled.weight == rl[0].weight

    def test_len_iter_getitem(self, tiny_table):
        rl = RuleList([Rule(["a", STAR, STAR])], tiny_table, SizeWeight())
        assert len(rl) == 1
        assert list(rl)[0] is rl[0]


class TestSubmodularity:
    """Empirical check of Lemma 3 on random tables."""

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000))
    def test_diminishing_returns(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=20, n_columns=3, domain=2)
        wf = SizeWeight()
        pool = enumerate_supported_rules(table, max_size=2)
        if len(pool) < 4:
            return
        picks = rng.choice(len(pool), size=4, replace=False)
        a = {pool[picks[0]]}
        b = a | {pool[picks[1]], pool[picks[2]]}
        s = pool[picks[3]]
        gain_a = score_set(a | {s}, table, wf) - score_set(a, table, wf)
        gain_b = score_set(b | {s}, table, wf) - score_set(b, table, wf)
        assert gain_a >= gain_b - 1e-9

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000))
    def test_monotone_in_set(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=20, n_columns=3, domain=2)
        wf = SizeWeight()
        pool = enumerate_supported_rules(table, max_size=2)
        if len(pool) < 3:
            return
        picks = rng.choice(len(pool), size=3, replace=False)
        small = {pool[picks[0]]}
        large = small | {pool[picks[1]], pool[picks[2]]}
        assert score_set(large, table, wf) >= score_set(small, table, wf) - 1e-9


class TestAggregate:
    def test_aggregate_default_counts(self, tiny_table):
        assert aggregate(Rule(["a", STAR, STAR]), tiny_table) == 5.0

    def test_aggregate_with_measures(self, measure_table):
        m = tuple_measures(measure_table, "Sales")
        assert aggregate(Rule(["T", STAR, STAR]), measure_table, m) == 40.0

    def test_sort_rules_stable_on_ties(self, tiny_table):
        wf = SizeWeight()
        r1, r2 = Rule(["a", STAR, STAR]), Rule(["b", STAR, STAR])
        assert sort_rules_by_weight([r1, r2], wf) == [r1, r2]
        assert sort_rules_by_weight([r2, r1], wf) == [r2, r1]
