"""Tests for BRS (Algorithm 1) — greedy selection and its guarantee (§3.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Rule,
    STAR,
    SizeWeight,
    brs,
    brs_iter,
    optimal_rule_set,
    score_set,
    tuple_measures,
)
from tests.conftest import random_table


class TestBRSBasics:
    def test_k_rules_returned(self, tiny_table):
        result = brs(tiny_table, SizeWeight(), 2, 3.0)
        assert len(result.rules) == 2

    def test_k_zero(self, tiny_table):
        result = brs(tiny_table, SizeWeight(), 0, 3.0)
        assert result.rules == ()
        assert result.score == 0.0

    def test_stops_when_no_positive_marginal(self, tiny_table):
        # Only 8 distinct tuples; a huge k cannot be filled forever.
        result = brs(tiny_table, SizeWeight(), 100, 3.0)
        assert 0 < len(result.rules) < 100
        # Every pick added positive marginal value.
        assert all(p.marginal > 0 for p in result.picks)

    def test_picks_sorted_for_display(self, tiny_table):
        result = brs(tiny_table, SizeWeight(), 3, 3.0)
        weights = [e.weight for e in result.rule_list]
        assert weights == sorted(weights, reverse=True)

    def test_score_consistent_with_score_set(self, tiny_table):
        wf = SizeWeight()
        result = brs(tiny_table, wf, 3, 3.0)
        assert result.score == pytest.approx(score_set(result.rules, tiny_table, wf))

    def test_deterministic(self, tiny_table):
        a = brs(tiny_table, SizeWeight(), 3, 3.0)
        b = brs(tiny_table, SizeWeight(), 3, 3.0)
        assert a.rules == b.rules

    def test_incremental_prefix_property(self, tiny_table):
        """BRS is incremental (§6.1): k-rule output prefixes the (k+1)-rule one."""
        wf = SizeWeight()
        picks3 = brs(tiny_table, wf, 3, 3.0).picks
        picks4 = brs(tiny_table, wf, 4, 3.0).picks
        assert [p.rule for p in picks4[:3]] == [p.rule for p in picks3]

    def test_brs_iter_streams_same_picks(self, tiny_table):
        wf = SizeWeight()
        batch = brs(tiny_table, wf, 3, 3.0)
        streamed = []
        for result in brs_iter(tiny_table, wf, 3.0):
            streamed.append(result.rule)
            if len(streamed) == 3:
                break
        assert list(batch.picks[i].rule for i in range(3)) == streamed

    def test_no_duplicate_rules(self, marketing7):
        result = brs(marketing7, SizeWeight(), 6, 5.0)
        assert len(set(result.rules)) == len(result.rules)

    def test_stats_aggregated_across_picks(self, tiny_table):
        result = brs(tiny_table, SizeWeight(), 2, 3.0)
        assert result.stats.passes >= 2  # at least one pass per pick


class TestInitialTop:
    def test_seeding_blocks_low_weight_rules(self, tiny_table):
        wf = SizeWeight()
        seed = np.full(tiny_table.n_rows, 1.0)
        result = brs(tiny_table, wf, 3, 3.0, initial_top=seed)
        # Every selected rule must beat weight 1 somewhere.
        assert all(e.weight > 1.0 for e in result.rule_list)

    def test_seeding_reduces_marginals(self, tiny_table):
        wf = SizeWeight()
        plain = brs(tiny_table, wf, 1, 3.0)
        seeded = brs(tiny_table, wf, 1, 3.0, initial_top=np.full(8, 1.0))
        assert seeded.picks[0].marginal <= plain.picks[0].marginal

    def test_input_array_not_mutated(self, tiny_table):
        seed = np.zeros(8)
        brs(tiny_table, SizeWeight(), 2, 3.0, initial_top=seed)
        assert seed.tolist() == [0.0] * 8


class TestGreedyGuarantee:
    """Empirical (1 − (1−1/k)^k) bound against the exhaustive optimum."""

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 10_000), k=st.sampled_from([1, 2, 3]))
    def test_approximation_ratio(self, seed, k):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_rows=18, n_columns=3, domain=2)
        wf = SizeWeight()
        greedy = brs(table, wf, k, 3.0)
        optimal = optimal_rule_set(table, wf, k)
        if optimal.score == 0:
            return
        bound = 1.0 - (1.0 - 1.0 / k) ** k
        assert greedy.score >= bound * optimal.score - 1e-9

    def test_k1_greedy_is_optimal(self, tiny_table):
        """For k=1 greedy is exact (the bound is 1)."""
        wf = SizeWeight()
        greedy = brs(tiny_table, wf, 1, 3.0)
        optimal = optimal_rule_set(tiny_table, wf, 1)
        assert greedy.score == pytest.approx(optimal.score)


class TestSumAggregation:
    def test_sum_picks_high_value_rules(self, measure_table):
        m = tuple_measures(measure_table, "Sales")
        by_count = brs(measure_table, SizeWeight(), 1, 2.0)
        by_sum = brs(measure_table, SizeWeight(), 1, 2.0, measures=m)
        # By count, (T, x) covers 2 tuples; by sum, (T, y) is worth 30.
        assert by_count.rules != by_sum.rules
        assert by_sum.picks[0].marginal >= by_count.picks[0].marginal
