"""Tests for Algorithm 2 (find best marginal rule) — §3.5.

The central assertion: the a-priori search returns *exactly* the rule
brute force finds, for every weight function, seed, and ``top`` state,
with and without pruning.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BitsWeight,
    CallableWeight,
    ColumnIndicatorWeight,
    Rule,
    STAR,
    SizeMinusOneWeight,
    SizeWeight,
    StarConstrainedWeight,
    best_marginal_rule_brute,
    find_best_marginal_rule,
    top_weights,
    tuple_measures,
)
from repro.core.marginal import SearchStats
from repro.table import Table
from tests.conftest import random_table


class TestBasics:
    def test_first_pick_on_tiny_table(self, tiny_table):
        top = np.zeros(8)
        result = find_best_marginal_rule(tiny_table, SizeWeight(), top, 3.0)
        # Best W*count: (a,x,?) 2*3=6 vs (a,?,?) 5, (a,x,p) 3*2=6 — tie
        # broken toward the smaller rule.
        assert result is not None
        assert result.marginal == 6.0
        assert result.rule == Rule(["a", "x", STAR])

    def test_respects_existing_top(self, tiny_table):
        wf = SizeWeight()
        selected = [Rule(["a", "x", STAR])]
        top = top_weights(selected, tiny_table, wf)
        result = find_best_marginal_rule(tiny_table, wf, top, 3.0)
        assert result is not None
        # Best remaining marginal; (a,x,p) gains only (3-2)*2=2,
        # (a,?,q) gains 2*... rows 2..4: (a,?,q) covers rows with top 2,1,1.
        brute = best_marginal_rule_brute(tiny_table, wf, top, 3.0)
        assert result.rule == brute[0]
        assert result.marginal == pytest.approx(brute[1])

    def test_none_when_all_covered_at_max_weight(self, tiny_table):
        top = np.full(8, 3.0)
        assert find_best_marginal_rule(tiny_table, SizeWeight(), top, 3.0) is None

    def test_mw_zero_returns_none(self, tiny_table):
        top = np.zeros(8)
        assert find_best_marginal_rule(tiny_table, SizeWeight(), top, 0.0) is None

    def test_mw_restricts_weight(self, tiny_table):
        top = np.zeros(8)
        result = find_best_marginal_rule(tiny_table, SizeWeight(), top, 1.0)
        assert result is not None
        assert result.weight <= 1.0
        assert result.rule == Rule(["a", STAR, STAR])

    def test_empty_table(self):
        table = Table.from_rows(["A"], [])
        result = find_best_marginal_rule(table, SizeWeight(), np.zeros(0), 1.0)
        assert result is None

    def test_bad_top_length(self, tiny_table):
        from repro.errors import RuleError

        with pytest.raises(RuleError):
            find_best_marginal_rule(tiny_table, SizeWeight(), np.zeros(3), 1.0)

    def test_max_rule_size_caps_passes(self, tiny_table):
        top = np.zeros(8)
        result = find_best_marginal_rule(
            tiny_table, SizeWeight(), top, 3.0, max_rule_size=1
        )
        assert result is not None
        assert result.rule.size == 1

    def test_stats_populated(self, tiny_table):
        top = np.zeros(8)
        result = find_best_marginal_rule(tiny_table, SizeWeight(), top, 3.0)
        assert result is not None
        stats = result.stats
        assert stats.passes >= 1
        assert stats.candidates_generated > 0
        assert stats.rows_scanned > 0

    def test_count_matches_exact(self, tiny_table):
        top = np.zeros(8)
        result = find_best_marginal_rule(tiny_table, SizeWeight(), top, 3.0)
        from repro.core import count

        assert result.count == count(result.rule, tiny_table)


class TestSumAggregation:
    def test_measure_weighted_marginal(self, measure_table):
        m = tuple_measures(measure_table, "Sales")
        top = np.zeros(6)
        result = find_best_marginal_rule(measure_table, SizeWeight(), top, 2.0, measures=m)
        brute = best_marginal_rule_brute(measure_table, SizeWeight(), top, 2.0, measures=m)
        assert result.rule == brute[0]
        assert result.marginal == pytest.approx(brute[1])

    def test_zero_measure_tuples_ignored(self):
        table = Table.from_dict({"a": ["x", "y"], "v": [0.0, 5.0]})
        m = tuple_measures(table, "v")
        result = find_best_marginal_rule(table, SizeWeight(), np.zeros(2), 1.0, measures=m)
        assert result.rule == Rule(["y", STAR])
        assert result.marginal == 5.0


class TestStarConstrained:
    def test_returns_rule_with_column_instantiated(self, tiny_table):
        wf = StarConstrainedWeight(SizeWeight(), 2)
        top = np.zeros(8)
        result = find_best_marginal_rule(tiny_table, wf, top, 3.0)
        assert result is not None
        assert not result.rule.is_star(2)

    def test_matches_brute_force(self, tiny_table):
        wf = StarConstrainedWeight(SizeWeight(), 1)
        top = np.zeros(8)
        fast = find_best_marginal_rule(tiny_table, wf, top, 3.0)
        brute = best_marginal_rule_brute(tiny_table, wf, top, 3.0)
        assert fast.rule == brute[0]
        assert fast.marginal == pytest.approx(brute[1])


class TestSlowPathWeights:
    """Value-dependent weights exercise the non-column-set path."""

    def test_value_dependent_weight(self, tiny_table):
        # Rules mentioning the value "x" weigh double.
        def weigh(rule: Rule) -> float:
            bonus = 2.0 if any(v == "x" for _, v in rule.items()) else 1.0
            return rule.size * bonus

        wf = CallableWeight(weigh, name="x-bonus")
        top = np.zeros(8)
        fast = find_best_marginal_rule(tiny_table, wf, top, 6.0)
        brute = best_marginal_rule_brute(tiny_table, wf, top, 6.0)
        assert fast.rule == brute[0]
        assert fast.marginal == pytest.approx(brute[1])


class TestPruningInvariance:
    def test_same_result_without_pruning(self, tiny_table):
        top = np.zeros(8)
        pruned = find_best_marginal_rule(tiny_table, SizeWeight(), top, 3.0, prune=True)
        unpruned = find_best_marginal_rule(tiny_table, SizeWeight(), top, 3.0, prune=False)
        assert pruned.rule == unpruned.rule
        assert pruned.marginal == unpruned.marginal

    def test_pruning_reduces_work_on_real_data(self, marketing7):
        top = np.zeros(marketing7.n_rows)
        pruned = find_best_marginal_rule(marketing7, SizeWeight(), top, 5.0, prune=True)
        unpruned = find_best_marginal_rule(marketing7, SizeWeight(), top, 5.0, prune=False)
        assert pruned.rule == unpruned.rule
        assert pruned.stats.rows_scanned < unpruned.stats.rows_scanned


@settings(deadline=None, max_examples=30)
@given(
    seed=st.integers(0, 10_000),
    mw=st.sampled_from([1.0, 2.0, 3.0, 4.0]),
    weighting=st.sampled_from(["size", "bits", "size_minus_one", "indicator"]),
    with_top=st.booleans(),
)
def test_matches_brute_force_randomised(seed, mw, weighting, with_top):
    """Algorithm 2 ≡ brute force across random tables and configurations."""
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_rows=25, n_columns=3, domain=3)
    wf = {
        "size": SizeWeight(),
        "bits": BitsWeight.for_table(table),
        "size_minus_one": SizeMinusOneWeight(),
        "indicator": ColumnIndicatorWeight(1),
    }[weighting]
    if with_top:
        seed_rule = Rule.from_items(3, {0: "v0"})
        top = top_weights([seed_rule], table, wf)
    else:
        top = np.zeros(table.n_rows)
    fast = find_best_marginal_rule(table, wf, top, mw)
    brute = best_marginal_rule_brute(table, wf, top, mw)
    if brute is None:
        assert fast is None
    else:
        assert fast is not None
        # Marginals must agree exactly; the rule may differ only on ties.
        assert fast.marginal == pytest.approx(brute[1])


class TestSearchStats:
    def test_merge_accumulates(self):
        a = SearchStats(passes=1, candidates_generated=2, rows_scanned=10)
        b = SearchStats(passes=2, candidates_generated=3, rows_scanned=5)
        a.merge(b)
        assert a.passes == 3
        assert a.candidates_generated == 5
        assert a.rows_scanned == 15
