"""Tests for the Max-Coverage reduction (Lemma 2) — executed constructively."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import brs, optimal_rule_set
from repro.errors import ReproError
from repro.hardness import (
    MCPInstance,
    exact_mcp,
    greedy_mcp,
    mcp_to_table,
    mcp_weight_function,
    rules_to_subset_choice,
)


@pytest.fixture
def small_instance() -> MCPInstance:
    return MCPInstance.of(
        universe_size=6,
        subsets=[{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}],
        k=2,
    )


class TestMCPSolvers:
    def test_greedy_on_small_instance(self, small_instance):
        chosen, covered = greedy_mcp(small_instance)
        assert len(chosen) == 2
        assert covered == 6  # {0,1,2} ∪ {3,4,5}

    def test_exact_on_small_instance(self, small_instance):
        chosen, covered = exact_mcp(small_instance)
        assert covered == 6

    def test_greedy_respects_k(self):
        inst = MCPInstance.of(4, [{0}, {1}, {2}, {3}], k=2)
        chosen, covered = greedy_mcp(inst)
        assert len(chosen) == 2 and covered == 2

    def test_greedy_stops_when_nothing_to_gain(self):
        inst = MCPInstance.of(2, [{0, 1}, {0}, {1}], k=3)
        chosen, covered = greedy_mcp(inst)
        assert covered == 2
        assert len(chosen) == 1  # remaining subsets add nothing

    def test_invalid_instance(self):
        with pytest.raises(ReproError):
            MCPInstance.of(2, [{5}], k=1)

    def test_coverage_helper(self, small_instance):
        assert small_instance.coverage([0, 1]) == 4

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000))
    def test_greedy_bound_vs_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        subsets = [set(rng.choice(n, size=rng.integers(1, 4), replace=False).tolist()) for _ in range(5)]
        inst = MCPInstance.of(n, subsets, k=2)
        _, greedy_cov = greedy_mcp(inst)
        _, exact_cov = exact_mcp(inst)
        assert greedy_cov >= (1 - (1 - 1 / 2) ** 2) * exact_cov - 1e-9


class TestReduction:
    def test_table_shape(self, small_instance):
        table = mcp_to_table(small_instance)
        assert table.n_rows == 6
        assert table.n_columns == 4
        # Element 2 belongs to S0 and S1.
        assert table.row(2) == (1, 1, 0, 0)

    def test_weight_function(self):
        from repro.core import Rule, STAR

        wf = mcp_weight_function()
        assert wf.weight(Rule([1, STAR, STAR, STAR])) == 1.0
        assert wf.weight(Rule([0, STAR, STAR, STAR])) == 0.0
        assert wf.weight(Rule([0, 1, STAR, STAR])) == 1.0
        assert wf.weight(Rule.trivial(4)) == 0.0

    def test_greedy_rule_selection_equals_greedy_mcp(self, small_instance):
        """Lemma 2, run forward: BRS on the reduced table = greedy MCP."""
        table = mcp_to_table(small_instance)
        wf = mcp_weight_function()
        result = brs(table, wf, small_instance.k, 1.0)
        chosen = rules_to_subset_choice(result.rules)
        rule_coverage = small_instance.coverage(chosen)
        _, greedy_cov = greedy_mcp(small_instance)
        assert rule_coverage == greedy_cov
        # Score equals covered-element count (weight 1 per covered tuple).
        assert result.score == pytest.approx(greedy_cov)

    def test_optimal_rule_score_equals_optimal_coverage(self):
        """Score maximisation ≡ MCP on a tiny instance (both exhaustive)."""
        inst = MCPInstance.of(4, [{0, 1}, {1, 2}, {2, 3}], k=2)
        table = mcp_to_table(inst)
        wf = mcp_weight_function()
        optimal_rules = optimal_rule_set(table, wf, inst.k, max_size=1)
        _, exact_cov = exact_mcp(inst)
        assert optimal_rules.score == pytest.approx(exact_cov)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000))
    def test_reduction_equivalence_randomised(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        subsets = [
            set(rng.choice(n, size=rng.integers(1, 4), replace=False).tolist())
            for _ in range(4)
        ]
        inst = MCPInstance.of(n, subsets, k=2)
        table = mcp_to_table(inst)
        wf = mcp_weight_function()
        optimal_rules = optimal_rule_set(table, wf, inst.k, max_size=2)
        _, exact_cov = exact_mcp(inst)
        assert optimal_rules.score == pytest.approx(exact_cov)
