"""Tests for the knapsack reduction (Lemma 4) — executed constructively."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.hardness import (
    KnapsackInstance,
    allocation_to_knapsack_choice,
    knapsack_to_allocation,
    solve_knapsack_dp,
    solve_knapsack_exhaustive,
)
from repro.sampling import allocate_dp


class TestKnapsackSolvers:
    def test_dp_small_instance(self):
        inst = KnapsackInstance(weights=(2, 3, 4), values=(3.0, 4.0, 5.0), capacity=5)
        chosen, value = solve_knapsack_dp(inst)
        assert value == 7.0
        assert sorted(chosen) == [0, 1]

    def test_dp_zero_capacity(self):
        inst = KnapsackInstance((1,), (10.0,), 0)
        chosen, value = solve_knapsack_dp(inst)
        assert chosen == [] and value == 0.0

    def test_dp_takes_all_when_ample(self):
        inst = KnapsackInstance((1, 1), (1.0, 2.0), 10)
        chosen, value = solve_knapsack_dp(inst)
        assert value == 3.0

    def test_validation(self):
        with pytest.raises(ReproError):
            KnapsackInstance((0,), (1.0,), 5)
        with pytest.raises(ReproError):
            KnapsackInstance((1,), (-1.0,), 5)
        with pytest.raises(ReproError):
            KnapsackInstance((1, 2), (1.0,), 5)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_dp_matches_exhaustive(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        inst = KnapsackInstance(
            weights=tuple(int(w) for w in rng.integers(1, 8, n)),
            values=tuple(float(v) for v in rng.integers(0, 20, n)),
            capacity=int(rng.integers(0, 15)),
        )
        _, dp_value = solve_knapsack_dp(inst)
        _, exact_value = solve_knapsack_exhaustive(inst)
        assert dp_value == pytest.approx(exact_value)


class TestLemma4Reduction:
    def test_structure(self):
        inst = KnapsackInstance((2, 3), (5.0, 4.0), 4)
        groups, memory = knapsack_to_allocation(inst, min_sample_size=1000)
        assert len(groups) == 2
        for group in groups:
            assert len(group.leaves) == 2
            must, opt = group.leaves
            assert must.selectivity == 1.0
            assert 0.0 < opt.selectivity < 1.0
        assert memory > 2 * 1000  # m·minSS plus scaled capacity

    def test_mandatory_leaves_always_satisfied(self):
        inst = KnapsackInstance((2, 3), (5.0, 4.0), 4)
        groups, memory = knapsack_to_allocation(inst, min_sample_size=1000)
        result = allocate_dp(groups, memory, 1000)
        satisfied = set(result.satisfied)
        assert {"r0_must", "r1_must"} <= satisfied

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000))
    def test_allocation_solves_knapsack(self, seed):
        """Solving the reduced allocation recovers a knapsack optimum."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        inst = KnapsackInstance(
            weights=tuple(int(w) for w in rng.integers(1, 6, n)),
            values=tuple(float(v) for v in rng.integers(1, 10, n)),
            capacity=int(rng.integers(1, 10)),
        )
        groups, memory = knapsack_to_allocation(inst, min_sample_size=1000)
        result = allocate_dp(groups, memory, 1000)
        chosen = allocation_to_knapsack_choice(groups, result.sizes, 1000)
        _, optimal_value = solve_knapsack_dp(inst)
        achieved = inst.total_value(chosen)
        # The reduction uses ceil-ed integer sizes, so allow one
        # marginal object of slack relative to the optimum.
        slack = max((v for v in inst.values), default=0.0)
        assert achieved >= optimal_value - slack - 1e-9
        # And the chosen set must respect the (scaled) capacity closely.
        assert inst.total_weight(chosen) <= inst.capacity + max(inst.weights)
