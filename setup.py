"""Setup shim for environments without PEP 660 editable-install support.

``pip install -e .`` requires the ``wheel`` package to build editable
wheels with older setuptools; fully offline environments can instead run
``python setup.py develop --no-deps`` (or add ``src/`` to a ``.pth``
file), which needs nothing beyond setuptools itself.
"""

from setuptools import setup

setup()
