"""Quickstart: smart drill-down in ten lines.

Builds a small sales table, explores it interactively, and prints the
paper-style rule tables.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DrillDownSession, Rule, Table


def main() -> None:
    # Any iterable of rows works; columns are dictionary-encoded.
    table = Table.from_dict(
        {
            "store": ["acme"] * 6 + ["bazaar"] * 3 + ["corner"] * 3,
            "product": ["tea", "tea", "tea", "coffee", "coffee", "scones",
                        "tea", "coffee", "coffee", "tea", "soap", "soap"],
            "city": ["york", "york", "leeds", "york", "york", "bath",
                     "york", "leeds", "leeds", "bath", "bath", "bath"],
        }
    )

    # k rules per expansion; mw bounds the rule weight the search considers.
    session = DrillDownSession(table, k=3, mw=3.0)

    print("Before any drill-down (the paper's Table 1):")
    print(session.to_text())
    print()

    # Click the trivial rule: smart drill-down picks the best rule list.
    session.expand(session.root.rule)
    print("After one smart drill-down:")
    print(session.to_text())
    print()

    # Drill into the best rule to refine it further.
    best = session.root.children[0]
    session.expand(best.rule)
    print(f"After expanding {best.rule}:")
    print(session.to_text())
    print()

    # Star drill-down: force the 'city' column open on the root.
    session.collapse(session.root.rule)
    session.expand_star(session.root.rule, "city")
    print("Star drill-down on the city column:")
    print(session.to_text())


if __name__ == "__main__":
    main()
