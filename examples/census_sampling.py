"""Large-table exploration with dynamic sampling (paper Section 4).

Puts the synthetic Census table behind the simulated disk, explores it
through the SampleHandler, and prints the access-path telemetry the
paper's response-time story is built on: the first expansion pays one
streaming pass; prefetching makes follow-up drill-downs free.

Run with::

    python examples/census_sampling.py [rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import DiskTable, DrillDownSession
from repro.datasets import generate_census


def main(n_rows: int = 300_000) -> None:
    print(f"generating synthetic Census table ({n_rows:,} rows x 7 columns)...")
    census = generate_census(n_rows, n_columns=7)
    disk = DiskTable(census)

    session = DrillDownSession(
        disk,
        k=4,
        mw=5.0,
        memory_capacity=50_000,   # M: the paper's 50000-tuple budget
        min_sample_size=5_000,    # minSS
        rng=np.random.default_rng(0),
        prefetch=True,
    )

    print("\nFirst expansion (pays one Create pass over the table):")
    session.expand(session.root.rule)
    print(session.to_text())

    child = session.root.children[0]
    print(f"\nDrilling into {child.rule} (served from memory by prefetch):")
    session.expand(child.rule)
    print(session.to_text())

    print("\nExpansion telemetry:")
    header = f"{'kind':<6} {'sample via':<8} {'sample size':>11} {'scale':>8} {'io (sim s)':>11} {'wall (s)':>9}"
    print(header)
    print("-" * len(header))
    for record in session.history:
        print(
            f"{record.kind:<6} {record.sample_method:<8} {record.sample_size:>11,} "
            f"{record.scale:>8.1f} {record.simulated_io_seconds:>11.3f} "
            f"{record.wall_seconds:>9.3f}"
        )

    stats = disk.io_stats
    print(
        f"\ndisk totals: {stats.scans_completed} scans, {stats.pages_read:,} pages, "
        f"{stats.tuples_read:,} tuples, {stats.simulated_seconds:.2f} simulated seconds"
    )
    assert session.handler is not None
    print(f"sample memory in use: {session.handler.memory_used():,} / 50,000 tuples")
    methods = [e.method for e in session.handler.events]
    print(f"handler access methods: {methods}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300_000)
