"""A multi-tenant serving client: the SERVING.md walkthrough, in code.

Spawns the HTTP serving tier in-process (no separate terminal needed),
registers the paper's retail table, and drives two tenants through it
with plain ``urllib`` — alice explores interactively while bob's
session demonstrates cross-tenant context sharing (his expansions are
served from the lattice alice's built).  Run with::

    PYTHONPATH=src python examples/serving_client.py

To point the client at an already-running tier instead, start one with
``python -m repro.serving.http --port 8080`` and pass the base URL::

    PYTHONPATH=src python examples/serving_client.py http://127.0.0.1:8080
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request


def call(base: str, method: str, path: str, body: dict | None = None) -> dict:
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def explore(base: str, tenant: str) -> str:
    """One tenant's session: expand the root, drill into Walmart, render."""
    session = call(base, "POST", "/sessions",
                   {"table": "retail", "tenant": tenant, "k": 3, "mw": 3.0})
    sid = session["session_id"]
    root = [None] * len(session["columns"])

    print(f"\n=== {tenant}: smart drill-down on the root (Table 2) ===")
    for child in call(base, "POST", f"/sessions/{sid}/expand", {"rule": root})["children"]:
        print(f"  {child['rule']}  count={child['count']:.0f}")

    walmart = ["Walmart", None, None, None]
    print(f"=== {tenant}: drilling into Walmart (Table 3) ===")
    for child in call(base, "POST", f"/sessions/{sid}/expand", {"rule": walmart})["children"]:
        print(f"  {child['rule']}  count={child['count']:.0f}")

    print(call(base, "GET", f"/sessions/{sid}/render")["text"])
    return sid


def main() -> None:
    if len(sys.argv) > 1:
        base = sys.argv[1].rstrip("/")
        httpd = tier = None
    else:
        from repro.serving import DrillDownServer
        from repro.serving.http import serve

        tier = DrillDownServer(tenant_budget=60_000)
        httpd = serve(tier, port=0)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        print(f"spawned serving tier at {base}")

    call(base, "POST", "/tables", {"name": "retail", "dataset": "retail"})
    explore(base, "alice")
    explore(base, "bob")  # same config: served from alice's lattice

    stats = call(base, "GET", "/stats")
    contexts = stats.get("contexts") or {}
    print("=== tier stats ===")
    print(f"  sessions: {stats['registry']['per_tenant']}")
    print(f"  context store: {contexts.get('hits', 0)} hits, "
          f"{contexts.get('prototypes', 0)} shared lattices")

    if httpd is not None:
        httpd.shutdown()
        tier.close()


if __name__ == "__main__":
    main()
