"""The paper's opening scenario, verbatim (Example 1 setup).

"Suppose an analyst queries for tuples where Sales were higher than
some threshold, in order to find the best selling products.  If the
resulting table has many tuples, the analyst can use traditional drill
down to explore it … Instead, when the analyst uses smart drill down,
she obtains Table 2."

This example runs the entry query with the predicate DSL, contrasts
traditional drill-down (every store listed) with smart drill-down
(three rules), and shows the group-by substrate both build on.

Run with::

    python examples/sales_threshold.py
"""

from __future__ import annotations

from repro import DrillDownSession, Rule
from repro.baselines import full_drilldown_size
from repro.datasets import generate_retail
from repro.table import col, group_by


def main() -> None:
    retail = generate_retail()

    # The analyst's entry query: high-sales tuples only.
    threshold = 200.0
    hot = (col("Sales") > threshold).apply(retail)
    print(f"entry query: Sales > {threshold:.0f} → {hot.n_rows:,} of {retail.n_rows:,} tuples\n")

    # Traditional drill-down floods the analyst with one row per store.
    n_stores = full_drilldown_size(hot, "Store")
    print(f"traditional drill-down on Store would display {n_stores} rows:")
    for row in group_by(hot, "Store", limit=5):
        print(f"  {row.key[0]:<10} {row.count:>5}")
    print("  ... and so on — 'too many results' (paper §1)\n")

    # Smart drill-down shows the k most interesting rules instead.
    session = DrillDownSession(hot, k=3, mw=3.0)
    session.expand(session.root.rule)
    print("smart drill-down (k=3):")
    print(session.to_text())
    print()

    # And digging into the biggest rule keeps the display small.
    best = max(session.root.children, key=lambda n: n.count)
    session.expand(best.rule)
    print(f"after expanding {best.rule}:")
    print(session.to_text())


if __name__ == "__main__":
    main()
