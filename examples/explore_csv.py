"""Explore your own CSV with the interactive terminal REPL.

Loads a CSV (or the bundled retail example when none is given),
bucketizes numeric columns, and drops into the explorer loop — the
terminal equivalent of the paper's web prototype.

Run with::

    python examples/explore_csv.py [path/to/file.csv]

then type ``help`` at the prompt.
"""

from __future__ import annotations

import sys

from repro import DrillDownSession, bucketize, read_csv
from repro.datasets import generate_retail
from repro.ui import ExplorerREPL


def main() -> None:
    if len(sys.argv) > 1:
        table = read_csv(sys.argv[1])
        print(f"loaded {table.n_rows:,} rows x {table.n_columns} columns from {sys.argv[1]}")
    else:
        table = generate_retail()
        print("no CSV given; exploring the bundled 6000-row retail example")

    # Smart drill-down mines categorical columns; bucketize numerics (§6.2).
    for idx in list(table.schema.numeric_indexes):
        name = table.schema[idx].name
        table = bucketize(table, name, n_buckets=8, method="depth")
        print(f"bucketized numeric column {name!r} into 8 equi-depth ranges")

    session = DrillDownSession(table, k=4, mw=4.0)
    ExplorerREPL(session).run()


if __name__ == "__main__":
    main()
