"""Tuning what "interesting" means: the weighting-function toolbox (§2.2, §6.1).

Shows how analysts steer smart drill-down by swapping weight functions:

* Size vs Bits on a table with a dominant binary column,
* boosting / ignoring columns with a parametric weighting,
* a user-defined callable weighting (validated against the §2.2
  contracts),
* traditional drill-down recovered as a weighting special case (§5.1).

Run with::

    python examples/custom_weights.py
"""

from __future__ import annotations

from repro import (
    BitsWeight,
    CallableWeight,
    ColumnIndicatorWeight,
    ParametricWeight,
    Rule,
    SizeWeight,
    brs,
    traditional_drilldown,
)
from repro.core import validate_weight_function
from repro.datasets import generate_marketing
from repro.ui import render_rule_list


def main() -> None:
    table = generate_marketing().select(
        ["Income", "Sex", "MaritalStatus", "Age", "Education", "Occupation", "TimeInBayArea"]
    )

    print("=" * 72)
    print("Size weighting (the default): every instantiated column counts 1")
    print("=" * 72)
    print(render_rule_list(table.column_names, brs(table, SizeWeight(), 4, 5.0).rule_list))
    print()

    print("=" * 72)
    print("Bits weighting: binary columns (Sex) convey little information")
    print("=" * 72)
    bits = BitsWeight.for_table(table)
    print(render_rule_list(table.column_names, brs(table, bits, 4, 20.0).rule_list))
    print()

    print("=" * 72)
    print("Column preferences: boost Occupation 3x, ignore Sex entirely")
    print("=" * 72)
    weights = [1.0] * table.n_columns
    weights[table.schema.index_of("Occupation")] = 3.0
    weights[table.schema.index_of("Sex")] = 0.0
    preferring = ParametricWeight(weights, exponent=1.0)
    print(render_rule_list(table.column_names, brs(table, preferring, 4, 6.0).rule_list))
    print()

    print("=" * 72)
    print("A custom callable: pay only for demographic columns, quadratically")
    print("=" * 72)
    demo_cols = {table.schema.index_of(c) for c in ("MaritalStatus", "Age", "Education")}

    def demographic_squared(rule: Rule) -> float:
        hits = sum(1 for idx, _ in rule.items() if idx in demo_cols)
        return float(hits**2)

    custom = CallableWeight(demographic_squared, name="demographic^2")
    validate_weight_function(custom, table)  # non-negative + monotone
    print(render_rule_list(table.column_names, brs(table, custom, 4, 9.0).rule_list))
    print()

    print("=" * 72)
    print("Traditional drill-down on Age = indicator weighting + k=|Age| (§5.1)")
    print("=" * 72)
    root = Rule.trivial(table.n_columns)
    result = traditional_drilldown(table, root, "Age", via_brs=True)
    print(render_rule_list(table.column_names, result.rule_list))
    indicator = ColumnIndicatorWeight(table.schema.index_of("Age"))
    print(f"\n(indicator weight of the top rule: {indicator.weight(result.rules[0])})")


if __name__ == "__main__":
    main()
