"""The Section 5.1 qualitative study on the Marketing survey.

Reproduces Figures 1–4, 6 and 7 as text tables, then walks through the
paper's parameter-guidance machinery (§6.1): estimating ``mw`` from a
pilot sample, the ``minSS`` recommendation, and the KKT analysis of the
parametric weight family.

Run with::

    python examples/marketing_survey.py
"""

from __future__ import annotations

from repro.core import SizeWeight, estimate_mw, recommend_min_sample_size
from repro.core.params import exponent_for_target_fraction, kkt_analysis
from repro.experiments import (
    marketing_first_seven,
    run_fig1_empty_rule,
    run_fig2_star_education,
    run_fig3_rule_expansion,
    run_fig4_traditional_age,
    run_fig6_bits,
    run_fig7_size_minus_one,
)
from repro.table import compute_stats


def show(result) -> None:
    print("=" * 72)
    print(result.name)
    print("=" * 72)
    print(result.text)
    print()


def main() -> None:
    for runner in (
        run_fig1_empty_rule,
        run_fig2_star_education,
        run_fig3_rule_expansion,
        run_fig4_traditional_age,
        run_fig6_bits,
        run_fig7_size_minus_one,
    ):
        show(runner())

    # --- Parameter guidance (§6.1 / §4.2) -------------------------------
    table = marketing_first_seven()
    stats = compute_stats(table)

    print("=" * 72)
    print("Parameter guidance")
    print("=" * 72)
    mw = estimate_mw(table, SizeWeight(), k=4, sample_size=1000)
    print(f"estimated mw from a 1000-row pilot (2x safety): {mw:.0f}")
    minss = recommend_min_sample_size(table, rho=10.0)
    print(f"recommended minSS (rho=10): {minss:.0f} tuples")

    # KKT analysis of the parametric family on this table's statistics.
    fs = [c.top_fraction for c in stats.columns]
    ws = [1.0] * len(fs)  # Size weighting
    analysis = kkt_analysis(fs, ws, exponent=1.0)
    names = [c.name for c in stats.columns]
    preferred = [names[i] for i in analysis.predicted_columns[:3]]
    print(f"KKT-preferred columns under Size weighting: {preferred}")
    print(
        "predicted instantiated fraction at k=1: "
        f"{analysis.instantiated_fraction:.2f}"
    )
    k_for_half = exponent_for_target_fraction(fs, 0.5)
    print(f"exponent k making the top rule instantiate half the columns: {k_for_half:.2f}")


if __name__ == "__main__":
    main()
