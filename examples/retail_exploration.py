"""The paper's Example 1, end to end (Tables 1–3 + the Sum variant).

Reproduces the department-store interaction transcript:

1. the initial trivial summary (Table 1),
2. the first smart drill-down (Table 2: Target/bicycles, comforters in
   MA-3, Walmart overall),
3. expanding the Walmart rule (Table 3: cookies, CA-1, WA-5),
4. the same exploration driven by Sum(Sales) instead of Count (§6.3).

Run with::

    python examples/retail_exploration.py
"""

from __future__ import annotations

from repro import DrillDownSession, Rule
from repro.datasets import generate_retail


def main() -> None:
    retail = generate_retail()
    session = DrillDownSession(retail, k=3, mw=3.0)

    print("=" * 72)
    print("Table 1 — the initial summary")
    print("=" * 72)
    print(session.to_text())
    print()

    session.expand(session.root.rule)
    print("=" * 72)
    print("Table 2 — after the first smart drill-down")
    print("=" * 72)
    print(session.to_text())
    print()

    walmart = Rule.from_named(retail, Store="Walmart")
    session.expand(walmart)
    print("=" * 72)
    print("Table 3 — after expanding the Walmart rule")
    print("=" * 72)
    print(session.to_text())
    print()

    # Collapse is the paper's roll-up: clicking the expanded rule again.
    session.collapse(walmart)
    print("After collapsing the Walmart rule (roll-up):")
    print(session.to_text())
    print()

    # §6.3: Sum aggregation over the Sales measure column.
    sum_session = DrillDownSession(retail, k=3, mw=3.0, measure="Sales")
    sum_session.expand(sum_session.root.rule)
    print("=" * 72)
    print("Sum(Sales) variant — counts are total sales, not tuple counts")
    print("=" * 72)
    print(sum_session.to_text())


if __name__ == "__main__":
    main()
