"""Exhaustive (exponential) optimisers used as ground truth in tests.

Problem 3 is NP-hard (Lemma 2), so these brute-force solvers only run
on deliberately tiny tables.  They provide:

* :func:`enumerate_supported_rules` — every rule with positive support,
  i.e. every projection of every distinct tuple (the search space of
  Problem 3 restricted to rules that can have positive ``MCount``);
* :func:`best_marginal_rule_brute` — the exact best marginal rule, used
  to validate Algorithm 2;
* :func:`optimal_rule_set` — the exact optimal size-≤k rule set, used
  to validate the greedy ``1 − 1/e`` bound empirically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import RuleError
from repro.core.rule import Rule, STAR, cover_mask
from repro.core.scoring import score_set, sort_rules_by_weight
from repro.core.weights import WeightFunction
from repro.table.table import Table

__all__ = [
    "enumerate_supported_rules",
    "best_marginal_rule_brute",
    "OptimalSet",
    "optimal_rule_set",
]

#: Safety valve: refuse brute-force enumeration beyond this many rules.
MAX_ENUMERATED_RULES = 200_000


def enumerate_supported_rules(
    table: Table,
    *,
    max_size: int | None = None,
    include_trivial: bool = False,
) -> list[Rule]:
    """All rules with positive support over the categorical columns.

    A rule has positive support iff it is a projection of some tuple,
    so the enumeration walks distinct tuples and emits every subset of
    their categorical column values, deduplicated.
    """
    cat_idx = table.schema.categorical_indexes
    limit = len(cat_idx) if max_size is None else min(max_size, len(cat_idx))
    seen: set[Rule] = set()
    out: list[Rule] = []
    if include_trivial:
        trivial = Rule.trivial(table.n_columns)
        seen.add(trivial)
        out.append(trivial)
    for row in {tuple(table.row(i)) for i in range(table.n_rows)}:
        for size in range(1, limit + 1):
            for cols in itertools.combinations(cat_idx, size):
                rule = Rule.from_items(table.n_columns, {c: row[c] for c in cols})
                if rule not in seen:
                    seen.add(rule)
                    out.append(rule)
                    if len(out) > MAX_ENUMERATED_RULES:
                        raise RuleError(
                            "rule enumeration exceeded MAX_ENUMERATED_RULES; "
                            "use a smaller table for brute-force solvers"
                        )
    # Canonical deterministic order: by size, then by repr.
    out.sort(key=lambda r: (r.size, repr(r)))
    return out


def best_marginal_rule_brute(
    table: Table,
    wf: WeightFunction,
    top: np.ndarray,
    mw: float,
    *,
    measures: np.ndarray | None = None,
    max_size: int | None = None,
) -> tuple[Rule, float] | None:
    """Exact best marginal rule by scoring every supported rule.

    Mirrors the contract of
    :func:`repro.core.marginal.find_best_marginal_rule`, including the
    weight ≤ ``mw`` restriction and the deterministic tie-break
    (marginal desc, size asc, repr asc).  Returns ``(rule, marginal)``
    or ``None`` when nothing has positive marginal value.
    """
    if measures is None:
        measures = np.ones(table.n_rows, dtype=np.float64)
    best: tuple[float, int, str, Rule] | None = None
    for rule in enumerate_supported_rules(table, max_size=max_size):
        weight = wf.weight(rule)
        if weight > mw:
            continue
        mask = cover_mask(rule, table)
        marginal = float((np.maximum(weight - top[mask], 0.0) * measures[mask]).sum())
        if marginal <= 0:
            continue
        key = (-marginal, rule.size, repr(rule), rule)
        if best is None or key[:3] < best[:3]:
            best = key
    if best is None:
        return None
    return best[3], -best[0]


@dataclass(frozen=True)
class OptimalSet:
    """The exact optimum of Problem 3 on a small table."""

    rules: tuple[Rule, ...]
    score: float


def optimal_rule_set(
    table: Table,
    wf: WeightFunction,
    k: int,
    *,
    measures: np.ndarray | None = None,
    max_size: int | None = None,
    candidates: Sequence[Rule] | None = None,
) -> OptimalSet:
    """Exact optimal rule set of size ≤ ``k`` by exhaustive subset search.

    Exponential in both the number of supported rules and ``k``; only
    for validation on tiny inputs.  The optimum never needs a rule with
    zero support, so the candidate pool defaults to
    :func:`enumerate_supported_rules`.
    """
    pool = list(candidates) if candidates is not None else enumerate_supported_rules(
        table, max_size=max_size
    )
    best_rules: tuple[Rule, ...] = ()
    best_score = 0.0
    for size in range(1, min(k, len(pool)) + 1):
        for combo in itertools.combinations(pool, size):
            s = score_set(combo, table, wf, measures)
            if s > best_score:
                best_score = s
                best_rules = tuple(sort_rules_by_weight(combo, wf))
    return OptimalSet(rules=best_rules, score=best_score)
