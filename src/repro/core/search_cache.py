"""Cross-pick candidate cache + CELF lazy greedy — the incremental engine.

The BRS greedy (:mod:`repro.core.brs`) runs ``k`` best-marginal-rule
searches over the *same* table under the *same* weight function; the
only thing that changes between picks is the per-tuple ``top`` array.
A from-scratch search therefore regenerates, recounts, and rescans a
candidate lattice whose keys, weights, Counts, and covered-row sets
are identical every time.  :class:`SearchContext` persists exactly that
invariant state across picks:

* **Candidate cache** — every eligible candidate ever counted is kept
  with its weight, (measure-weighted) Count, and covered-row index
  array.  Rows materialise lazily from the parent's propagated rows
  (vertical row propagation, see :mod:`repro.core.marginal`) the first
  time a candidate is re-evaluated or extended, and are pick-invariant
  from then on.  Re-evaluating a cached candidate's marginal under a
  new ``top`` therefore costs O(support), with no table pass and no
  candidate regeneration.
* **CELF lazy greedy** — ``Score`` is submodular (paper Lemma 3), so a
  candidate's marginal value only *decreases* as the selected set
  grows: a marginal computed in an earlier pick is a valid upper bound
  now.  Candidates live in a max-heap keyed by their stale marginal
  (ties: smaller size, then key order — exactly the from-scratch
  searcher's ``_better`` order); a search repeatedly re-evaluates the
  top entry under the current ``top`` until the top entry is fresh.
  Every entry below a fresh top is provably no better, so it is never
  touched (counted in ``SearchStats.lazy_skips``).
* **Expansion frontier** — the cache only holds candidates some earlier
  search *generated*; the a-priori bound of Section 3.5 pruned the
  rest.  That bound depends on the current ``top``, so a subtree pruned
  in pick 1 can contain pick 2's winner.  The context keeps every
  counted-but-never-extended candidate in a second max-heap keyed by
  its (stale) bound ``MarginalVal(R) + Count(R) · (mw − W(R))``, which
  upper-bounds every descendant's marginal.  After the lazy loop
  settles on a best cached candidate ``H``, any frontier entry whose
  *fresh* bound still reaches ``H`` is expanded (one counting pass over
  its cached rows — never the full table), its children join the cache,
  and the lazy loop resumes.  A search ends only when no frontier bound
  reaches the settled best.

**Correctness.**  The from-scratch search returns the maximum over all
supported candidates of weight ≤ ``mw`` under the total order
(marginal desc, size asc, key asc) — pruning provably never removes
the argmax, and the order does not depend on exploration order.  The
incremental search returns the maximum of the same order over cached
candidates (heap order is the same total order), and the frontier-bound
loop guarantees no uncounted candidate can beat (or tie) the settled
best: every uncounted candidate is a descendant of some frontier entry,
whose fresh bound dominates the descendant's marginal.  Ties are
expanded (``bound >= best``), not skipped, so tie-breaking by size/key
also agrees.  The two engines therefore produce identical rule
sequences — the equivalence tests in ``tests/core/test_incremental.py``
assert this across weight functions, measures, pruning, and size caps.

**Parallel counting.**  The context's counting passes — the size-1
build (the only full-table passes) and every frontier expansion — run
through the backend seam of :mod:`repro.core.parallel` when the
context is given a ``pool``/``n_workers``: tasks fan out over a
persistent worker pool reading the table's code arrays from a shared
immutable memory region, with per-task results bit-identical to the
serial kernel (a task is one whole (parent, column) bincount pair and
is never split).  The CELF loop itself stays serial — it is already
nearly free.  Slow-path (value-dependent) weight functions and small
tables fall back to serial counting automatically.

**Lifecycle and ownership.**  A context is bound to one (table, weight
function, ``mw``, measures, ``max_rule_size``, ``prune``)
configuration — it validates compatibility and refuses anything else.
It is cheap when idle (it holds int32 row arrays totalling the rows
scanned by the generating passes) and can be dropped at any time; the
next search simply rebuilds from scratch.  The drill-down layer
(:mod:`repro.core.drilldown`) tags contexts with their originating
(source table, parent rule, …) so an interactive session can reuse the
context when the same node is expanded again, e.g. after a collapse.

A context is owned by exactly one caller at a time — its heaps and
epoch counters mutate on every search, so it must never be shared
between concurrently searching sessions.  Cross-session reuse goes
through :meth:`SearchContext.clone` instead (the seam the multi-tenant
:class:`~repro.serving.ContextStore` is built on): a clone copies the
per-candidate mutable state but shares the immutable payload — the
table, code arrays, measures, and every materialised covered-row
array, none of which is ever written in place — so cloning costs
O(candidates) with no table pass, and the clone's searches cannot
corrupt (or be corrupted by) the original.  The clone inherits the
prototype's ``_last_top`` watermark, so its first search correctly
resets the CELF bounds when its seed ``top`` is lower than the top the
prototype last searched under.  A context never owns its counting
pool: the ``pool=`` knob only borrows a backend, and whoever created
the pool (a session via ``n_workers=``, or a serving
:class:`~repro.serving.TableCatalog`) closes it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.errors import RuleError
from repro.core.marginal import (
    MarginalResult,
    SearchStats,
    _column_set_weight,
    _extension_weight,
    _key_columns,
    _key_rule,
)
from repro.core.parallel import (
    CountTask,
    CountingPool,
    count_extensions_kernel,
    resolve_pool,
)
from repro.core.rule import Rule
from repro.core.weights import WeightFunction
from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = ["SearchContext"]

# Candidate key, as in repro.core.marginal: ((cat_position, code), ...).
_Key = tuple[tuple[int, int], ...]


@dataclass
class _Candidate:
    """One cached candidate with its pick-invariant statistics.

    ``weight`` and ``count`` never change once counted; ``rows`` holds
    the covered-row indexes, materialised lazily from ``parent_rows``
    (a borrowed reference to the parent's covered rows, shared between
    siblings and dropped after materialisation).  ``marginal`` is the
    value under the ``top`` of epoch ``epoch`` and is a valid upper
    bound for every later epoch (submodularity).  ``heap_m``/``heap_ub``
    mirror the live entries in the value and expansion heaps (stale
    heap entries are dropped lazily on pop).
    """

    key: _Key
    weight: float
    count: float
    marginal: float
    epoch: int
    heap_m: float
    heap_ub: float
    expandable: bool
    rows: np.ndarray | None = None
    parent_rows: np.ndarray | None = None
    expanded: bool = False


class SearchContext:
    """Persistent incremental-search state for one BRS configuration.

    Parameters mirror :func:`repro.core.marginal.find_best_marginal_rule`
    minus ``top``, which is supplied per search via :meth:`find_best`.
    ``prune=False`` reproduces the exploration of the unpruned ablation:
    the first search expands the full supported lattice (once — later
    searches reuse it).

    ``n_workers``/``pool`` select the parallel counting backend exactly
    as in :func:`~repro.core.marginal.find_best_marginal_rule`:
    ``n_workers`` of ``None``/``1`` counts serially, ``0`` uses every
    core, ``>= 2`` shards counting passes over the shared-memory worker
    pool; an explicit ``pool`` overrides ``n_workers`` and ties this
    context's table export to that pool's lifetime.  The backend
    changes how fast candidates are counted, never which candidates
    win — contexts with and without one are interchangeable.
    ``tenant`` labels the backend's dispatched batches for the pool's
    optional :class:`~repro.serving.FairScheduler` (fair round-robin
    across tenants); it has no effect on results.
    """

    def __init__(
        self,
        table: Table,
        wf: WeightFunction,
        mw: float,
        *,
        measures: np.ndarray | None = None,
        max_rule_size: int | None = None,
        prune: bool = True,
        n_workers: int | None = None,
        pool: CountingPool | None = None,
        tenant: Any = None,
        first_pick: Any = None,
    ):
        self.table = table
        self.wf = wf
        self.mw = float(mw)
        self.prune = prune
        self.tenant = tenant
        n = table.n_rows
        self._measures_given = measures is not None
        self.measures = (
            np.ones(n, dtype=np.float64) if measures is None else measures.astype(np.float64)
        )
        self.cat_positions = table.schema.categorical_indexes
        self.codes: list[np.ndarray] = []
        self.distinct: list[int] = []
        for idx in self.cat_positions:
            col = table.column(idx)
            assert isinstance(col, CategoricalColumn)
            self.codes.append(col.codes)
            self.distinct.append(col.distinct_count)
        self._n_cat = len(self.cat_positions)
        limit = self._n_cat
        self.max_rule_size = limit if max_rule_size is None else min(max_rule_size, limit)
        self._requested_max_rule_size = max_rule_size
        self.fast_weight = _column_set_weight(wf)
        backend = None
        if self.fast_weight is not None:
            # Slow-path weights cannot ship a scalar weight to workers.
            resolved = resolve_pool(pool, n_workers)
            if resolved is not None:
                backend = resolved.backend_for(table, self.measures, tenant=tenant)
        self.backend = backend
        # Registration-time level-1 marginal cache (repro.core.first_pick):
        # valid only for a Count search over exactly this (table, wf, mw).
        # The remaining condition — top elementwise equal to the base
        # vector (all zeros) — is per-search, checked in find_best.
        usable = (
            first_pick is not None
            and self.fast_weight is not None
            and first_pick.matches(table, wf, self.mw)
            # Cache arrays were built with all-ones measures (Count);
            # an explicit all-ones array (tuple_measures with no
            # measure column) feeds the kernel identical inputs.
            and (not self._measures_given or bool((self.measures == 1.0).all()))
        )
        self.first_pick = first_pick if usable else None
        if first_pick is not None and not usable:
            first_pick.misses += 1
        self._top_is_base = False
        self._row_dtype = np.int32 if n < 2**31 else np.int64
        self._cands: dict[_Key, _Candidate] = {}
        # Value heap: (-marginal, size, key); expansion heap: (-bound, size, key).
        self._vheap: list[tuple[float, int, _Key]] = []
        self._xheap: list[tuple[float, int, _Key]] = []
        self._built = False
        self._epoch = 0
        self._refreshed = 0
        self._generated_this_epoch = 0
        self._top: np.ndarray | None = None
        self._last_top: np.ndarray | None = None
        #: Lifetime totals across every search run through this context.
        self.total_stats = SearchStats()
        #: Covered-row indexes of the last returned rule (None if none);
        #: lets the greedy update ``top`` without a cover_mask pass.
        self.last_rows: np.ndarray | None = None
        # Set by the drill-down layer to identify the originating node.
        self.source: Any = None
        self.tag: Any = None

    # -- compatibility ---------------------------------------------------------

    def check_compatible(
        self,
        table: Table,
        wf: WeightFunction,
        mw: float,
        measures: np.ndarray | None,
        max_rule_size: int | None,
        prune: bool,
    ) -> None:
        """Raise :class:`RuleError` unless this context serves the given search."""
        if table is not self.table:
            raise RuleError("search context was built for a different table")
        if wf is not self.wf:
            raise RuleError("search context was built for a different weight function")
        if float(mw) != self.mw:
            raise RuleError("search context was built for a different mw")
        if prune != self.prune:
            raise RuleError("search context was built with a different prune setting")
        limit = self._n_cat if max_rule_size is None else min(max_rule_size, self._n_cat)
        if limit != self.max_rule_size:
            raise RuleError("search context was built with a different max_rule_size")
        if measures is None:
            if self._measures_given:
                raise RuleError("search context was built with different measures")
        elif measures is not self.measures and not np.array_equal(
            np.asarray(measures, dtype=np.float64), self.measures
        ):
            raise RuleError("search context was built with different measures")

    # -- cloning (cross-session sharing seam) ----------------------------------

    def clone(
        self,
        *,
        pool: CountingPool | None = None,
        tenant: Any = None,
    ) -> "SearchContext":
        """Return an independent context sharing this one's cached lattice.

        The clone is safe to search concurrently with (and mutate
        independently of) the original: per-candidate mutable state
        (marginals, epochs, heap mirrors, expansion flags) is copied,
        while the immutable payload — the table, code arrays, measures,
        and every covered-row index array, none of which is ever
        written in place — is shared by reference.  Cloning therefore
        costs O(cached candidates) and *no* table pass: a clone starts
        with ``_built`` state, so its first search skips the full-table
        size-1 passes and only lazily re-tightens the CELF bounds
        (:meth:`_reset_bounds` fires automatically when the clone's
        seed ``top`` is below the prototype's last-searched ``top``,
        which the clone inherits as its monotonicity watermark).

        ``pool``/``tenant`` select the clone's counting backend — a
        clone never inherits the prototype's backend object, because a
        backend's staged ``top`` is single-owner state.  With
        ``pool=None`` the clone counts serially.

        This is the seam :class:`repro.serving.ContextStore` shares
        read-compatible contexts across tenant sessions on: the store
        keeps a frozen clone as the prototype and leases a fresh clone
        per session (copy-on-first-expand), so tenants can never
        corrupt each other's search state.
        """
        new = object.__new__(SearchContext)
        # Immutable configuration and payload: shared by reference.
        new.table = self.table
        new.wf = self.wf
        new.mw = self.mw
        new.prune = self.prune
        new.tenant = tenant
        new._measures_given = self._measures_given
        new.measures = self.measures
        new.cat_positions = self.cat_positions
        new.codes = self.codes
        new.distinct = self.distinct
        new._n_cat = self._n_cat
        new.max_rule_size = self.max_rule_size
        new._requested_max_rule_size = self._requested_max_rule_size
        new.fast_weight = self.fast_weight
        new._row_dtype = self._row_dtype
        backend = None
        if self.fast_weight is not None:
            resolved = resolve_pool(pool, None)
            if resolved is not None:
                backend = resolved.backend_for(self.table, self.measures, tenant=tenant)
        new.backend = backend
        new.first_pick = self.first_pick
        new._top_is_base = False
        # Mutable per-candidate state: copied (row arrays shared — they
        # are only ever replaced, never mutated in place).
        new._cands = {key: replace(cand) for key, cand in self._cands.items()}
        new._vheap = list(self._vheap)
        new._xheap = list(self._xheap)
        new._built = self._built
        new._epoch = self._epoch
        new._refreshed = 0
        new._generated_this_epoch = 0
        new._top = None
        # The monotonicity watermark: find_best compares its top against
        # this and resets the CELF bounds when the new top is lower —
        # exactly what a fresh greedy run through a leased clone needs.
        new._last_top = self._last_top
        new.total_stats = SearchStats()
        new.last_rows = None
        new.source = self.source
        new.tag = self.tag
        return new

    # -- weights / rules -------------------------------------------------------

    def _table_columns(self, key: _Key) -> tuple[int, ...]:
        return _key_columns(key, self.cat_positions)

    def _rule_of(self, key: _Key) -> Rule:
        return _key_rule(key, self.table, self.cat_positions)

    def _weight_of(self, key: _Key) -> float:
        if self.fast_weight is not None:
            return self.fast_weight(self._table_columns(key))
        return self.wf.weight(self._rule_of(key))

    def _bound(self, cand: _Candidate) -> float:
        """The Section 3.5 bound on any descendant's current marginal."""
        return cand.marginal + cand.count * max(self.mw - cand.weight, 0.0)

    def _rows(self, cand: _Candidate, stats: SearchStats) -> np.ndarray:
        """The candidate's covered rows, materialised on first use.

        Vertical row propagation: one O(parent support) filter on the
        candidate's own ``(column, code)`` extension.  The borrowed
        parent reference is dropped afterwards; siblings share it until
        each materialises (or never does — most candidates are pruned
        before their rows are ever needed).
        """
        if cand.rows is None:
            parent_rows = cand.parent_rows
            assert parent_rows is not None
            pos, code = cand.key[-1]
            codes = self.codes[pos]
            if parent_rows.size == codes.size:  # trivial parent: avoid the gather
                cand.rows = np.nonzero(codes == code)[0]
            else:
                cand.rows = parent_rows[codes[parent_rows] == code]
            cand.parent_rows = None
            stats.rows_scanned += parent_rows.size
        return cand.rows

    # -- lattice generation ----------------------------------------------------

    def _ext_weight(self, parent_key: _Key, pos: int) -> float:
        """Fast-path weight shared by every value extension of a task."""
        return _extension_weight(self.fast_weight, self.cat_positions, parent_key, pos)

    def _insert_children(
        self,
        parent_key: _Key,
        parent_rows: np.ndarray,
        pos: int,
        weight: float,
        supported: np.ndarray,
        counts: np.ndarray,
        marginals: np.ndarray,
        stats: SearchStats,
    ) -> None:
        """Cache one counted (parent, column) task's candidates (fast path)."""
        size = len(parent_key) + 1
        for i in range(supported.size):
            key = parent_key + ((pos, int(supported[i])),)
            stats.candidates_generated += 1
            if weight > self.mw:
                continue
            stats.candidates_eligible += 1
            marginal = float(marginals[i])
            expandable = size < self.max_rule_size and pos + 1 < self._n_cat
            cand = _Candidate(
                key=key,
                weight=weight,
                count=float(counts[i]),
                marginal=marginal,
                epoch=self._epoch,
                heap_m=marginal,
                heap_ub=0.0,
                expandable=expandable,
                parent_rows=parent_rows,
            )
            self._cands[key] = cand
            self._generated_this_epoch += 1
            heapq.heappush(self._vheap, (-marginal, size, key))
            if expandable:
                cand.heap_ub = self._bound(cand)
                heapq.heappush(self._xheap, (-cand.heap_ub, size, key))

    def _generate(self, parent_key: _Key, parent_rows: np.ndarray, pos: int, stats: SearchStats) -> None:
        """Count and cache all value extensions of a parent on one column.

        One weighted bincount yields every child's Count and one more
        its MarginalValue; children keep a borrowed reference to the
        parent's rows instead of materialising their own (see
        :meth:`_rows`).  Children heavier than ``mw`` are discarded
        outright — they can never be a best rule and (by monotonicity)
        neither can any super-rule, so the from-scratch searcher never
        extends them either.

        The counting arithmetic runs through the shared
        :func:`~repro.core.parallel.count_extensions_kernel` on the
        fast path, keeping it in lockstep with
        ``_Searcher._count_extensions`` in :mod:`repro.core.marginal`
        *and* with the worker processes — the engines' bit-identical
        guarantee depends on it, and the equivalence suites
        (``tests/core/test_incremental.py``,
        ``tests/core/test_parallel.py``) pin it.
        """
        n_values = self.distinct[pos]
        stats.rows_scanned += parent_rows.size
        if self.fast_weight is not None:
            weight = self._ext_weight(parent_key, pos)
            rows = None if parent_rows.size == self.table.n_rows else parent_rows
            supported, counts, marginals = count_extensions_kernel(
                self.codes[pos], self.measures, self._top, rows, n_values, weight
            )
            self._insert_children(
                parent_key, parent_rows, pos, weight, supported, counts, marginals, stats
            )
            return
        if parent_rows.size == self.table.n_rows:  # trivial parent: skip the gathers
            codes = self.codes[pos]
            measures = self.measures
            top = self._top
        else:
            codes = self.codes[pos][parent_rows]
            measures = self.measures[parent_rows]
            top = self._top[parent_rows]
        counts = np.bincount(codes, weights=measures, minlength=n_values)
        supported = np.nonzero(counts > 0)[0]
        size = len(parent_key) + 1
        for code in supported:
            key = parent_key + ((pos, int(code)),)
            stats.candidates_generated += 1
            weight = self._weight_of(key)
            covered = codes == code
            marginal = float(
                (np.maximum(weight - top[covered], 0.0) * measures[covered]).sum()
            )
            if weight > self.mw:
                continue
            stats.candidates_eligible += 1
            expandable = size < self.max_rule_size and pos + 1 < self._n_cat
            cand = _Candidate(
                key=key,
                weight=weight,
                count=float(counts[code]),
                marginal=marginal,
                epoch=self._epoch,
                heap_m=marginal,
                heap_ub=0.0,
                expandable=expandable,
                parent_rows=parent_rows,
            )
            self._cands[key] = cand
            self._generated_this_epoch += 1
            heapq.heappush(self._vheap, (-marginal, size, key))
            if expandable:
                cand.heap_ub = self._bound(cand)
                heapq.heappush(self._xheap, (-cand.heap_ub, size, key))

    def _build(self, stats: SearchStats) -> None:
        """Generate the size-1 level (the only full-table passes ever made).

        With a counting backend, the per-column full-table passes — the
        dominant first-pick cost on large tables — are dispatched to
        the worker pool as one batch.
        """
        all_rows = np.arange(self.table.n_rows, dtype=self._row_dtype)
        if self.first_pick is not None and self._top_is_base:
            # Heap-build over the registration-time level-1 cache: the
            # arrays are the kernel's own output at this exact (table,
            # weight, base top), so _insert_children sees bit-identical
            # inputs to a cold scan — no rows are touched.
            self.first_pick.hits += 1
            for pos in range(self._n_cat):
                weight, supported, counts, marginals = self.first_pick.level1(pos)
                self._insert_children((), all_rows, pos, weight, supported, counts, marginals, stats)
            stats.passes += 1
            self._built = True
            return
        if self.first_pick is not None:
            self.first_pick.misses += 1
        if self.backend is not None:
            specs = [
                (pos, self.distinct[pos], self._ext_weight((), pos))
                for pos in range(self._n_cat)
            ]
            results = self.backend.count_columns(specs)
            for pos, _n_values, weight in specs:
                stats.rows_scanned += self.table.n_rows
                self._insert_children((), all_rows, pos, weight, *results[pos], stats)
        else:
            for pos in range(self._n_cat):
                self._generate((), all_rows, pos, stats)
        stats.passes += 1
        self._built = True

    def _expand(self, cand: _Candidate, stats: SearchStats) -> None:
        """Generate all extensions of a cached candidate from its rows.

        With a counting backend, the per-column tasks of this candidate
        form one batch (small tasks still run locally — the backend
        decides per task).
        """
        stats.parents_extended += 1
        rows = self._rows(cand, stats)
        last_pos = cand.key[-1][0]
        if (
            self.first_pick is not None
            and self._top_is_base
            and len(cand.key) == 1
            and self.first_pick.pair_limit > 0
        ):
            # Level-2: single-column parents expanded while top is
            # still the base vector (i.e. to settle the very first
            # pick) can be served from the bounded hot-pair cache;
            # cold pairs are recorded through the access-stats hook
            # and fall through to the normal scan.
            p, code = cand.key[0]
            cold: list[int] = []
            for pos in range(last_pos + 1, self._n_cat):
                served = self.first_pick.pair(p, code, pos)
                if served is None:
                    self.first_pick.note_pair(p, pos)
                    cold.append(pos)
                else:
                    self._insert_children(cand.key, rows, pos, *served, stats)
            if not cold:
                cand.expanded = True
                return
            self._expand_cold(cand, rows, cold, stats)
            cand.expanded = True
            return
        self._expand_cold(cand, rows, list(range(last_pos + 1, self._n_cat)), stats)
        cand.expanded = True

    def _expand_cold(
        self,
        cand: _Candidate,
        rows: np.ndarray,
        positions: list[int],
        stats: SearchStats,
    ) -> None:
        """Count extensions of ``cand`` on ``positions`` by scanning its rows."""
        if self.backend is not None:
            rows_arg = None if rows.size == self.table.n_rows else rows
            specs = [(pos, self._ext_weight(cand.key, pos)) for pos in positions]
            if specs:
                results = self.backend.count_batch(
                    [
                        CountTask(i, pos, self.distinct[pos], weight, rows_arg)
                        for i, (pos, weight) in enumerate(specs)
                    ]
                )
                for i, (pos, weight) in enumerate(specs):
                    stats.rows_scanned += rows.size
                    self._insert_children(
                        cand.key, rows, pos, weight, *results[i], stats
                    )
        else:
            for pos in positions:
                self._generate(cand.key, rows, pos, stats)

    # -- per-pick search -------------------------------------------------------

    def _reset_bounds(self) -> None:
        """Restore the CELF invariant after ``top`` moved *down*.

        Stale marginals are upper bounds only while ``top`` grows (the
        greedy case).  When a context is reused for a fresh greedy run
        that restarts from its seed ``top`` — e.g. re-expanding a
        drill-down node — every cached marginal is reset to the
        coarser bound ``W(R) · Count(R)``, which is valid for *any*
        non-negative ``top`` (each covered tuple gains at most the full
        weight).  No rows are scanned: the lazy loop tightens exactly
        the bounds that reach the top of the heap.
        """
        vheap: list[tuple[float, int, _Key]] = []
        xheap: list[tuple[float, int, _Key]] = []
        for cand in self._cands.values():
            cand.marginal = cand.weight * cand.count
            cand.heap_m = cand.marginal
            cand.epoch = 0  # stale: must be re-evaluated before acceptance
            size = len(cand.key)
            vheap.append((-cand.marginal, size, cand.key))
            if cand.expandable and not cand.expanded:
                cand.heap_ub = self._bound(cand)
                xheap.append((-cand.heap_ub, size, cand.key))
        heapq.heapify(vheap)
        heapq.heapify(xheap)
        self._vheap = vheap
        self._xheap = xheap

    def _refresh(self, cand: _Candidate, stats: SearchStats) -> None:
        """Re-evaluate a cached candidate's marginal under the current top."""
        if cand.weight <= 0.0:
            cand.marginal = 0.0  # max(W - top, 0) is identically zero
        else:
            rows = self._rows(cand, stats)
            gains = np.maximum(cand.weight - self._top[rows], 0.0) * self.measures[rows]
            if self.fast_weight is not None:
                # Accumulate sequentially in row order — bit-identical to
                # the counting kernel's bincount, so a marginal computed
                # here equals the one a counting pass (this context's
                # build, a sibling clone's, or the scratch engine's)
                # produces.  numpy's pairwise .sum() differs in the last
                # ulp, enough to flip near-ties between engines.
                cand.marginal = float(
                    np.bincount(
                        np.zeros(rows.size, dtype=np.intp), weights=gains, minlength=1
                    )[0]
                )
            else:
                # Slow-path candidates are generated with a pairwise sum
                # (see _generate); stay in lockstep with that.
                cand.marginal = float(gains.sum())
            stats.rows_scanned += rows.size
        stats.cache_hits += 1
        cand.epoch = self._epoch
        self._refreshed += 1
        if cand.marginal != cand.heap_m:
            cand.heap_m = cand.marginal
            heapq.heappush(self._vheap, (-cand.marginal, len(cand.key), cand.key))

    def _settle(self, stats: SearchStats) -> _Candidate | None:
        """CELF loop: re-evaluate the heap top until it is fresh.

        The heap orders by (stale marginal desc, size asc, key asc);
        stale values upper-bound fresh ones, so a fresh top dominates
        everything below it under the searcher's ``_better`` order.
        """
        heap = self._vheap
        while heap:
            negm, _size, key = heap[0]
            cand = self._cands[key]
            if -negm != cand.heap_m:
                heapq.heappop(heap)  # superseded by a fresher entry
                continue
            if cand.epoch == self._epoch:
                return cand if cand.marginal > 0.0 else None
            self._refresh(cand, stats)
            if cand.heap_m != -negm:
                heapq.heappop(heap)  # value dropped; fresh entry was pushed
        return None

    def _expand_due(self, best: _Candidate | None, stats: SearchStats) -> bool:
        """Expand one frontier candidate whose bound reaches the best.

        Returns True when an expansion happened (the caller re-settles
        the value heap).  With ``prune`` off, every frontier candidate
        is expanded unconditionally, mirroring the unpruned ablation.
        """
        heap = self._xheap
        while heap:
            negub, size, key = heap[0]
            cand = self._cands[key]
            if cand.expanded or -negub != cand.heap_ub:
                heapq.heappop(heap)
                continue
            if self.prune:
                ub = -negub
                if best is None:
                    if ub <= 0.0:
                        return False
                elif ub < best.marginal:
                    return False
                if cand.epoch != self._epoch:
                    self._refresh(cand, stats)
                    fresh_ub = self._bound(cand)
                    if fresh_ub != cand.heap_ub:
                        heapq.heappop(heap)
                        cand.heap_ub = fresh_ub
                        heapq.heappush(heap, (-fresh_ub, size, key))
                    continue
            heapq.heappop(heap)
            self._expand(cand, stats)
            return True
        return False

    def find_best(self, top: np.ndarray) -> MarginalResult | None:
        """Return the best marginal rule under ``top`` — Algorithm 2,
        served from the cache.

        Provably identical to
        :func:`repro.core.marginal.find_best_marginal_rule` on the same
        configuration (see the module docstring's correctness argument).
        The returned ``stats`` cover this search only;
        :attr:`total_stats` accumulates across searches.

        Successive ``top`` arrays may move up freely (the greedy case —
        served lazily) or down (a fresh greedy run reusing the context —
        cached bounds reset to ``W·Count`` and re-tighten lazily).
        Mutating a previously passed array *downward in place* is the
        one unsupported pattern: pass a new array instead.
        """
        if top.shape != (self.table.n_rows,):
            raise RuleError("top-weight array length must equal table rows")
        # Normalised once so the serial kernel, the local-fallback
        # kernel, and the float64 shared-memory segment all see the
        # same values bit for bit (no-op for float64 input, preserving
        # the identity comparison against _last_top below).
        top = np.asarray(top, dtype=np.float64)
        stats = SearchStats()
        stats.passes += 1
        monotone = (
            self._last_top is None
            or top is self._last_top
            or bool((top >= self._last_top).all())
        )
        self._top = top
        self._last_top = top
        # The first-pick cache serves only while top is still the base
        # vector (all zeros): cached marginals are the kernel's output
        # at exactly that top.
        self._top_is_base = self.first_pick is not None and not top.any()
        if self.backend is not None:
            self.backend.set_top(top)
        self._epoch += 1
        self._refreshed = 0
        self._generated_this_epoch = 0
        if not self._built:
            self._build(stats)
        elif not monotone:
            self._reset_bounds()
        best = self._settle(stats)
        while self._expand_due(best, stats):
            best = self._settle(stats)
        stats.lazy_skips += max(
            0, len(self._cands) - self._refreshed - self._generated_this_epoch
        )
        if best is None:
            self.last_rows = None
            self.total_stats.merge(stats)
            return None
        self.last_rows = self._rows(best, stats)
        self.total_stats.merge(stats)
        return MarginalResult(
            rule=self._rule_of(best.key),
            weight=best.weight,
            count=best.count,
            marginal=best.marginal,
            stats=stats,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def cached_candidates(self) -> int:
        """Number of candidates currently held in the cache."""
        return len(self._cands)

    def __repr__(self) -> str:
        return (
            f"SearchContext(rows={self.table.n_rows}, mw={self.mw:g}, "
            f"candidates={len(self._cands)}, searches={self._epoch})"
        )
