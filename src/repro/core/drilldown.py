"""The smart drill-down operators (paper Sections 2.3 and 3.1).

Three user-facing operations, each reduced to Problem 2 exactly as in
Section 3.1:

* **Rule drill-down** — clicking rule ``r'`` filters the table to the
  tuples covered by ``r'`` and mines that sub-table with the weight
  function lifted through :class:`~repro.core.weights.MergedWeight`
  (a candidate scores as its merge with ``r'``), so every displayed
  rule is a super-rule of ``r'``.
* **Star drill-down** — clicking a ``?`` in column ``c`` additionally
  wraps the weight function in
  :class:`~repro.core.weights.StarConstrainedWeight`, zeroing any rule
  that leaves ``c`` starred; all displayed rules instantiate ``c``.
* **Traditional drill-down** — the classic OLAP operator, expressed as
  the Section 5.1 special case (indicator weight on one column,
  ``k`` = number of distinct values) and also provided as a direct
  group-by fast path; the two produce the same rule multiset.

The functions operate on whatever :class:`~repro.table.Table` they are
given — the interactive session layer passes in samples and rescales
counts.

Each drill-down accepts (and returns, via
:attr:`DrillDownResult.context`) a
:class:`~repro.core.search_cache.SearchContext` so repeated expansions
of the same node — e.g. expand, collapse, expand again in a session —
reuse the cached candidate lattice instead of re-filtering the table
and re-running the search from scratch.  A supplied context is reused
only when its tag (operation kind, parent rule, column, measure,
weight function, and search parameters) and source table match;
otherwise a fresh one is built, so callers may pass a stale context
safely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.brs import BRSResult, brs
from repro.errors import RuleError
from repro.core.marginal import SearchStats
from repro.core.parallel import CountingPool, resolve_pool
from repro.core.rule import Rule, cover_mask
from repro.core.scoring import RuleList, tuple_measures
from repro.core.search_cache import SearchContext
from repro.core.weights import (
    ColumnIndicatorWeight,
    MergedWeight,
    StarConstrainedWeight,
    WeightFunction,
)
from repro.table.table import Table

__all__ = [
    "DrillDownResult",
    "drilldown_tag",
    "rule_drilldown",
    "star_drilldown",
    "traditional_drilldown",
]


def drilldown_tag(
    kind: str,
    parent: Rule,
    column: int | None,
    *,
    measure: str | None,
    wf: WeightFunction,
    mw: float,
    max_rule_size: int | None = None,
    prune: bool = True,
) -> tuple:
    """The identity key of one drill-down configuration.

    Two drill-downs whose tags compare equal are served by the same
    :class:`~repro.core.search_cache.SearchContext` (given the same
    mined table).  The weight function participates by identity —
    callers that want cross-session sharing must share ``wf``
    instances, which is what :class:`repro.serving.DrillDownServer`'s
    weight registry does.  The drill-down functions build their
    internal tags through this helper, so external keying (the
    session's cache, the serving tier's
    :class:`~repro.serving.ContextStore`) cannot drift from them.
    """
    return (kind, parent, column, measure, wf, float(mw), max_rule_size, prune)


@dataclass(frozen=True)
class DrillDownResult:
    """A drill-down's displayable outcome.

    ``rule_list`` holds the weight-sorted super-rules of the clicked
    rule with their Count/MCount on the mined table; ``subtable_rows``
    is ``|T_{r'}|``; ``stats`` aggregates the BRS search work.
    ``context`` is the incremental-search state used — pass it back to
    the same drill-down call to reuse the cached candidate lattice
    (None when the scratch engine was requested).
    """

    parent: Rule
    rule_list: RuleList
    subtable_rows: int
    stats: SearchStats
    context: SearchContext | None = None

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self.rule_list.rules


def _merge_with_parent(rules: tuple[Rule, ...], parent: Rule) -> list[Rule]:
    """Merge each mined rule with the clicked parent rule.

    Every mined rule has positive support on the filtered table, so the
    merge cannot conflict; the merge makes the Problem 1 super-rule
    constraint explicit in the displayed rules.
    """
    merged: list[Rule] = []
    for rule in rules:
        combined = rule.merge(parent)
        if combined is None:  # pragma: no cover - impossible for supported rules
            raise RuleError(f"mined rule {rule} conflicts with parent {parent}")
        if combined not in merged:
            merged.append(combined)
    return merged


def _context_reusable(context: SearchContext | None, table: Table, tag: tuple) -> bool:
    """True when ``context`` was built for exactly this drill-down.

    ``tag`` equality compares the operation kind, parent rule, column,
    measure, weight function (by identity), and search parameters;
    ``source`` identity ties the context to the mined table object, so
    a sampled session whose sample was swapped rebuilds automatically.
    """
    return context is not None and context.source is table and context.tag == tag


def rule_drilldown(
    table: Table,
    parent: Rule,
    wf: WeightFunction,
    k: int,
    mw: float,
    *,
    measure: str | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
    context: SearchContext | None = None,
    engine: str = "incremental",
    n_workers: int | None = None,
    pool: CountingPool | None = None,
    tenant: object = None,
    first_pick=None,
) -> DrillDownResult:
    """Expand ``parent`` into its best rule-list of ``k`` super-rules.

    Implements the [Rule drill down] reduction of Section 3.1: filter
    ``table`` to ``T_parent``, solve Problem 2 there under the
    parent-merged weight function, then display the merged rules.

    Parameters mirror :func:`repro.core.brs.brs`; ``measure`` selects
    Sum aggregation over a numeric column instead of Count.  Passing
    the ``context`` from a previous identical call (any ``k``) skips
    the sub-table filtering and reuses the cached candidate lattice.
    ``n_workers``/``pool`` select the shared-memory parallel counting
    backend for the expansion's searches (serial when ``None``/``1``;
    the mined rules are identical either way); a reused ``context``
    keeps the backend it was built with.
    """
    if len(parent) != table.n_columns:
        raise RuleError("parent rule arity does not match the table")
    resolved_pool = resolve_pool(pool, n_workers)
    tag = drilldown_tag(
        "rule", parent, None, measure=measure, wf=wf, mw=mw,
        max_rule_size=max_rule_size, prune=prune,
    )
    if _context_reusable(context, table, tag):
        subtable = context.table
        lifted = context.wf
        measures = context.measures
    else:
        subtable = table.filter(cover_mask(parent, table)) if not parent.is_trivial else table
        lifted = MergedWeight(wf, parent) if not parent.is_trivial else wf
        measures = tuple_measures(subtable, measure)
        context = None
        if engine == "incremental":
            context = SearchContext(
                subtable, lifted, mw, measures=measures,
                max_rule_size=max_rule_size, prune=prune, pool=resolved_pool,
                tenant=tenant, first_pick=first_pick,
            )
            context.source = table
            context.tag = tag
    # Seed the greedy with the parent already covering the sub-table at
    # its own weight: children earn credit only for the weight they add
    # beyond the parent, which is what the paper's Table 3 expansion
    # exhibits (and prevents the parent re-appearing as its own child).
    seed = np.full(subtable.n_rows, wf.weight(parent), dtype=np.float64)
    result: BRSResult = brs(
        subtable,
        lifted,
        k,
        mw,
        measures=measures,
        max_rule_size=max_rule_size,
        prune=prune,
        initial_top=seed,
        context=context,
        engine=engine,
        pool=resolved_pool,
        first_pick=first_pick,
    )
    merged = _merge_with_parent(result.rules, parent)
    rule_list = RuleList(merged, subtable, wf, measures)
    return DrillDownResult(
        parent=parent,
        rule_list=rule_list,
        subtable_rows=subtable.n_rows,
        stats=result.stats,
        context=context,
    )


def star_drilldown(
    table: Table,
    parent: Rule,
    column: int | str,
    wf: WeightFunction,
    k: int,
    mw: float,
    *,
    measure: str | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
    context: SearchContext | None = None,
    engine: str = "incremental",
    n_workers: int | None = None,
    pool: CountingPool | None = None,
    tenant: object = None,
    first_pick=None,
) -> DrillDownResult:
    """Expand the ``?`` in ``column`` of ``parent`` (Section 2.3).

    Implements the [Star drill down] reduction: like a rule drill-down,
    but the weight function zeroes rules leaving ``column`` starred, so
    every returned rule instantiates it.  ``context`` reuse and the
    ``n_workers``/``pool`` parallel-counting knobs work as in
    :func:`rule_drilldown`.
    """
    if isinstance(column, str):
        column = table.schema.index_of(column)
    if column not in table.schema.categorical_indexes:
        raise RuleError(
            f"column {table.schema[column].name!r} is numeric; bucketize it "
            "before star drill-down (Section 6.2)"
        )
    if not parent.is_star(column):
        raise RuleError(f"parent rule already instantiates column {column}")
    resolved_pool = resolve_pool(pool, n_workers)
    tag = drilldown_tag(
        "star", parent, column, measure=measure, wf=wf, mw=mw,
        max_rule_size=max_rule_size, prune=prune,
    )
    if _context_reusable(context, table, tag):
        subtable = context.table
        constrained = context.wf
        measures = context.measures
    else:
        subtable = table.filter(cover_mask(parent, table)) if not parent.is_trivial else table
        lifted: WeightFunction = MergedWeight(wf, parent) if not parent.is_trivial else wf
        constrained = StarConstrainedWeight(lifted, column)
        measures = tuple_measures(subtable, measure)
        context = None
        if engine == "incremental":
            context = SearchContext(
                subtable, constrained, mw, measures=measures,
                max_rule_size=max_rule_size, prune=prune, pool=resolved_pool,
                tenant=tenant, first_pick=first_pick,
            )
            context.source = table
            context.tag = tag
    result = brs(
        subtable,
        constrained,
        k,
        mw,
        measures=measures,
        max_rule_size=max_rule_size,
        prune=prune,
        context=context,
        engine=engine,
        pool=resolved_pool,
        first_pick=first_pick,
    )
    merged = _merge_with_parent(result.rules, parent)
    rule_list = RuleList(merged, subtable, wf, measures)
    return DrillDownResult(
        parent=parent,
        rule_list=rule_list,
        subtable_rows=subtable.n_rows,
        stats=result.stats,
        context=context,
    )


def traditional_drilldown(
    table: Table,
    parent: Rule,
    column: int | str,
    *,
    measure: str | None = None,
    k: int | None = None,
    via_brs: bool = False,
    wf: WeightFunction | None = None,
) -> DrillDownResult:
    """Classic OLAP drill-down on one column (Section 5.1, Figure 4).

    Lists one super-rule of ``parent`` per distinct value of
    ``column`` among the covered tuples, ordered by descending count.
    ``k`` optionally truncates the list (the paper's point is precisely
    that traditional drill-down has no good truncation).

    With ``via_brs=True`` the result is computed through BRS with a
    :class:`~repro.core.weights.ColumnIndicatorWeight` — the Section
    5.1 equivalence — which tests use to cross-validate the fast path.
    """
    if isinstance(column, str):
        column = table.schema.index_of(column)
    if not parent.is_star(column):
        raise RuleError(f"parent rule already instantiates column {column}")
    subtable = table.filter(cover_mask(parent, table)) if not parent.is_trivial else table
    col = subtable.categorical(column)
    n_values = int((col.counts() > 0).sum())
    limit = n_values if k is None else min(k, n_values)

    if via_brs:
        indicator = ColumnIndicatorWeight(column)
        measures = tuple_measures(subtable, measure)
        result = brs(subtable, indicator, limit, 1.0, measures=measures, max_rule_size=1)
        merged = _merge_with_parent(result.rules, parent)
        rule_list = RuleList(merged, subtable, wf or indicator, measures)
        return DrillDownResult(parent, rule_list, subtable.n_rows, result.stats)

    measures = tuple_measures(subtable, measure)
    weights = np.bincount(col.codes, weights=measures, minlength=col.distinct_count)
    order = np.argsort(-weights, kind="stable")
    rules = [
        parent.with_value(column, col.decode(int(code)))
        for code in order[:limit]
        if weights[code] > 0
    ]
    display_wf = wf or ColumnIndicatorWeight(column)
    rule_list = RuleList(rules, subtable, display_wf, measures)
    return DrillDownResult(parent, rule_list, subtable.n_rows, SearchStats())
