"""BRS — Best Rule Set, the paper's Algorithm 1 (Section 3.4).

``Score`` is submodular over rule sets (Lemma 3), so the greedy
procedure — start empty, add the best marginal rule ``k`` times — is a
``1 − (1 − 1/k)^k ≥ 1 − 1/e`` approximation of the optimal set, provided
``mw`` upper-bounds the weight of every rule in the optimum.  BRS is
*incremental*: the best rule-list of size ``k`` is a prefix of the best
rule-list of size ``k+1`` as produced by the greedy, which Section 6.1
exploits to stream rules to the user; :func:`brs_iter` exposes exactly
that stream.

**Engines.**  By default (``engine="incremental"``) the ``k`` marginal
searches run through a :class:`~repro.core.search_cache.SearchContext`,
which persists candidate counts, weights, and covered-row sets across
picks and re-evaluates marginals CELF-style (Leskovec et al.'s lazy
greedy): submodularity makes any previously computed marginal an upper
bound on the current one, so picks after the first only touch the few
heap-top candidates whose stale bound is still competitive, instead of
re-running the whole a-priori search.  The selected rules are provably
identical to ``engine="scratch"`` (one cold
:func:`~repro.core.marginal.find_best_marginal_rule` per pick) — the
lazy heap settles on the same argmax under the same tie-breaking order,
and pruned-subtree bounds are re-checked against the current ``top``
before a search concludes (see :mod:`repro.core.search_cache` for the
full argument).  Callers may pass an existing ``context`` to amortise
the cache across multiple BRS runs — the interactive session layer does
this for repeated expansions of the same drill-down node.

**Parallel counting.**  Either engine's counting passes — dominated by
the first pick on large tables — can be sharded over a shared-memory
worker pool with the ``n_workers=``/``pool=`` knobs (see
:mod:`repro.core.parallel`); the selected rules are identical to the
serial path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.marginal import MarginalResult, SearchStats, find_best_marginal_rule
from repro.core.parallel import CountingPool, resolve_pool
from repro.core.rule import Rule, cover_mask
from repro.core.scoring import RuleList
from repro.core.search_cache import SearchContext
from repro.core.weights import WeightFunction
from repro.errors import EngineError
from repro.table.table import Table

__all__ = ["BRSResult", "brs", "brs_iter", "brs_time_limited"]


@dataclass(frozen=True)
class BRSResult:
    """Outcome of one BRS invocation.

    ``rule_list`` carries the weight-sorted display order with per-rule
    Count/MCount; ``picks`` records the greedy selection order with the
    marginal value each rule added; ``stats`` aggregates search work
    across all ``k`` marginal-rule searches.
    """

    rule_list: RuleList
    picks: tuple[MarginalResult, ...]
    stats: SearchStats

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self.rule_list.rules

    @property
    def score(self) -> float:
        return self.rule_list.score


def brs_iter(
    table: Table,
    wf: WeightFunction,
    mw: float,
    *,
    measures: np.ndarray | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
    initial_top: np.ndarray | None = None,
    context: SearchContext | None = None,
    engine: str = "incremental",
    n_workers: int | None = None,
    pool: CountingPool | None = None,
    first_pick=None,
) -> Iterator[MarginalResult]:
    """Yield greedy picks one at a time (the Section 6.1 streaming mode).

    Stops when no rule adds positive marginal value.  The caller owns
    the stopping condition otherwise — take ``k`` items for a fixed-size
    summary, or consume under a time budget.

    ``initial_top`` seeds the per-tuple ``W(TOP(t, S))`` state, which
    drill-down uses to model "the clicked rule already covers this
    sub-table": children then only earn credit for weight *above* the
    parent's (this is what makes the Table 3 expansion produce
    cookies/CA-1/WA-5 rather than re-listing the Walmart rule itself).

    ``engine`` selects ``"incremental"`` (cached, CELF lazy greedy —
    the default) or ``"scratch"`` (one cold Algorithm 2 run per pick);
    both produce identical picks.  ``context`` supplies an existing
    :class:`~repro.core.search_cache.SearchContext` to reuse across
    runs (implies the incremental engine); it must have been built for
    the same table, weight function, and search parameters.  Invalid
    engines/contexts raise here, not at first iteration.

    ``n_workers``/``pool`` select the shared-memory parallel counting
    backend (:mod:`repro.core.parallel`) for the underlying searches:
    ``None``/``1`` counts serially, ``0`` uses every core, ``>= 2``
    shards counting over that many workers; an explicit ``pool``
    overrides ``n_workers``.  Picks are identical either way.  When an
    existing ``context`` is supplied it keeps whatever backend it was
    built with and these knobs are ignored.

    ``first_pick`` threads a registration-time level-1 marginal cache
    (:class:`~repro.core.first_pick.FirstPickCache`) into the search:
    the first pick becomes a heap-build over cached marginals instead
    of a full scan.  Picks are provably identical with or without it;
    a cache built for a different ``(table, wf, mw)`` is ignored.
    """
    if engine not in ("incremental", "scratch"):
        raise EngineError(f"unknown search engine {engine!r}")
    resolved_pool = resolve_pool(pool, n_workers)
    if context is not None:
        context.check_compatible(table, wf, mw, measures, max_rule_size, prune)
    elif engine == "incremental":
        context = SearchContext(
            table,
            wf,
            mw,
            measures=measures,
            max_rule_size=max_rule_size,
            prune=prune,
            pool=resolved_pool,
            first_pick=first_pick,
        )

    def picks() -> Iterator[MarginalResult]:
        top = (
            np.zeros(table.n_rows, dtype=np.float64)
            if initial_top is None
            else initial_top.astype(np.float64).copy()
        )
        while True:
            if context is not None:
                result = context.find_best(top)
            else:
                result = find_best_marginal_rule(
                    table,
                    wf,
                    top,
                    mw,
                    measures=measures,
                    max_rule_size=max_rule_size,
                    prune=prune,
                    pool=resolved_pool,
                    first_pick=first_pick,
                )
            if result is None:
                return
            if context is not None and context.last_rows is not None:
                rows = context.last_rows
                top[rows] = np.maximum(top[rows], result.weight)
            else:
                mask = cover_mask(result.rule, table)
                top[mask] = np.maximum(top[mask], result.weight)
            yield result

    return picks()


def brs(
    table: Table,
    wf: WeightFunction,
    k: int,
    mw: float,
    *,
    measures: np.ndarray | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
    initial_top: np.ndarray | None = None,
    context: SearchContext | None = None,
    engine: str = "incremental",
    n_workers: int | None = None,
    pool: CountingPool | None = None,
    first_pick=None,
) -> BRSResult:
    """Greedily select up to ``k`` rules maximising ``Score`` (Problem 3).

    Parameters
    ----------
    table:
        Table (or sample) to summarise.
    wf:
        Monotonic non-negative weight function.
    k:
        Number of rules requested; fewer are returned when no rule adds
        positive marginal value.
    mw:
        Max-weight search parameter (see
        :func:`repro.core.marginal.find_best_marginal_rule`); the
        greedy guarantee holds when ``mw`` ≥ the heaviest rule in the
        optimal set.
    measures:
        Optional per-tuple measures for Sum aggregation (Section 6.3).
    max_rule_size, prune:
        Passed through to the marginal search.
    initial_top:
        Optional seed for the per-tuple selected-weight state (see
        :func:`brs_iter`).
    context, engine:
        Search-engine selection (see :func:`brs_iter`): the cached
        CELF engine by default, ``engine="scratch"`` for one cold
        search per pick, or an existing context to reuse its cache.
    n_workers, pool:
        Parallel-counting selection (see :func:`brs_iter`):
        ``n_workers=None``/``1`` serial, ``0`` all cores, ``>= 2`` a
        shared-memory worker pool of that size; an explicit ``pool``
        overrides ``n_workers``.  The selected rules are identical
        either way.
    """
    picks: list[MarginalResult] = []
    stats = SearchStats()
    if k <= 0:
        return BRSResult(
            rule_list=RuleList((), table, wf, measures), picks=(), stats=stats
        )
    for result in brs_iter(
        table,
        wf,
        mw,
        measures=measures,
        max_rule_size=max_rule_size,
        prune=prune,
        initial_top=initial_top,
        context=context,
        engine=engine,
        n_workers=n_workers,
        pool=pool,
        first_pick=first_pick,
    ):
        picks.append(result)
        stats.merge(result.stats)
        if len(picks) >= k:
            break
    rule_list = RuleList((p.rule for p in picks), table, wf, measures)
    return BRSResult(rule_list=rule_list, picks=tuple(picks), stats=stats)


def brs_time_limited(
    table: Table,
    wf: WeightFunction,
    mw: float,
    time_limit_seconds: float,
    *,
    max_rules: int | None = None,
    measures: np.ndarray | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
    initial_top: np.ndarray | None = None,
    context: SearchContext | None = None,
    engine: str = "incremental",
    n_workers: int | None = None,
    pool: CountingPool | None = None,
    first_pick=None,
) -> BRSResult:
    """Keep adding rules until a wall-clock budget runs out (§6.1).

    The paper's alternative to a fixed ``k``: "set a time limit (of say
    5 seconds) and display as many rules as we can find within that
    time limit".  BRS is incremental, so the rules found within the
    budget are exactly the prefix a larger ``k`` would have produced.
    At least one search is always attempted (a summary with zero rules
    helps nobody); ``max_rules`` optionally caps the count as well.
    The incremental engine stretches the budget: later searches cost a
    few heap re-evaluations instead of full table passes, and
    ``n_workers``/``pool`` (see :func:`brs_iter`) shrink the dominant
    first search by sharding its counting passes over a shared-memory
    worker pool.
    """
    if time_limit_seconds <= 0:
        raise EngineError("time_limit_seconds must be positive")
    picks: list[MarginalResult] = []
    stats = SearchStats()
    deadline = time.perf_counter() + time_limit_seconds
    for result in brs_iter(
        table,
        wf,
        mw,
        measures=measures,
        max_rule_size=max_rule_size,
        prune=prune,
        initial_top=initial_top,
        context=context,
        engine=engine,
        n_workers=n_workers,
        pool=pool,
        first_pick=first_pick,
    ):
        picks.append(result)
        stats.merge(result.stats)
        if max_rules is not None and len(picks) >= max_rules:
            break
        if time.perf_counter() >= deadline:
            break
    rule_list = RuleList((p.rule for p in picks), table, wf, measures)
    return BRSResult(rule_list=rule_list, picks=tuple(picks), stats=stats)
