"""Weighting functions ``W(r)`` for rules (paper Sections 2.2 and 6.1).

A weighting function scores how *descriptive* a rule is, independently
of how many tuples it covers.  The paper requires two properties, which
:func:`validate_weight_function` checks empirically:

* **Non-negativity** — ``W(r) >= 0`` for all rules;
* **Monotonicity** — if ``r1`` is a sub-rule of ``r2`` then
  ``W(r1) <= W(r2)``.

All built-in functions depend only on *which* columns a rule
instantiates (not on the values), which the class hierarchy encodes via
:class:`ColumnSetWeight`; the best-marginal-rule search exploits this
to evaluate weights per candidate column set instead of per rule.

Built-ins:

* :class:`SizeWeight` — ``W(r) = size(r)``;
* :class:`BitsWeight` — ``W(r) = Σ_c ceil(log2 |c|)`` over instantiated
  columns;
* :class:`SizeMinusOneWeight` — ``W(r) = max(0, size(r) − 1)``
  (the paper's Figure 7 weighting; the text's ``Min`` is a typo, as a
  ``Min`` would be non-positive and constant-0 only at sizes 0–1);
* :class:`ParametricWeight` — the Section 6.1 family
  ``W(r) = (Σ_c o_{r,c} · w_c)^k``;
* :class:`ColumnIndicatorWeight` — 1 iff a designated column is
  instantiated (turns smart drill-down into *traditional* drill-down,
  Section 5.1);
* :class:`StarConstrainedWeight` — zeroes any rule leaving a designated
  column starred (the star drill-down reduction of Section 3.1);
* :class:`CallableWeight` — adapter for user lambdas.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import WeightFunctionError
from repro.core.rule import Rule, STAR
from repro.table.table import Table

__all__ = [
    "WeightFunction",
    "ColumnSetWeight",
    "SizeWeight",
    "BitsWeight",
    "SizeMinusOneWeight",
    "ParametricWeight",
    "ColumnIndicatorWeight",
    "StarConstrainedWeight",
    "CallableWeight",
    "MergedWeight",
    "adjust_column_preference",
    "bits_per_column",
    "validate_weight_function",
]


class WeightFunction(ABC):
    """Abstract base: assigns a non-negative, monotonic weight to rules."""

    @abstractmethod
    def weight(self, rule: Rule) -> float:
        """Return ``W(rule)``."""

    def __call__(self, rule: Rule) -> float:
        return self.weight(rule)

    def max_weight(self, n_columns: int) -> float | None:
        """Largest weight any rule over ``n_columns`` columns can attain.

        Used to sanity-check user-chosen ``mw``.  ``None`` when no
        finite bound is known (arbitrary callables).
        """
        return None


class ColumnSetWeight(WeightFunction):
    """A weight function that depends only on the instantiated column set.

    Subclasses implement :meth:`weight_of_columns`; the rule-level
    weight delegates to it.  Monotonicity then reduces to set
    monotonicity of ``weight_of_columns``.
    """

    @abstractmethod
    def weight_of_columns(self, columns: tuple[int, ...]) -> float:
        """Return the weight of any rule instantiating exactly ``columns``."""

    def weight(self, rule: Rule) -> float:
        return self.weight_of_columns(rule.instantiated_indexes)


class SizeWeight(ColumnSetWeight):
    """``W(r) = size(r)`` — the paper's default Size weighting.

    The score of a rule-list under Size weighting equals the number of
    table cells "pre-filled" when reconstructing the table from the
    rules (Section 2.2).
    """

    def weight_of_columns(self, columns: tuple[int, ...]) -> float:
        return float(len(columns))

    def max_weight(self, n_columns: int) -> float:
        return float(n_columns)

    def __repr__(self) -> str:
        return "SizeWeight()"


def bits_per_column(table: Table) -> tuple[float, ...]:
    """``ceil(log2 |c|)`` for every column of ``table``.

    Numeric (measure) columns get weight 0 — they are never
    instantiated by the miner.
    """
    bits: list[float] = []
    for idx in range(table.n_columns):
        if idx in table.schema.categorical_indexes:
            distinct = table.categorical(idx).distinct_count
            bits.append(float(math.ceil(math.log2(distinct))) if distinct > 1 else 0.0)
        else:
            bits.append(0.0)
    return tuple(bits)


class BitsWeight(ColumnSetWeight):
    """``W(r) = Σ_{c instantiated} ceil(log2 |c|)`` (paper Section 2.2).

    Weighs each column by its inherent complexity: instantiating a
    column with many distinct values conveys more information than a
    binary column.  Construct via :meth:`for_table` or with explicit
    per-column bit counts.
    """

    def __init__(self, column_bits: Sequence[float]):
        bits = tuple(float(b) for b in column_bits)
        if any(b < 0 for b in bits):
            raise WeightFunctionError("column bit weights must be non-negative")
        self._bits = bits

    @classmethod
    def for_table(cls, table: Table) -> "BitsWeight":
        """Derive per-column bits from the table's dictionary sizes."""
        return cls(bits_per_column(table))

    @property
    def column_bits(self) -> tuple[float, ...]:
        return self._bits

    def weight_of_columns(self, columns: tuple[int, ...]) -> float:
        return float(sum(self._bits[c] for c in columns))

    def max_weight(self, n_columns: int) -> float:
        return float(sum(self._bits))

    def __repr__(self) -> str:
        return f"BitsWeight({list(self._bits)})"


class SizeMinusOneWeight(ColumnSetWeight):
    """``W(r) = max(0, size(r) − 1)`` (the Figure 7 weighting).

    Gives zero weight to single-column rules, forcing the optimiser to
    surface rules instantiating at least two columns.
    """

    def weight_of_columns(self, columns: tuple[int, ...]) -> float:
        return float(max(0, len(columns) - 1))

    def max_weight(self, n_columns: int) -> float:
        return float(max(0, n_columns - 1))

    def __repr__(self) -> str:
        return "SizeMinusOneWeight()"


class ParametricWeight(ColumnSetWeight):
    """The Section 6.1 family ``W(r) = (Σ_c o_{r,c} · w_c)^k``.

    ``w_c`` are non-negative per-column weights and ``k >= 0`` an
    exponent.  ``Size`` is ``w_c = 1, k = 1``; ``Bits`` is
    ``w_c = ceil(log2 |c|), k = 1``.  Larger ``k`` favours rules that
    instantiate more columns (Section 6.1 shows how to pick ``k`` for a
    target instantiated fraction).
    """

    def __init__(self, column_weights: Sequence[float], exponent: float = 1.0):
        weights = tuple(float(w) for w in column_weights)
        if any(w < 0 for w in weights):
            raise WeightFunctionError("column weights must be non-negative")
        if exponent < 0:
            raise WeightFunctionError("exponent must be non-negative")
        self._weights = weights
        self._exponent = float(exponent)

    @property
    def column_weights(self) -> tuple[float, ...]:
        return self._weights

    @property
    def exponent(self) -> float:
        return self._exponent

    def weight_of_columns(self, columns: tuple[int, ...]) -> float:
        base = sum(self._weights[c] for c in columns)
        return float(base**self._exponent) if base > 0 else 0.0

    def max_weight(self, n_columns: int) -> float:
        return float(sum(self._weights) ** self._exponent)

    def __repr__(self) -> str:
        return f"ParametricWeight({list(self._weights)}, k={self._exponent})"


class ColumnIndicatorWeight(ColumnSetWeight):
    """``W(r) = 1`` iff column ``column`` is instantiated, else 0.

    With ``k`` set to the column's distinct count, BRS under this
    weighting reproduces a *traditional* drill-down on the column
    (Section 5.1): every displayed rule instantiates the column with a
    distinct value.
    """

    def __init__(self, column: int):
        if column < 0:
            raise WeightFunctionError("column index must be non-negative")
        self._column = column

    @property
    def column(self) -> int:
        return self._column

    def weight_of_columns(self, columns: tuple[int, ...]) -> float:
        return 1.0 if self._column in columns else 0.0

    def max_weight(self, n_columns: int) -> float:
        return 1.0

    def __repr__(self) -> str:
        return f"ColumnIndicatorWeight(column={self._column})"


class StarConstrainedWeight(WeightFunction):
    """Zero out rules that leave ``column`` starred (Section 3.1).

    Star drill-down on column ``c`` of rule ``r`` reduces to an
    unconstrained drill-down with the weight function ``W'`` where
    ``W'(r') = 0`` if ``r'`` stars ``c`` and ``W'(r') = W(r')``
    otherwise.  ``W'`` inherits monotonicity from ``W``.
    """

    def __init__(self, base: WeightFunction, column: int):
        if column < 0:
            raise WeightFunctionError("column index must be non-negative")
        self._base = base
        self._column = column

    @property
    def base(self) -> WeightFunction:
        return self._base

    @property
    def column(self) -> int:
        return self._column

    def weight(self, rule: Rule) -> float:
        if rule.is_star(self._column):
            return 0.0
        return self._base.weight(rule)

    def max_weight(self, n_columns: int) -> float | None:
        return self._base.max_weight(n_columns)

    def __repr__(self) -> str:
        return f"StarConstrainedWeight({self._base!r}, column={self._column})"


class MergedWeight(WeightFunction):
    """Score a rule as its merge with a fixed parent rule (Section 3.1).

    Rule drill-down on ``r'`` filters the table to ``T_{r'}`` and then
    solves Problem 2 — but the displayed rules are super-rules of
    ``r'``.  On the filtered table, instantiating ``r'``'s columns is
    free (every tuple matches), so the faithful reduction scores each
    candidate ``r`` as ``W(merge(r, r'))``.  Monotone in ``r`` whenever
    ``W`` is monotone, and a column-set function whenever ``W`` is
    (the merged column set is the union with the parent's).
    """

    def __init__(self, base: WeightFunction, parent: Rule):
        self._base = base
        self._parent = parent

    @property
    def base(self) -> WeightFunction:
        return self._base

    @property
    def parent(self) -> Rule:
        return self._parent

    def weight(self, rule: Rule) -> float:
        merged = rule.merge(self._parent)
        if merged is None:
            # A candidate conflicting with the parent covers nothing on
            # the filtered table; weight it as the candidate alone.
            return self._base.weight(rule)
        return self._base.weight(merged)

    def max_weight(self, n_columns: int) -> float | None:
        return self._base.max_weight(n_columns)

    def __repr__(self) -> str:
        return f"MergedWeight({self._base!r}, parent={self._parent!r})"


class CallableWeight(WeightFunction):
    """Adapter wrapping an arbitrary ``rule -> float`` callable.

    The callable must satisfy the non-negativity and monotonicity
    contracts; use :func:`validate_weight_function` to spot-check.
    """

    def __init__(self, fn: Callable[[Rule], float], *, name: str = "user"):
        self._fn = fn
        self._name = name

    def weight(self, rule: Rule) -> float:
        value = float(self._fn(rule))
        if value < 0:
            raise WeightFunctionError(
                f"weight function {self._name!r} returned negative weight {value} for {rule}"
            )
        return value

    def __repr__(self) -> str:
        return f"CallableWeight({self._name!r})"


def adjust_column_preference(
    wf: WeightFunction, column: int, factor: float, n_columns: int
) -> WeightFunction:
    """Scale one column's weight contribution by ``factor`` (§6.1).

    The paper's UI lets the user "express interest or disinterest in
    certain columns by telling the system to favor or ignore those
    columns"; internally the weight given to rules instantiating the
    column is raised or lowered.  ``factor = 0`` ignores the column
    entirely; ``factor > 1`` favours it.

    Supported bases: Size (promoted to the parametric family), Bits,
    and Parametric weightings.  Raises
    :class:`~repro.errors.WeightFunctionError` for other weight
    functions, whose column contributions are not separable.
    """
    if factor < 0:
        raise WeightFunctionError("preference factor must be non-negative")
    if not 0 <= column < n_columns:
        raise WeightFunctionError(f"column index {column} out of range")
    if isinstance(wf, SizeWeight):
        weights = [1.0] * n_columns
        weights[column] = factor
        return ParametricWeight(weights, exponent=1.0)
    if isinstance(wf, BitsWeight):
        bits = list(wf.column_bits)
        bits[column] *= factor
        return BitsWeight(bits)
    if isinstance(wf, ParametricWeight):
        weights = list(wf.column_weights)
        weights[column] *= factor
        return ParametricWeight(weights, exponent=wf.exponent)
    raise WeightFunctionError(
        f"column preferences are not supported for {type(wf).__name__}"
    )


def validate_weight_function(
    wf: WeightFunction,
    table: Table,
    *,
    trials: int = 200,
    rng: np.random.Generator | None = None,
) -> None:
    """Empirically check non-negativity and monotonicity of ``wf``.

    Draws random rules from the table's value domains and compares each
    against random sub-rules.  Raises
    :class:`~repro.errors.WeightFunctionError` on the first
    counter-example found.  Passing is necessary but (being sampled)
    not sufficient for correctness.
    """
    rng = rng or np.random.default_rng(0)
    cat_idx = table.schema.categorical_indexes
    if not cat_idx or table.n_rows == 0:
        return
    for _ in range(trials):
        n_fixed = int(rng.integers(0, len(cat_idx) + 1))
        fixed = list(rng.choice(cat_idx, size=n_fixed, replace=False)) if n_fixed else []
        values: dict[int, object] = {}
        for idx in fixed:
            col = table.categorical(int(idx))
            values[int(idx)] = col.decode(int(rng.integers(col.distinct_count)))
        rule = Rule.from_items(table.n_columns, values)
        w = wf.weight(rule)
        if w < 0:
            raise WeightFunctionError(f"negative weight {w} for rule {rule}")
        # Compare against every immediate sub-rule (one column re-starred).
        for idx in rule.instantiated_indexes:
            sub = rule.with_star(idx)
            w_sub = wf.weight(sub)
            if w_sub > w + 1e-12:
                raise WeightFunctionError(
                    f"monotonicity violated: W({sub}) = {w_sub} > W({rule}) = {w}"
                )


def all_column_subsets(n_columns: int, max_size: int | None = None) -> Iterable[tuple[int, ...]]:
    """Yield all instantiated-column subsets up to ``max_size`` (testing aid)."""
    upper = n_columns if max_size is None else min(max_size, n_columns)
    for size in range(upper + 1):
        yield from itertools.combinations(range(n_columns), size)
