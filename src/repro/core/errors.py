"""Back-compat shim: the exception hierarchy lives in :mod:`repro.errors`.

Kept so ``repro.core.errors`` imports keep working; new code should
import from :mod:`repro.errors` directly.
"""

from repro.errors import (
    AllocationError,
    DatasetError,
    EncodingError,
    ReproError,
    RuleError,
    SamplingError,
    SchemaError,
    SessionError,
    StorageError,
    WeightFunctionError,
)

__all__ = [
    "AllocationError",
    "DatasetError",
    "EncodingError",
    "ReproError",
    "RuleError",
    "SamplingError",
    "SchemaError",
    "SessionError",
    "StorageError",
    "WeightFunctionError",
]
