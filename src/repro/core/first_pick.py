"""Shared first-pick marginal cache: registration-time level-1 precompute.

Every fresh :class:`~repro.core.search_cache.SearchContext` (and every
scratch ``_Searcher``) pays a full level-wise scan for its *first* pick
even though picks 2..k are nearly free.  Tables in the serving catalog
are registered once and shared by every tenant, so the level-1
(single-column) count/marginal vectors are the same for every cold
session over the same ``(table, weighting, mw)``.  This module
precomputes them once and serves them read-only.

Bit-identity is the design constraint: the greedy operator must return
*provably identical* rule lists with or without the cache, and IEEE
floats are not distributive — ``weight * count`` is not always the same
float as the kernel's per-row gain accumulation.  So the cache stores
the *actual output* of :func:`~repro.core.parallel
.count_extensions_kernel` run at the fixed base vector ``top == 0.0``,
and consumers use it only when their own ``top`` is elementwise equal
to that base (the cold first build; warmed searches fall back to the
normal scan).  Accumulation order matches too: ``np.bincount`` adds
weights in ascending row order, exactly like the cold pass.

The optional bounded level-2 extension caches the child counts of *hot*
single-column parents, observed through a small access-stats hook
(:meth:`FirstPickCache.note_pair`).  A joint
``codes_p * n_q + codes_q`` bincount accumulates every
``(parent code, child code)`` bin over the same rows in the same
ascending order as the cold per-parent kernel call, so the served
arrays are bit-identical there as well; it is only served while the
search ``top`` is still the base vector (i.e. expansions performed to
settle the very first pick).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.core.marginal import _column_set_weight, _extension_weight
from repro.core.parallel import count_extensions_kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.weights import WeightFunction
    from repro.table.table import Table

__all__ = ["FirstPickCache", "build_first_pick_cache", "extend_first_pick_cache"]


class FirstPickCache:
    """Read-only level-1 marginals for one ``(table, weighting, mw)``.

    ``entries[pos]`` holds ``(weight, supported, counts, marginals)``
    for categorical position ``pos`` — the exact kernel output of the
    cold first pass at ``top == 0.0``.  Consumers key the cache by
    *identity* (``matches``): the same ``Table`` object and the same
    ``WeightFunction`` instance, so a re-registered (changed) table or
    a per-call derived weighting can never alias into stale marginals.

    Instances are shared across sessions and threads; the level-1
    entries are immutable after construction, the level-2 pair map only
    grows (fully-built immutable values published under a lock), and
    the counters are best-effort statistics.
    """

    def __init__(
        self,
        table: "Table",
        wf: "WeightFunction",
        mw: float,
        entries,
        *,
        pair_limit: int = 0,
        pair_threshold: int = 2,
    ):
        self.table = table
        self.wf = wf
        self.mw = float(mw)
        self.entries = tuple(entries)
        self.pair_limit = int(pair_limit)
        self.pair_threshold = max(1, int(pair_threshold))
        self._fast_weight = _column_set_weight(wf)
        self._cat_positions = tuple(table.schema.categorical_indexes)
        self._codes = table.categorical_code_arrays()
        self._distinct = tuple(
            table.categorical(idx).distinct_count for idx in self._cat_positions
        )
        self._measures = np.ones(table.n_rows, dtype=np.float64)
        self._base_top = np.zeros(table.n_rows, dtype=np.float64)
        # Level-2: (p, q) -> (weight, {parent code: (supported, counts,
        # marginals)}).  Grows under _lock, read lock-free (the GIL
        # makes dict reads of fully-built values safe).
        self._pairs: dict = {}
        self._pair_seen: dict = {}
        self._lock = threading.Lock()
        # Best-effort counters, surfaced through catalog /stats.
        self.hits = 0
        self.misses = 0
        self.pair_hits = 0
        self.pair_misses = 0
        self.pairs_built = 0

    # -- validity ---------------------------------------------------------------

    def matches(self, table: "Table", wf: "WeightFunction", mw: float) -> bool:
        """True when this cache is valid for a search over exactly
        ``(table, wf, mw)`` — identity on the objects, equality on mw."""
        return table is self.table and wf is self.wf and float(mw) == self.mw

    # -- level 1 ----------------------------------------------------------------

    def level1(self, pos: int):
        """``(weight, supported, counts, marginals)`` for categorical
        position ``pos`` at the base ``top``."""
        return self.entries[pos]

    # -- level 2 ----------------------------------------------------------------

    def pair(self, p: int, code: int, q: int):
        """Cached extensions of single-column parent ``(p, code)`` on
        column ``q``, or ``None`` when the pair is not cached."""
        built = self._pairs.get((p, q))
        if built is None:
            self.pair_misses += 1
            return None
        self.pair_hits += 1
        weight, per_code = built
        entry = per_code.get(int(code))
        if entry is None:  # parent code carries rows, so this is only
            # reachable for codes filtered out at build time; serve the
            # (empty) truth rather than falling back to a scan.
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return weight, empty_i, empty_f, empty_f
        return (weight, *entry)

    def note_pair(self, p: int, q: int) -> None:
        """Access-stats hook: record a cold expansion of pair ``(p, q)``
        and build its level-2 entry once it crosses the threshold."""
        if self.pair_limit <= 0:
            return
        key = (p, q)
        with self._lock:
            if key in self._pairs:
                return
            seen = self._pair_seen.get(key, 0) + 1
            self._pair_seen[key] = seen
            if seen < self.pair_threshold or len(self._pairs) >= self.pair_limit:
                return
            self._pairs[key] = self._build_pair(p, q)
            self.pairs_built += 1

    def _build_pair(self, p: int, q: int):
        """Joint bincount over ``(codes_p, codes_q)``: per-bin weight
        accumulation runs over the same rows in the same ascending order
        as the cold per-parent kernel call, hence bit-identical."""
        n_q = self._distinct[q]
        joint = self._codes[p].astype(np.int64) * n_q + self._codes[q]
        n_bins = self._distinct[p] * n_q
        # The fast-path weight depends only on the column *positions*,
        # so any parent code stands in for the whole column.
        weight = _extension_weight(self._fast_weight, self._cat_positions, ((p, 0),), q)
        counts = np.bincount(joint, weights=self._measures, minlength=n_bins)
        gains = np.maximum(weight - self._base_top, 0.0) * self._measures
        marginals = np.bincount(joint, weights=gains, minlength=n_bins)
        per_code: dict = {}
        for code in range(self._distinct[p]):
            seg = slice(code * n_q, (code + 1) * n_q)
            seg_counts = counts[seg]
            supported = np.nonzero(seg_counts > 0)[0]
            if supported.size:
                per_code[code] = (
                    supported,
                    seg_counts[supported],
                    marginals[seg][supported],
                )
        return weight, per_code

    # -- statistics -------------------------------------------------------------

    def describe(self) -> dict:
        """Counter snapshot for the serving ``/stats`` surface."""
        return {
            "columns": len(self.entries),
            "mw": self.mw,
            "hits": self.hits,
            "misses": self.misses,
            "pairs": len(self._pairs),
            "pairs_built": self.pairs_built,
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
        }


def build_first_pick_cache(
    table: "Table",
    wf: "WeightFunction",
    mw: float,
    *,
    pair_limit: int = 0,
    pair_threshold: int = 2,
) -> FirstPickCache | None:
    """Build the level-1 cache for ``(table, wf, mw)``, or ``None``.

    ``None`` means the combination has no fast path to cache: a
    weighting outside the scalar column-set family, or a table with no
    categorical columns.  The arrays come from the same
    :func:`~repro.core.parallel.count_extensions_kernel` both engines'
    cold first passes call (measures all-ones — the cache serves only
    Count searches — and ``top == 0.0``), so serving them is
    bit-identical to re-running the scan.
    """
    fast_weight = _column_set_weight(wf)
    if fast_weight is None:
        return None
    cat_positions = tuple(table.schema.categorical_indexes)
    if not cat_positions:
        return None
    codes = table.categorical_code_arrays()
    measures = np.ones(table.n_rows, dtype=np.float64)
    top = np.zeros(table.n_rows, dtype=np.float64)
    entries = []
    for pos, idx in enumerate(cat_positions):
        weight = _extension_weight(fast_weight, cat_positions, (), pos)
        n_values = table.categorical(idx).distinct_count
        supported, counts, marginals = count_extensions_kernel(
            codes[pos], measures, top, None, n_values, weight
        )
        entries.append((weight, supported, counts, marginals))
    return FirstPickCache(
        table,
        wf,
        mw,
        entries,
        pair_limit=pair_limit,
        pair_threshold=pair_threshold,
    )


def extend_first_pick_cache(
    cache: FirstPickCache,
    table: "Table",
    wf: "WeightFunction",
    *,
    pair_limit: int = 0,
    pair_threshold: int = 2,
) -> FirstPickCache | None:
    """Delta-maintain ``cache`` onto ``table``, an appended version of
    the cache's table, in O(appended rows).

    The level-1 vectors are per-bin fold-left sums in ascending row
    order (that is how ``np.bincount`` accumulates).  The old entry
    already holds the fold over the prefix rows, and ``np.add.at``
    applies its updates unbuffered in index order, so folding only the
    appended rows on top reproduces the cold pass's IEEE accumulation
    order exactly — the returned cache's entries are bit-identical to
    ``build_first_pick_cache(table, wf, cache.mw)``.

    Returns ``None`` whenever the delta cannot be maintained and the
    caller must rebuild cold: a weighting outside the scalar
    column-set family, a per-position weight that changed between
    versions (e.g. a ``bits`` weighting over a dictionary that grew),
    or tables that do not stand in the dictionary-prefix append
    relation.  Level-2 pair entries are never carried over — they
    rebuild lazily through :meth:`FirstPickCache.note_pair`.
    """
    old = cache.table
    n_old = old.n_rows
    if table.n_rows < n_old or table.schema != old.schema:
        return None
    fast_weight = _column_set_weight(wf)
    if fast_weight is None:
        return None
    cat_positions = tuple(table.schema.categorical_indexes)
    if not cat_positions or len(cache.entries) != len(cat_positions):
        return None
    codes = table.categorical_code_arrays()
    old_codes = old.categorical_code_arrays()
    for pos, idx in enumerate(cat_positions):
        old_col = old.categorical(idx)
        if table.categorical(idx).values[: old_col.distinct_count] != old_col.values:
            return None
        if not np.array_equal(codes[pos][:n_old], old_codes[pos]):
            return None
    entries = []
    for pos, idx in enumerate(cat_positions):
        weight = _extension_weight(fast_weight, cat_positions, (), pos)
        old_entry = cache.entries[pos]
        if old_entry is None or old_entry[0] != weight:
            return None
        _weight, old_supported, old_counts, old_marginals = old_entry
        n_values = table.categorical(idx).distinct_count
        counts = np.zeros(n_values, dtype=np.float64)
        marginals = np.zeros(n_values, dtype=np.float64)
        counts[old_supported] = old_counts
        marginals[old_supported] = old_marginals
        tail = codes[pos][n_old:]
        # Cold per-row values at the base vector: measures are all-ones
        # and top == 0.0, so every appended row adds 1.0 to its count
        # bin and max(weight - 0.0, 0.0) * 1.0 to its marginal bin.
        np.add.at(counts, tail, np.ones(tail.size, dtype=np.float64))
        gain = float(np.maximum(weight - 0.0, 0.0) * 1.0)
        np.add.at(marginals, tail, np.full(tail.size, gain, dtype=np.float64))
        supported = np.nonzero(counts > 0)[0]
        entries.append((weight, supported, counts[supported], marginals[supported]))
    return FirstPickCache(
        table,
        wf,
        cache.mw,
        entries,
        pair_limit=pair_limit,
        pair_threshold=pair_threshold,
    )
