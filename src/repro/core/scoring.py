"""Scoring machinery: ``Count``, ``MCount``, ``Score`` (paper Sections 2.1, 3.1).

Definitions implemented here, for a table ``T``, weight function ``W``
and rule-list ``R``:

* ``Count(r)`` — number of tuples covered by ``r`` (or the ``Sum`` of a
  measure column over covered tuples, Section 6.3);
* ``MCount(r, R)`` — tuples covered by ``r`` and by no earlier rule in
  the list;
* ``Score(R) = Σ_r W(r) · MCount(r, R)``, equivalently
  ``Σ_t W(TOP(t, R))`` where ``TOP`` is the first covering rule;
* Lemma 1: sorting a list in descending weight never decreases its
  score, so :func:`score_set` defines the score of a *set* of rules via
  its weight-sorted ordering (Definition 2).

Everything is vectorised: coverage is a boolean mask per rule and the
``TOP`` weights live in a per-tuple ``float64`` array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import RuleError
from repro.core.rule import Rule, cover_mask
from repro.core.weights import WeightFunction
from repro.table.table import Table

__all__ = [
    "tuple_measures",
    "count",
    "aggregate",
    "sort_rules_by_weight",
    "marginal_counts",
    "score_list",
    "score_set",
    "top_weights",
    "ScoredRule",
    "RuleList",
]


def tuple_measures(table: Table, measure: str | None = None) -> np.ndarray:
    """Per-tuple contribution array: all-ones for Count, or a measure column.

    With ``measure`` set to a numeric column name, scores and marginal
    values aggregate the ``Sum`` of that column instead of tuple counts
    (Section 6.3).  Negative measure values are rejected: they would
    break the submodularity of ``Score`` and with it the greedy
    guarantee.
    """
    if measure is None:
        return np.ones(table.n_rows, dtype=np.float64)
    data = table.numeric(measure).data
    if np.any(data < 0):
        raise RuleError(f"measure column {measure!r} contains negative values")
    return data.astype(np.float64)


def count(rule: Rule, table: Table) -> int:
    """``Count(r)``: the number of table tuples covered by ``rule``."""
    return int(cover_mask(rule, table).sum())


def aggregate(rule: Rule, table: Table, measures: np.ndarray | None = None) -> float:
    """Aggregate of ``measures`` over the tuples covered by ``rule``.

    Equals :func:`count` when ``measures`` is None/all-ones and
    ``Sum(r)`` when it is a measure column.
    """
    mask = cover_mask(rule, table)
    if measures is None:
        return float(mask.sum())
    return float(measures[mask].sum())


def sort_rules_by_weight(
    rules: Iterable[Rule], wf: WeightFunction
) -> list[Rule]:
    """Sort rules in descending weight (Lemma 1 ordering), stably.

    Ties keep their input order, making the result deterministic for
    deterministic inputs.
    """
    ordered = list(rules)
    return sorted(ordered, key=lambda r: -wf.weight(r))


def marginal_counts(
    rules: Sequence[Rule],
    table: Table,
    measures: np.ndarray | None = None,
) -> list[float]:
    """``MCount(r, R)`` for every rule of the list, in list order.

    The i-th entry aggregates the tuples covered by ``rules[i]`` but by
    none of ``rules[:i]``.
    """
    if measures is None:
        measures = np.ones(table.n_rows, dtype=np.float64)
    covered = np.zeros(table.n_rows, dtype=bool)
    result: list[float] = []
    for rule in rules:
        mask = cover_mask(rule, table)
        fresh = mask & ~covered
        result.append(float(measures[fresh].sum()))
        covered |= mask
    return result


def score_list(
    rules: Sequence[Rule],
    table: Table,
    wf: WeightFunction,
    measures: np.ndarray | None = None,
) -> float:
    """``Score`` of a rule *list* in its given order (Problem 2).

    ``Σ_r W(r) · MCount(r, R)`` — no re-sorting is applied, so this can
    evaluate deliberately mis-ordered lists (used to test Lemma 1).
    """
    mcounts = marginal_counts(rules, table, measures)
    return float(sum(wf.weight(r) * m for r, m in zip(rules, mcounts)))


def score_set(
    rules: Iterable[Rule],
    table: Table,
    wf: WeightFunction,
    measures: np.ndarray | None = None,
) -> float:
    """``Score`` of a rule *set* (Definition 2): weight-sorted list score."""
    return score_list(sort_rules_by_weight(rules, wf), table, wf, measures)


def top_weights(
    rules: Iterable[Rule],
    table: Table,
    wf: WeightFunction,
) -> np.ndarray:
    """Per-tuple ``W(TOP(t, S))``: the weight of the best covering rule.

    Tuples covered by no rule get 0.  This array is the state the
    greedy algorithm carries between iterations: the marginal value of
    a candidate ``r`` is ``Σ_{t ∈ r} max(0, W(r) − top[t])`` (times the
    tuple measure).
    """
    top = np.zeros(table.n_rows, dtype=np.float64)
    for rule in rules:
        w = wf.weight(rule)
        mask = cover_mask(rule, table)
        top[mask] = np.maximum(top[mask], w)
    return top


@dataclass(frozen=True)
class ScoredRule:
    """A rule annotated with the statistics the paper displays.

    ``count`` is the rule's (estimated) aggregate over the whole table
    — the paper displays Count rather than MCount because it is easier
    to interpret; ``mcount`` is the marginal aggregate within the list;
    ``weight`` is ``W(r)``.
    """

    rule: Rule
    weight: float
    count: float
    mcount: float

    @property
    def size(self) -> int:
        return self.rule.size

    def scaled(self, factor: float) -> "ScoredRule":
        """Scale count statistics by a sampling factor ``N_s``."""
        return ScoredRule(self.rule, self.weight, self.count * factor, self.mcount * factor)


class RuleList:
    """An immutable weight-sorted rule list with its score breakdown.

    Maintains the Lemma 1 invariant (descending weight) and precomputes
    ``Count``/``MCount`` per rule plus the total score, which is what a
    drill-down returns for display.
    """

    __slots__ = ("_entries", "_score")

    def __init__(
        self,
        rules: Iterable[Rule],
        table: Table,
        wf: WeightFunction,
        measures: np.ndarray | None = None,
    ):
        # One cover mask per rule yields both Count (aggregate over the
        # mask) and MCount (aggregate over the not-yet-covered part).
        ordered = sort_rules_by_weight(rules, wf)
        covered = np.zeros(table.n_rows, dtype=bool)
        entries: list[ScoredRule] = []
        total = 0.0
        for rule in ordered:
            mask = cover_mask(rule, table)
            fresh = mask & ~covered
            if measures is None:
                c = float(mask.sum())
                mcount = float(fresh.sum())
            else:
                c = float(measures[mask].sum())
                mcount = float(measures[fresh].sum())
            covered |= mask
            w = wf.weight(rule)
            entries.append(ScoredRule(rule, w, c, mcount))
            total += w * mcount
        self._entries = tuple(entries)
        self._score = total

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, i: int) -> ScoredRule:
        return self._entries[i]

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(e.rule for e in self._entries)

    @property
    def entries(self) -> tuple[ScoredRule, ...]:
        return self._entries

    @property
    def score(self) -> float:
        """``Score(R)`` under the Definition 2 (weight-sorted) ordering."""
        return self._score

    def __repr__(self) -> str:
        return f"RuleList(k={len(self)}, score={self._score:g})"
