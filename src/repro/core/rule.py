"""Rules: wildcard tuple patterns over a table (paper Section 2.1).

A *rule* assigns each column either a concrete value or the wildcard
``?`` (:data:`STAR`).  A rule **covers** a tuple when every non-star
value matches; ``r1`` is a **sub-rule** of ``r2`` when ``r1`` stars at
least the columns ``r2`` stars and they agree wherever both are
instantiated, which implies every tuple covered by ``r2`` is covered by
``r1``.  The *size* of a rule is its number of non-star values.

Values may be any hashable objects; for bucketized numeric columns they
are :class:`~repro.table.bucketize.Interval` instances, and a raw
numeric column may be matched by an ``Interval`` value directly (range
rules, Section 2.1).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import RuleError
from repro.table.bucketize import Interval
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = ["STAR", "Wildcard", "Rule", "cover_mask"]


class Wildcard:
    """Singleton wildcard marker, rendered as ``?``.

    A distinct sentinel class (not ``None``) so ``None`` can be a
    legitimate categorical value in user data.
    """

    _instance: "Wildcard | None" = None

    def __new__(cls) -> "Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"

    def __reduce__(self):
        return (Wildcard, ())


STAR = Wildcard()


class Rule:
    """An immutable, hashable rule over ``n`` columns.

    Construct with one entry per column, using :data:`STAR` for
    wildcards::

        Rule(["Walmart", STAR, STAR])

    or positionally via :meth:`from_items`.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[Any]):
        vals = tuple(values)
        for v in vals:
            if not isinstance(v, Wildcard):
                try:
                    hash(v)
                except TypeError:
                    raise RuleError(f"rule values must be hashable, got {v!r}") from None
        self._values = vals

    # -- construction -------------------------------------------------------------

    @classmethod
    def trivial(cls, n_columns: int) -> "Rule":
        """The all-star rule (the root of every drill-down tree)."""
        return cls([STAR] * n_columns)

    @classmethod
    def from_items(cls, n_columns: int, items: Mapping[int, Any]) -> "Rule":
        """Build a rule from ``{column index: value}``; others are stars."""
        values: list[Any] = [STAR] * n_columns
        for idx, value in items.items():
            if not 0 <= idx < n_columns:
                raise RuleError(f"column index {idx} out of range for {n_columns} columns")
            values[idx] = value
        return cls(values)

    @classmethod
    def from_named(cls, table: Table, **named: Any) -> "Rule":
        """Build a rule using ``column_name=value`` keywords against ``table``."""
        items = {table.schema.index_of(name): value for name, value in named.items()}
        return cls.from_items(table.n_columns, items)

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, i: int) -> Any:
        return self._values[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join("?" if isinstance(v, Wildcard) else repr(v) for v in self._values)
        return f"Rule({inner})"

    def __str__(self) -> str:
        inner = ", ".join("?" if isinstance(v, Wildcard) else str(v) for v in self._values)
        return f"({inner})"

    # -- structure ----------------------------------------------------------------

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    @property
    def size(self) -> int:
        """Number of non-star values (the paper's rule *size*)."""
        return sum(1 for v in self._values if not isinstance(v, Wildcard))

    @property
    def is_trivial(self) -> bool:
        return self.size == 0

    def is_star(self, i: int) -> bool:
        """True when column ``i`` is a wildcard."""
        return isinstance(self._values[i], Wildcard)

    @property
    def instantiated_indexes(self) -> tuple[int, ...]:
        """Indexes of non-star columns, ascending."""
        return tuple(i for i, v in enumerate(self._values) if not isinstance(v, Wildcard))

    @property
    def star_indexes(self) -> tuple[int, ...]:
        """Indexes of star columns, ascending."""
        return tuple(i for i, v in enumerate(self._values) if isinstance(v, Wildcard))

    def items(self) -> Iterator[tuple[int, Any]]:
        """Iterate ``(column index, value)`` over non-star columns."""
        for i, v in enumerate(self._values):
            if not isinstance(v, Wildcard):
                yield i, v

    # -- derivation -----------------------------------------------------------------

    def with_value(self, i: int, value: Any) -> "Rule":
        """Return a super-rule with column ``i`` set to ``value``."""
        if not 0 <= i < len(self._values):
            raise RuleError(f"column index {i} out of range")
        vals = list(self._values)
        vals[i] = value
        return Rule(vals)

    def with_star(self, i: int) -> "Rule":
        """Return a sub-rule with column ``i`` reset to the wildcard."""
        return self.with_value(i, STAR)

    # -- lattice relations -----------------------------------------------------------

    def is_subrule_of(self, other: "Rule") -> bool:
        """True when ``self`` is a sub-rule of ``other`` (paper Section 2.1).

        ``self`` has no more instantiated columns than ``other`` and
        they agree on every column where both are instantiated; every
        tuple covered by ``other`` is then covered by ``self``.
        """
        if len(self._values) != len(other._values):
            raise RuleError("rules must have the same arity to compare")
        for mine, theirs in zip(self._values, other._values):
            if isinstance(mine, Wildcard):
                continue
            if isinstance(theirs, Wildcard) or mine != theirs:
                return False
        return True

    def is_superrule_of(self, other: "Rule") -> bool:
        """True when ``other`` is a sub-rule of ``self``."""
        return other.is_subrule_of(self)

    def is_strict_subrule_of(self, other: "Rule") -> bool:
        """Sub-rule relation excluding equality."""
        return self != other and self.is_subrule_of(other)

    def merge(self, other: "Rule") -> "Rule | None":
        """Least upper bound of two rules, or ``None`` if they conflict.

        The merge instantiates every column instantiated in either
        rule; it exists only when the rules agree on shared columns.
        """
        if len(self._values) != len(other._values):
            raise RuleError("rules must have the same arity to merge")
        merged: list[Any] = []
        for mine, theirs in zip(self._values, other._values):
            if isinstance(mine, Wildcard):
                merged.append(theirs)
            elif isinstance(theirs, Wildcard) or mine == theirs:
                merged.append(mine)
            else:
                return None
        return Rule(merged)

    # -- row-level coverage ---------------------------------------------------------

    def covers_row(self, row: Sequence[Any]) -> bool:
        """True when this rule covers the decoded ``row`` (``t ∈ r``)."""
        if len(row) != len(self._values):
            raise RuleError("row arity does not match rule arity")
        for value, cell in zip(self._values, row):
            if isinstance(value, Wildcard):
                continue
            if isinstance(value, Interval):
                if isinstance(cell, Interval):
                    if cell != value:
                        return False
                elif cell not in value:
                    return False
            elif value != cell:
                return False
        return True


def cover_mask(rule: Rule, table: Table) -> np.ndarray:
    """Vectorised coverage: boolean mask of table rows covered by ``rule``.

    Categorical columns match by dictionary code (a value absent from
    the dictionary covers nothing); numeric columns match an
    :class:`Interval` value by range and a scalar by equality.
    """
    if len(rule) != table.n_columns:
        raise RuleError(
            f"rule arity {len(rule)} does not match table with {table.n_columns} columns"
        )
    mask = np.ones(table.n_rows, dtype=bool)
    for idx, value in rule.items():
        col = table.column(idx)
        if isinstance(col, CategoricalColumn):
            code = col.try_encode(value)
            if code is None:
                return np.zeros(table.n_rows, dtype=bool)
            mask &= col.mask_eq(code)
        else:
            assert isinstance(col, NumericColumn)
            if isinstance(value, Interval):
                mask &= col.mask_range(value.lo, value.hi, closed_right=value.closed_right)
            else:
                mask &= col.mask_eq(float(value))
    return mask
