"""Find-best-marginal-rule — the paper's Algorithm 2 (Section 3.5).

Given the current solution set ``S`` (summarised by a per-tuple array of
``W(TOP(t, S))`` weights), the search finds the rule of weight ≤ ``mw``
with the highest *marginal value*

    MarginalValue(r) = Σ_{t ∈ r} m(t) · ( W(r) − min(W(r), W(TOP(t, S))) )

where ``m(t)`` is the tuple measure (1 for Count, the measure column for
Sum, Section 6.3).  The search enumerates candidates level-wise by rule
size, a-priori style: size-``j`` candidates are generated only from
surviving size-``j−1`` rules, extended on columns strictly after their
last instantiated column (so each rule is generated exactly once), with
values drawn from actual co-occurrence in the data.  A candidate's
descendants are pruned with the paper's upper bound

    MarginalVal(R') + Count(R') · (mw − W(R'))   for sub-rules R' of R,

compared against the best marginal value ``H`` found so far.

Implementation note: the per-level "pass over the table" is vectorised —
for one surviving parent and one extension column, the counts and
marginal values of *all* value extensions are two ``np.bincount`` calls
over the parent's covered rows.  Pruning therefore pays off by skipping
parents (the paper's ``Cn`` deletions), which is where the exponential
blow-up lives; the returned rule is identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import RuleError
from repro.core.rule import Rule
from repro.core.weights import (
    ColumnSetWeight,
    MergedWeight,
    StarConstrainedWeight,
    WeightFunction,
)
from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = ["MarginalResult", "SearchStats", "find_best_marginal_rule"]

# Internal candidate key: ((cat_position, code), ...) sorted by position.
_Key = tuple[tuple[int, int], ...]


@dataclass
class SearchStats:
    """Work counters for one best-marginal-rule search.

    ``rows_scanned`` counts tuple visits across all bincount passes and
    is the vectorised analogue of the paper's "passes over the table";
    ``parents_pruned`` counts surviving-rule extensions skipped by the
    upper bound.
    """

    passes: int = 0
    candidates_generated: int = 0
    candidates_eligible: int = 0
    parents_extended: int = 0
    parents_pruned: int = 0
    rows_scanned: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another search's counters into this one."""
        self.passes += other.passes
        self.candidates_generated += other.candidates_generated
        self.candidates_eligible += other.candidates_eligible
        self.parents_extended += other.parents_extended
        self.parents_pruned += other.parents_pruned
        self.rows_scanned += other.rows_scanned


@dataclass(frozen=True)
class MarginalResult:
    """The best marginal rule plus its statistics."""

    rule: Rule
    weight: float
    count: float
    marginal: float
    stats: SearchStats


@dataclass
class _Entry:
    """Counted candidate bookkeeping: the ``C`` map of Algorithm 2."""

    weight: float
    count: float
    marginal: float
    extendable: bool  # False once pruned (or weight > mw): never extended


def _column_set_weight(
    wf: WeightFunction,
) -> Callable[[tuple[int, ...]], float] | None:
    """Fast path: a ``column-index-set -> weight`` callable, when valid.

    All built-in weight functions depend only on the instantiated
    column set; star-constrained wrappers around such functions do too.
    Returns ``None`` for value-dependent callables (slow path).
    """
    if isinstance(wf, ColumnSetWeight):
        return wf.weight_of_columns
    if isinstance(wf, StarConstrainedWeight):
        inner = _column_set_weight(wf.base)
        if inner is None:
            return None
        star_col = wf.column

        def constrained(columns: tuple[int, ...]) -> float:
            if star_col not in columns:
                return 0.0
            return inner(columns)

        return constrained
    if isinstance(wf, MergedWeight):
        inner = _column_set_weight(wf.base)
        if inner is None:
            return None
        parent_columns = frozenset(wf.parent.instantiated_indexes)

        def merged(columns: tuple[int, ...]) -> float:
            return inner(tuple(sorted(parent_columns.union(columns))))

        return merged
    return None


class _Searcher:
    """State for one invocation of Algorithm 2 over a table."""

    def __init__(
        self,
        table: Table,
        wf: WeightFunction,
        top: np.ndarray,
        mw: float,
        measures: np.ndarray | None,
        max_rule_size: int | None,
        prune: bool,
    ):
        self.table = table
        self.wf = wf
        self.mw = float(mw)
        self.prune = prune
        n = table.n_rows
        if top.shape != (n,):
            raise RuleError("top-weight array length must equal table rows")
        self.top = top
        self.measures = (
            np.ones(n, dtype=np.float64) if measures is None else measures.astype(np.float64)
        )
        self.cat_positions = table.schema.categorical_indexes
        self.codes: list[np.ndarray] = []
        self.distinct: list[int] = []
        for idx in self.cat_positions:
            col = table.column(idx)
            assert isinstance(col, CategoricalColumn)
            self.codes.append(col.codes)
            self.distinct.append(col.distinct_count)
        limit = len(self.cat_positions)
        self.max_rule_size = limit if max_rule_size is None else min(max_rule_size, limit)
        self.fast_weight = _column_set_weight(wf)
        self.stats = SearchStats()
        # C of Algorithm 2: every counted candidate, keyed canonically.
        self.counted: dict[_Key, _Entry] = {}
        self.best_key: _Key | None = None
        self.best_entry: _Entry | None = None
        self.threshold = 0.0  # H of Algorithm 2

    # -- weights ---------------------------------------------------------------

    def _table_columns(self, key: _Key) -> tuple[int, ...]:
        return tuple(self.cat_positions[pos] for pos, _ in key)

    def _rule_of(self, key: _Key) -> Rule:
        items: dict[int, Any] = {}
        for pos, code in key:
            table_idx = self.cat_positions[pos]
            col = self.table.column(table_idx)
            assert isinstance(col, CategoricalColumn)
            items[table_idx] = col.decode(code)
        return Rule.from_items(self.table.n_columns, items)

    def _weight_of(self, key: _Key) -> float:
        if self.fast_weight is not None:
            return self.fast_weight(self._table_columns(key))
        return self.wf.weight(self._rule_of(key))

    # -- bookkeeping -----------------------------------------------------------

    def _offer(self, key: _Key, entry: _Entry) -> None:
        """Record a counted candidate and update the running best (H).

        Candidates with weight above ``mw`` are ineligible, and — by
        monotonicity — so is every super-rule, so they are never
        extended either.
        """
        self.counted[key] = entry
        self.stats.candidates_generated += 1
        if entry.count <= 0:
            entry.extendable = False
            return
        if entry.weight > self.mw:
            entry.extendable = False
            return
        self.stats.candidates_eligible += 1
        if self._better(entry, key):
            self.best_entry = entry
            self.best_key = key
            self.threshold = max(self.threshold, entry.marginal)

    def _better(self, entry: _Entry, key: _Key) -> bool:
        """Deterministic comparison: marginal, then size, then key order."""
        if self.best_entry is None:
            return entry.marginal > 0
        if entry.marginal != self.best_entry.marginal:
            return entry.marginal > self.best_entry.marginal
        assert self.best_key is not None
        if len(key) != len(self.best_key):
            return len(key) < len(self.best_key)
        return key < self.best_key

    def _upper_bound(self, key: _Key) -> float:
        """min over counted immediate sub-rules of the paper's bound.

        A missing sub-rule means an ancestor was pruned, which already
        proves every super-rule suboptimal, so the bound is −inf.
        """
        bound = np.inf
        for drop in range(len(key)):
            sub = key[:drop] + key[drop + 1 :]
            if not sub:
                continue
            entry = self.counted.get(sub)
            if entry is None:
                return -np.inf
            slack = entry.marginal + entry.count * max(self.mw - entry.weight, 0.0)
            bound = min(bound, slack)
        return bound

    # -- passes -----------------------------------------------------------------

    def _mask_of(self, key: _Key) -> np.ndarray:
        mask = np.ones(self.table.n_rows, dtype=bool)
        for pos, code in key:
            mask &= self.codes[pos] == code
        return mask

    def _count_extensions(
        self, parent_key: _Key, parent_rows: np.ndarray, pos: int
    ) -> list[tuple[_Key, _Entry]]:
        """Count all value extensions of ``parent_key`` on column ``pos``.

        Two weighted bincounts over the parent's covered rows yield the
        Count and MarginalValue of every candidate ``parent ∧ (pos=v)``.
        """
        codes = self.codes[pos][parent_rows]
        measures = self.measures[parent_rows]
        top = self.top[parent_rows]
        n_values = self.distinct[pos]
        counts = np.bincount(codes, weights=measures, minlength=n_values)
        self.stats.rows_scanned += parent_rows.size
        out: list[tuple[_Key, _Entry]] = []
        if self.fast_weight is not None:
            columns = self._table_columns(parent_key) + (self.cat_positions[pos],)
            weight = self.fast_weight(tuple(sorted(columns)))
            gains = np.maximum(weight - top, 0.0) * measures
            marginals = np.bincount(codes, weights=gains, minlength=n_values)
            for code in np.nonzero(counts > 0)[0]:
                key = parent_key + ((pos, int(code)),)
                out.append(
                    (key, _Entry(weight, float(counts[code]), float(marginals[code]), True))
                )
        else:
            for code in np.nonzero(counts > 0)[0]:
                key = parent_key + ((pos, int(code)),)
                weight = self._weight_of(key)
                covered = codes == code
                marginal = float(
                    (np.maximum(weight - top[covered], 0.0) * measures[covered]).sum()
                )
                out.append((key, _Entry(weight, float(counts[code]), marginal, True)))
        return out

    def _first_pass(self) -> list[_Key]:
        """Count every size-1 rule (``Cn = all rules of size 1``)."""
        self.stats.passes += 1
        survivors: list[_Key] = []
        empty: _Key = ()
        all_rows = np.arange(self.table.n_rows, dtype=np.int64)
        for pos in range(len(self.cat_positions)):
            for key, entry in self._count_extensions(empty, all_rows, pos):
                self._offer(key, entry)
                survivors.append(key)
        return survivors

    def _next_pass(self, frontier: list[_Key], size: int) -> list[_Key]:
        """Generate, count, and prune size-``size`` candidates.

        A parent whose bound ``MarginalVal + Count·(mw − W)`` falls
        below the threshold ``H`` has its whole extension subtree cut
        (the paper's ``Cn`` deletion).  Surviving parents have every
        value extension counted exactly; a fresh candidate is offered
        as a potential best rule first (tightening ``H``) and then
        bound-checked to decide whether *it* will be extended.
        """
        self.stats.passes += 1
        survivors: list[_Key] = []
        n_cat = len(self.cat_positions)
        for parent_key in frontier:
            entry = self.counted[parent_key]
            if not entry.extendable:
                continue
            if self.prune:
                parent_bound = entry.marginal + entry.count * max(self.mw - entry.weight, 0.0)
                if parent_bound < self.threshold:
                    entry.extendable = False
                    self.stats.parents_pruned += 1
                    continue
            last_pos = parent_key[-1][0]
            if last_pos + 1 >= n_cat:
                continue
            parent_rows = np.nonzero(self._mask_of(parent_key))[0]
            self.stats.parents_extended += 1
            for pos in range(last_pos + 1, n_cat):
                for key, child in self._count_extensions(parent_key, parent_rows, pos):
                    self._offer(key, child)
                    if child.extendable and self.prune:
                        if self._upper_bound(key) < self.threshold:
                            child.extendable = False
                            self.stats.parents_pruned += 1
                    if child.extendable:
                        survivors.append(key)
        return survivors

    def run(self) -> MarginalResult | None:
        frontier = self._first_pass()
        size = 1
        while frontier and size < self.max_rule_size:
            size += 1
            frontier = self._next_pass(frontier, size)
        if self.best_key is None or self.best_entry is None:
            return None
        if self.best_entry.marginal <= 0:
            return None
        return MarginalResult(
            rule=self._rule_of(self.best_key),
            weight=self.best_entry.weight,
            count=self.best_entry.count,
            marginal=self.best_entry.marginal,
            stats=self.stats,
        )


def find_best_marginal_rule(
    table: Table,
    wf: WeightFunction,
    top: np.ndarray,
    mw: float,
    *,
    measures: np.ndarray | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
) -> MarginalResult | None:
    """Return the rule of weight ≤ ``mw`` with highest marginal value.

    Parameters
    ----------
    table:
        The (possibly filtered or sampled) table to mine.
    wf:
        Monotonic non-negative weight function.
    top:
        Per-tuple ``W(TOP(t, S))`` of the already-selected set ``S``
        (zeros for the first iteration); see
        :func:`repro.core.scoring.top_weights`.
    mw:
        Max-weight parameter: the search only considers rules with
        ``W(r) <= mw`` and uses ``mw`` in its pruning bound.  Smaller
        values run faster; values below the optimal rule's weight may
        return a sub-optimal rule (Section 3.5's approximation-ratio
        analysis).
    measures:
        Optional per-tuple measure array (Sum aggregation); defaults to
        all-ones (Count).
    max_rule_size:
        Optional cap on rule size (number of passes).
    prune:
        Disable to measure the value of the a-priori bound (ablation);
        the result is unchanged, only more candidates are explored.

    Returns ``None`` when no rule adds positive marginal value.
    """
    searcher = _Searcher(table, wf, top, mw, measures, max_rule_size, prune)
    return searcher.run()
