"""Find-best-marginal-rule — the paper's Algorithm 2 (Section 3.5).

Given the current solution set ``S`` (summarised by a per-tuple array of
``W(TOP(t, S))`` weights), the search finds the rule of weight ≤ ``mw``
with the highest *marginal value*

    MarginalValue(r) = Σ_{t ∈ r} m(t) · ( W(r) − min(W(r), W(TOP(t, S))) )

where ``m(t)`` is the tuple measure (1 for Count, the measure column for
Sum, Section 6.3).  The search enumerates candidates level-wise by rule
size, a-priori style: size-``j`` candidates are generated only from
surviving size-``j−1`` rules, extended on columns strictly after their
last instantiated column (so each rule is generated exactly once), with
values drawn from actual co-occurrence in the data.  A candidate's
descendants are pruned with the paper's upper bound

    MarginalVal(R') + Count(R') · (mw − W(R'))   for sub-rules R' of R,

compared against the best marginal value ``H`` found so far.

Implementation note: the per-level "pass over the table" is vectorised —
for one surviving parent and one extension column, the counts and
marginal values of *all* value extensions are two ``np.bincount`` calls
over the parent's covered rows.  Pruning therefore pays off by skipping
parents (the paper's ``Cn`` deletions), which is where the exponential
blow-up lives; the returned rule is identical to the paper's.

**Vertical row-index propagation.**  Each surviving candidate carries a
reference to its parent's covered row-index array plus its own
``(column, code)`` extension, so when (and only when) the candidate is
itself extended, its covered rows materialise as
``parent_rows[codes[parent_rows] == code]`` — O(parent support), never
the O(table size) full-table rescan (the old ``_mask_of``) that the
extended version of the paper (arXiv:1412.0364) identifies as the
dominant per-pass cost.  Materialisation is lazy because the a-priori
bound prunes the vast majority of generated candidates before they are
ever extended; partitioning rows eagerly for all of them costs more
than the rescans it avoids.

The same propagated row sets power the *incremental* engine in
:mod:`repro.core.search_cache`, which persists them across the ``k``
greedy searches of one BRS run (counts, weights, and coverage never
change between picks — only ``top`` does) and lazily re-evaluates
marginals CELF-style.  :class:`SearchStats` carries two counters for
it: ``cache_hits`` (marginal re-evaluations served from cached row
sets) and ``lazy_skips`` (cached candidates a search never had to
touch, the CELF saving).

**The counting-backend seam.**  The per-(parent, column) bincount pair
is factored into :func:`repro.core.parallel.count_extensions_kernel`,
the one counting primitive shared by this module, the incremental
engine, and the worker processes of the shared-memory counting pool
(:mod:`repro.core.parallel`).  A :class:`_Searcher` given a
``backend`` (via the public ``pool=``/``n_workers=`` knobs) collects
each level's (parent, column) tasks and counts them as one batch —
sharded across workers over a shared immutable code-array region —
instead of inline; tasks are never split below a whole (parent,
column) pair, so every bincount accumulates in the serial float order
and the per-candidate Counts/MarginalValues are bit-identical.  The
batched pass consults the pruning threshold ``H`` at the start of the
pass rather than continuously, which can only prune *less*; since the
bound argument holds for any valid ``H``, the selected rules are
provably unchanged.  Value-dependent (slow-path) weight functions
cannot ship a scalar weight to the workers and always count serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import RuleError
from repro.core.parallel import (
    CountTask,
    CountingPool,
    count_extensions_kernel,
    resolve_pool,
)
from repro.core.rule import Rule
from repro.core.weights import (
    ColumnSetWeight,
    MergedWeight,
    StarConstrainedWeight,
    WeightFunction,
)
from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = ["MarginalResult", "SearchStats", "find_best_marginal_rule"]

# Internal candidate key: ((cat_position, code), ...) sorted by position.
_Key = tuple[tuple[int, int], ...]


def _key_columns(key: _Key, cat_positions: Sequence[int]) -> tuple[int, ...]:
    """Table-column indexes instantiated by a candidate key."""
    return tuple(cat_positions[pos] for pos, _ in key)


def _extension_weight(
    fast_weight: Callable[[tuple[int, ...]], float],
    cat_positions: Sequence[int],
    parent_key: _Key,
    pos: int,
) -> float:
    """Fast-path weight shared by every value extension of one task.

    One definition for both engines (and hence the counting backend's
    task construction) — the bit-identical guarantee requires the
    weight fed to :func:`repro.core.parallel.count_extensions_kernel`
    to be computed identically everywhere.
    """
    columns = _key_columns(parent_key, cat_positions) + (cat_positions[pos],)
    return fast_weight(tuple(sorted(columns)))


def _key_rule(key: _Key, table: Table, cat_positions: Sequence[int]) -> Rule:
    """Decode a candidate key into a :class:`Rule` over ``table``.

    Shared by the from-scratch searcher and the incremental engine
    (:mod:`repro.core.search_cache`) so both decode keys identically.
    """
    items: dict[int, Any] = {}
    for pos, code in key:
        table_idx = cat_positions[pos]
        col = table.column(table_idx)
        assert isinstance(col, CategoricalColumn)
        items[table_idx] = col.decode(code)
    return Rule.from_items(table.n_columns, items)


@dataclass
class SearchStats:
    """Work counters for one best-marginal-rule search.

    ``rows_scanned`` counts tuple visits across all bincount passes and
    is the vectorised analogue of the paper's "passes over the table";
    ``parents_pruned`` counts surviving-rule extensions skipped by the
    upper bound.

    The incremental engine (:mod:`repro.core.search_cache`) adds two
    counters: ``cache_hits`` is the number of candidate marginals
    re-evaluated from cached row sets instead of regenerated by a
    counting pass, and ``lazy_skips`` is the number of cached candidates
    whose re-evaluation a CELF lazy-greedy search avoided entirely
    (their stale marginal — an upper bound, by submodularity — never
    reached the top of the heap).  Both are zero for from-scratch
    searches.
    """

    passes: int = 0
    candidates_generated: int = 0
    candidates_eligible: int = 0
    parents_extended: int = 0
    parents_pruned: int = 0
    rows_scanned: int = 0
    cache_hits: int = 0
    lazy_skips: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another search's counters into this one."""
        self.passes += other.passes
        self.candidates_generated += other.candidates_generated
        self.candidates_eligible += other.candidates_eligible
        self.parents_extended += other.parents_extended
        self.parents_pruned += other.parents_pruned
        self.rows_scanned += other.rows_scanned
        self.cache_hits += other.cache_hits
        self.lazy_skips += other.lazy_skips


@dataclass(frozen=True)
class MarginalResult:
    """The best marginal rule plus its statistics."""

    rule: Rule
    weight: float
    count: float
    marginal: float
    stats: SearchStats


@dataclass
class _Entry:
    """Counted candidate bookkeeping: the ``C`` map of Algorithm 2."""

    weight: float
    count: float
    marginal: float
    extendable: bool  # False once pruned (or weight > mw): never extended


def _column_set_weight(
    wf: WeightFunction,
) -> Callable[[tuple[int, ...]], float] | None:
    """Fast path: a ``column-index-set -> weight`` callable, when valid.

    All built-in weight functions depend only on the instantiated
    column set; star-constrained wrappers around such functions do too.
    Returns ``None`` for value-dependent callables (slow path).
    """
    if isinstance(wf, ColumnSetWeight):
        return wf.weight_of_columns
    if isinstance(wf, StarConstrainedWeight):
        inner = _column_set_weight(wf.base)
        if inner is None:
            return None
        star_col = wf.column

        def constrained(columns: tuple[int, ...]) -> float:
            if star_col not in columns:
                return 0.0
            return inner(columns)

        return constrained
    if isinstance(wf, MergedWeight):
        inner = _column_set_weight(wf.base)
        if inner is None:
            return None
        parent_columns = frozenset(wf.parent.instantiated_indexes)

        def merged(columns: tuple[int, ...]) -> float:
            return inner(tuple(sorted(parent_columns.union(columns))))

        return merged
    return None


class _Searcher:
    """State for one invocation of Algorithm 2 over a table."""

    def __init__(
        self,
        table: Table,
        wf: WeightFunction,
        top: np.ndarray,
        mw: float,
        measures: np.ndarray | None,
        max_rule_size: int | None,
        prune: bool,
        pool: CountingPool | None = None,
        first_pick=None,
    ):
        self.table = table
        self.wf = wf
        self.mw = float(mw)
        self.prune = prune
        n = table.n_rows
        if top.shape != (n,):
            raise RuleError("top-weight array length must equal table rows")
        # Normalised once so the serial kernel, the local-fallback
        # kernel, and the float64 shared-memory segment all see the
        # same values bit for bit (no-op for float64 input).
        self.top = np.asarray(top, dtype=np.float64)
        self.measures = (
            np.ones(n, dtype=np.float64) if measures is None else measures.astype(np.float64)
        )
        self.cat_positions = table.schema.categorical_indexes
        self.codes: list[np.ndarray] = []
        self.distinct: list[int] = []
        for idx in self.cat_positions:
            col = table.column(idx)
            assert isinstance(col, CategoricalColumn)
            self.codes.append(col.codes)
            self.distinct.append(col.distinct_count)
        limit = len(self.cat_positions)
        self.max_rule_size = limit if max_rule_size is None else min(max_rule_size, limit)
        self.fast_weight = _column_set_weight(wf)
        backend = None
        if pool is not None and self.fast_weight is not None:
            # Slow-path weights cannot ship a scalar weight to workers.
            backend = pool.backend_for(table, self.measures)
        self.backend = backend
        # Registration-time level-1 marginal cache (repro.core.first_pick):
        # valid only for a Count search over exactly this (table, wf, mw)
        # at the base top (all zeros) — the cold first pick.  Anything
        # else falls back to the normal scan.
        usable = (
            first_pick is not None
            and self.fast_weight is not None
            and first_pick.matches(table, wf, self.mw)
            # Cache arrays were built with all-ones measures (Count);
            # an explicit all-ones array feeds the kernel identical inputs.
            and (measures is None or bool((self.measures == 1.0).all()))
            and not self.top.any()
        )
        self.first_pick = first_pick if usable else None
        if first_pick is not None and not usable:
            first_pick.misses += 1
        self.stats = SearchStats()
        # C of Algorithm 2: every counted candidate, keyed canonically.
        self.counted: dict[_Key, _Entry] = {}
        self.best_key: _Key | None = None
        self.best_entry: _Entry | None = None
        self.threshold = 0.0  # H of Algorithm 2

    # -- weights ---------------------------------------------------------------

    def _table_columns(self, key: _Key) -> tuple[int, ...]:
        return _key_columns(key, self.cat_positions)

    def _rule_of(self, key: _Key) -> Rule:
        return _key_rule(key, self.table, self.cat_positions)

    def _weight_of(self, key: _Key) -> float:
        if self.fast_weight is not None:
            return self.fast_weight(self._table_columns(key))
        return self.wf.weight(self._rule_of(key))

    # -- bookkeeping -----------------------------------------------------------

    def _offer(self, key: _Key, entry: _Entry) -> None:
        """Record a counted candidate and update the running best (H).

        Candidates with weight above ``mw`` are ineligible, and — by
        monotonicity — so is every super-rule, so they are never
        extended either.
        """
        self.counted[key] = entry
        self.stats.candidates_generated += 1
        if entry.count <= 0:
            entry.extendable = False
            return
        if entry.weight > self.mw:
            entry.extendable = False
            return
        self.stats.candidates_eligible += 1
        if self._better(entry, key):
            self.best_entry = entry
            self.best_key = key
            self.threshold = max(self.threshold, entry.marginal)

    def _better(self, entry: _Entry, key: _Key) -> bool:
        """Deterministic comparison: marginal, then size, then key order."""
        if self.best_entry is None:
            return entry.marginal > 0
        if entry.marginal != self.best_entry.marginal:
            return entry.marginal > self.best_entry.marginal
        assert self.best_key is not None
        if len(key) != len(self.best_key):
            return len(key) < len(self.best_key)
        return key < self.best_key

    def _upper_bound(self, key: _Key) -> float:
        """min over counted immediate sub-rules of the paper's bound.

        A missing sub-rule means an ancestor was pruned, which already
        proves every super-rule suboptimal, so the bound is −inf.
        """
        bound = np.inf
        for drop in range(len(key)):
            sub = key[:drop] + key[drop + 1 :]
            if not sub:
                continue
            entry = self.counted.get(sub)
            if entry is None:
                return -np.inf
            slack = entry.marginal + entry.count * max(self.mw - entry.weight, 0.0)
            bound = min(bound, slack)
        return bound

    # -- passes -----------------------------------------------------------------

    def _ext_weight(self, parent_key: _Key, pos: int) -> float:
        """Fast-path weight shared by every value extension of a task."""
        return _extension_weight(self.fast_weight, self.cat_positions, parent_key, pos)

    def _entries_of(
        self,
        parent_key: _Key,
        pos: int,
        weight: float,
        supported: np.ndarray,
        counts: np.ndarray,
        marginals: np.ndarray,
    ) -> list[tuple[_Key, _Entry]]:
        """Decode one counted (parent, column) task into candidate entries."""
        return [
            (
                parent_key + ((pos, int(supported[i])),),
                _Entry(weight, float(counts[i]), float(marginals[i]), True),
            )
            for i in range(supported.size)
        ]

    def _count_extensions(
        self, parent_key: _Key, parent_rows: np.ndarray, pos: int
    ) -> list[tuple[_Key, _Entry]]:
        """Count all value extensions of ``parent_key`` on column ``pos``.

        Two weighted bincounts over the parent's covered rows yield the
        Count and MarginalValue of every candidate ``parent ∧ (pos=v)``
        (the fast path runs through the shared
        :func:`~repro.core.parallel.count_extensions_kernel`).
        """
        n_values = self.distinct[pos]
        self.stats.rows_scanned += parent_rows.size
        if self.fast_weight is not None:
            weight = self._ext_weight(parent_key, pos)
            rows = None if parent_rows.size == self.table.n_rows else parent_rows
            supported, counts, marginals = count_extensions_kernel(
                self.codes[pos], self.measures, self.top, rows, n_values, weight
            )
            return self._entries_of(parent_key, pos, weight, supported, counts, marginals)
        if parent_rows.size == self.table.n_rows:  # trivial parent: skip the gathers
            codes = self.codes[pos]
            measures = self.measures
            top = self.top
        else:
            codes = self.codes[pos][parent_rows]
            measures = self.measures[parent_rows]
            top = self.top[parent_rows]
        counts = np.bincount(codes, weights=measures, minlength=n_values)
        out: list[tuple[_Key, _Entry]] = []
        for code in np.nonzero(counts > 0)[0]:
            key = parent_key + ((pos, int(code)),)
            weight = self._weight_of(key)
            covered = codes == code
            marginal = float(
                (np.maximum(weight - top[covered], 0.0) * measures[covered]).sum()
            )
            out.append((key, _Entry(weight, float(counts[code]), marginal, True)))
        return out

    def _first_pass(self) -> list[tuple[_Key, np.ndarray]]:
        """Count every size-1 rule (``Cn = all rules of size 1``).

        Survivors carry the row array of their (trivial) parent — the
        full-table arange — from which their own covered rows derive
        lazily if they are ever extended.  With a counting backend, the
        per-column full-table tasks are dispatched as one batch.
        """
        self.stats.passes += 1
        survivors: list[tuple[_Key, np.ndarray]] = []
        empty: _Key = ()
        dtype = np.int32 if self.table.n_rows < 2**31 else np.int64
        all_rows = np.arange(self.table.n_rows, dtype=dtype)
        n_cat = len(self.cat_positions)
        if self.first_pick is not None:
            # Heap-build over the registration-time cache: the arrays
            # are the kernel's own output at this exact (table, weight,
            # base top), so _entries_of sees bit-identical inputs to a
            # cold scan — no rows are touched.
            self.first_pick.hits += 1
            for pos in range(n_cat):
                weight, supported, counts, marginals = self.first_pick.level1(pos)
                for key, entry in self._entries_of(empty, pos, weight, supported, counts, marginals):
                    self._offer(key, entry)
                    survivors.append((key, all_rows))
            return survivors
        if self.backend is not None:
            specs = [
                (pos, self.distinct[pos], self._ext_weight(empty, pos))
                for pos in range(n_cat)
            ]
            results = self.backend.count_columns(specs)
            for pos, _n_values, weight in specs:
                self.stats.rows_scanned += self.table.n_rows
                for key, entry in self._entries_of(empty, pos, weight, *results[pos]):
                    self._offer(key, entry)
                    survivors.append((key, all_rows))
            return survivors
        for pos in range(n_cat):
            for key, entry in self._count_extensions(empty, all_rows, pos):
                self._offer(key, entry)
                survivors.append((key, all_rows))
        return survivors

    def _rows_of(self, key: _Key, parent_rows: np.ndarray) -> np.ndarray:
        """Materialise a candidate's covered rows from its parent's rows.

        Vertical row-index propagation: one O(parent support) filter on
        the candidate's own ``(column, code)`` extension, instead of an
        O(table size) conjunction over every instantiated column.
        """
        pos, code = key[-1]
        codes = self.codes[pos]
        if parent_rows.size == codes.size:  # trivial parent: avoid the gather
            return np.nonzero(codes == code)[0]
        return parent_rows[codes[parent_rows] == code]

    def _next_pass(
        self, frontier: list[tuple[_Key, np.ndarray]], size: int
    ) -> list[tuple[_Key, np.ndarray]]:
        """Generate, count, and prune size-``size`` candidates.

        A parent whose bound ``MarginalVal + Count·(mw − W)`` falls
        below the threshold ``H`` has its whole extension subtree cut
        (the paper's ``Cn`` deletion).  Surviving parents have every
        value extension counted exactly; a fresh candidate is offered
        as a potential best rule first (tightening ``H``) and then
        bound-checked to decide whether *it* will be extended.  A parent
        that does get extended materialises its covered rows from the
        rows its own parent propagated down (see :meth:`_rows_of`) —
        pruned parents never pay for theirs.

        With a counting backend the whole level is counted as one
        batch: parents are prune-checked against the threshold as of
        the start of the pass (sound — see the module docstring), their
        (parent, column) tasks fan out across the pool, and the results
        are offered in the serial order.
        """
        self.stats.passes += 1
        if self.backend is not None:
            return self._next_pass_batched(frontier)
        survivors: list[tuple[_Key, np.ndarray]] = []
        n_cat = len(self.cat_positions)
        for parent_key, grandparent_rows in frontier:
            entry = self.counted[parent_key]
            if not entry.extendable:
                continue
            if self.prune:
                parent_bound = entry.marginal + entry.count * max(self.mw - entry.weight, 0.0)
                if parent_bound < self.threshold:
                    entry.extendable = False
                    self.stats.parents_pruned += 1
                    continue
            last_pos = parent_key[-1][0]
            if last_pos + 1 >= n_cat:
                continue
            parent_rows = self._rows_of(parent_key, grandparent_rows)
            self.stats.parents_extended += 1
            for pos in range(last_pos + 1, n_cat):
                for key, child in self._count_extensions(parent_key, parent_rows, pos):
                    self._offer(key, child)
                    if child.extendable and self.prune:
                        if self._upper_bound(key) < self.threshold:
                            child.extendable = False
                            self.stats.parents_pruned += 1
                    if child.extendable:
                        survivors.append((key, parent_rows))
        return survivors

    def _next_pass_batched(
        self, frontier: list[tuple[_Key, np.ndarray]]
    ) -> list[tuple[_Key, np.ndarray]]:
        """Backend variant of :meth:`_next_pass`: one batch per level."""
        survivors: list[tuple[_Key, np.ndarray]] = []
        n_cat = len(self.cat_positions)
        tasks: list[CountTask] = []
        pending: list[tuple[_Key, np.ndarray, int, float, int]] = []
        for parent_key, grandparent_rows in frontier:
            entry = self.counted[parent_key]
            if not entry.extendable:
                continue
            if self.prune:
                parent_bound = entry.marginal + entry.count * max(self.mw - entry.weight, 0.0)
                if parent_bound < self.threshold:
                    entry.extendable = False
                    self.stats.parents_pruned += 1
                    continue
            last_pos = parent_key[-1][0]
            if last_pos + 1 >= n_cat:
                continue
            parent_rows = self._rows_of(parent_key, grandparent_rows)
            self.stats.parents_extended += 1
            rows_arg = None if parent_rows.size == self.table.n_rows else parent_rows
            for pos in range(last_pos + 1, n_cat):
                weight = self._ext_weight(parent_key, pos)
                task_id = len(tasks)
                tasks.append(CountTask(task_id, pos, self.distinct[pos], weight, rows_arg))
                pending.append((parent_key, parent_rows, pos, weight, task_id))
        results = self.backend.count_batch(tasks) if tasks else {}
        for parent_key, parent_rows, pos, weight, task_id in pending:
            self.stats.rows_scanned += parent_rows.size
            for key, child in self._entries_of(parent_key, pos, weight, *results[task_id]):
                self._offer(key, child)
                if child.extendable and self.prune:
                    if self._upper_bound(key) < self.threshold:
                        child.extendable = False
                        self.stats.parents_pruned += 1
                if child.extendable:
                    survivors.append((key, parent_rows))
        return survivors

    def run(self) -> MarginalResult | None:
        if self.backend is not None:
            self.backend.set_top(self.top)
        frontier = self._first_pass()
        size = 1
        while frontier and size < self.max_rule_size:
            size += 1
            frontier = self._next_pass(frontier, size)
        if self.best_key is None or self.best_entry is None:
            return None
        if self.best_entry.marginal <= 0:
            return None
        return MarginalResult(
            rule=self._rule_of(self.best_key),
            weight=self.best_entry.weight,
            count=self.best_entry.count,
            marginal=self.best_entry.marginal,
            stats=self.stats,
        )


def find_best_marginal_rule(
    table: Table,
    wf: WeightFunction,
    top: np.ndarray,
    mw: float,
    *,
    measures: np.ndarray | None = None,
    max_rule_size: int | None = None,
    prune: bool = True,
    n_workers: int | None = None,
    pool: CountingPool | None = None,
    first_pick=None,
) -> MarginalResult | None:
    """Return the rule of weight ≤ ``mw`` with highest marginal value.

    Parameters
    ----------
    table:
        The (possibly filtered or sampled) table to mine.
    wf:
        Monotonic non-negative weight function.
    top:
        Per-tuple ``W(TOP(t, S))`` of the already-selected set ``S``
        (zeros for the first iteration); see
        :func:`repro.core.scoring.top_weights`.
    mw:
        Max-weight parameter: the search only considers rules with
        ``W(r) <= mw`` and uses ``mw`` in its pruning bound.  Smaller
        values run faster; values below the optimal rule's weight may
        return a sub-optimal rule (Section 3.5's approximation-ratio
        analysis).
    measures:
        Optional per-tuple measure array (Sum aggregation); defaults to
        all-ones (Count).
    max_rule_size:
        Optional cap on rule size (number of passes).
    prune:
        Disable to measure the value of the a-priori bound (ablation);
        the result is unchanged, only more candidates are explored.
    n_workers:
        Parallel counting: ``None`` or ``1`` runs serially (the
        default), ``0`` uses every core, ``>= 2`` shards the level-wise
        counting passes over the process-wide shared-memory worker pool
        (:mod:`repro.core.parallel`).  The selected rule is identical
        either way; small tables and value-dependent weight functions
        silently fall back to serial counting.
    pool:
        An explicit :class:`~repro.core.parallel.CountingPool` to count
        through (overrides ``n_workers``); lets callers control worker
        lifecycle and share one pool — and one shared-memory table
        export — across searches.
    first_pick:
        Optional :class:`~repro.core.first_pick.FirstPickCache` built
        for exactly ``(table, wf, mw)``: when ``top`` is the base
        vector (all zeros) the first pass becomes a heap-build over the
        cached level-1 marginals instead of a scan.  Provably identical
        result either way; a non-matching cache is ignored.

    Returns ``None`` when no rule adds positive marginal value.
    """
    searcher = _Searcher(
        table,
        wf,
        top,
        mw,
        measures,
        max_rule_size,
        prune,
        pool=resolve_pool(pool, n_workers),
        first_pick=first_pick,
    )
    return searcher.run()
