"""Parameter guidance (paper Sections 4.2 and 6.1).

The system exposes three tunables — ``k``, ``mw``, ``minSS`` — and the
paper sketches how to set each one:

* ``mw`` — run BRS on a small random sample; the maximum weight ``x``
  of the rules it returns is likely the maximum weight of the true
  output, and ``2x`` absorbs sampling error (:func:`estimate_mw`).
* ``minSS`` — a rule covering an ``x`` fraction of tuples needs
  ``minSS ≫ ρ(1−x)/x`` for a stable count estimate; bounding ``x`` from
  below by ``1/(|C|·|c_min|)`` (the best rule's count is at least
  ``|T|/(|C|·|c_min|)``) gives the Section 4.2 recommendation
  (:func:`recommend_min_sample_size`).
* the weight family ``W(r) = (Σ_c o_{r,c} w_c)^k`` — the KKT analysis
  of Section 6.1 predicts which columns the max-score rule
  instantiates, what fraction of columns a given exponent ``k``
  instantiates, and which ``k`` to choose for a target fraction
  (:func:`kkt_analysis`, :func:`exponent_for_target_fraction`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.weights import WeightFunction
from repro.errors import ParameterError
from repro.table.stats import TableStats, compute_stats
from repro.table.table import Table

__all__ = [
    "estimate_mw",
    "recommend_min_sample_size",
    "KKTAnalysis",
    "kkt_analysis",
    "exponent_for_target_fraction",
    "estimate_parametric_mw",
]


def estimate_mw(
    table: Table,
    wf: WeightFunction,
    k: int,
    *,
    sample_size: int = 1000,
    safety_factor: float = 2.0,
    rng: np.random.Generator | None = None,
    pilot_mw: float | None = None,
) -> float:
    """Estimate ``mw`` by running BRS on a small random sample (§6.1).

    Runs the greedy on ``sample_size`` uniformly sampled tuples with a
    generous pilot ``mw`` and returns ``safety_factor`` times the
    maximum weight observed in the output ("we can set mw to 2x, which
    works well in practice").
    """
    from repro.core.brs import brs  # local import to avoid a cycle

    rng = rng or np.random.default_rng(0)
    n = table.n_rows
    if n == 0:
        return 1.0
    if sample_size < n:
        idx = rng.choice(n, size=sample_size, replace=False)
        sample = table.take(np.sort(idx))
    else:
        sample = table
    if pilot_mw is None:
        bound = wf.max_weight(table.n_columns)
        pilot_mw = bound if bound is not None else float(table.n_columns)
    result = brs(sample, wf, k, pilot_mw)
    if not result.rules:
        return max(1.0, float(pilot_mw))
    observed = max(wf.weight(r) for r in result.rules)
    return max(1.0, safety_factor * observed)


def recommend_min_sample_size(
    table_or_stats: Table | TableStats,
    *,
    rho: float = 10.0,
) -> float:
    """Section 4.2's ``minSS`` recommendation: ``ρ · |C| · |c_min|``.

    The top rule under Size weighting covers at least a
    ``1/(|C|·|c_min|)`` fraction of tuples (the most frequent value of
    the smallest-domain column ``c_min`` occurs ≥ |T|/|c_min| times and
    the best rule's weight is at most |C|), so ``minSS`` of
    ``ρ·|C|·|c_min|`` with ``ρ ≫ 1`` makes displayed counts stable.
    """
    stats = (
        table_or_stats if isinstance(table_or_stats, TableStats) else compute_stats(table_or_stats)
    )
    n_columns = len(stats.columns)
    min_distinct = stats.min_distinct
    if n_columns == 0 or min_distinct == 0:
        return rho
    return rho * n_columns * min_distinct


@dataclass(frozen=True)
class KKTAnalysis:
    """Closed-form predictions from the Section 6.1 KKT analysis.

    For the parametric family ``W(r) = (Σ_c o_{r,c} w_c)^k`` under a
    value-independence assumption with per-column top frequencies
    ``f_c``:

    * ``ratios[c] = ln(f_c) / w_c`` — the max-score rule instantiates
      the columns with the largest (least negative) ratios;
    * ``instantiated_fraction`` — predicted weighted fraction of
      instantiated columns, ``−k / Σ_c ln f_c``;
    * ``predicted_columns`` — column indexes sorted by preference;
    * ``predicted_mw`` — weight of the predicted max-score rule, a
      guide for ``mw`` (the paper notes real data's correlations make
      this an under-estimate).
    """

    ratios: tuple[float, ...]
    instantiated_fraction: float
    predicted_columns: tuple[int, ...]
    predicted_mw: float


def kkt_analysis(
    top_fractions: Sequence[float],
    column_weights: Sequence[float],
    exponent: float,
) -> KKTAnalysis:
    """Analyse the parametric weight family on given column statistics.

    Parameters
    ----------
    top_fractions:
        ``f_c`` — frequency of the most common value per column, in
        ``(0, 1]``.
    column_weights:
        ``w_c ≥ 0`` of the parametric family.
    exponent:
        ``k`` of the parametric family.
    """
    fs = [min(max(float(f), 1e-12), 1.0) for f in top_fractions]
    ws = [float(w) for w in column_weights]
    if len(fs) != len(ws):
        raise ParameterError("top_fractions and column_weights must align")
    ratios = tuple(
        (math.log(f) / w) if w > 0 else -math.inf for f, w in zip(fs, ws)
    )
    total_log = sum(math.log(f) for f in fs)
    fraction = 0.0 if total_log == 0 else min(1.0, -exponent / total_log)
    order = tuple(
        int(i) for i in sorted(range(len(fs)), key=lambda i: (-ratios[i], i)) if ws[i] > 0
    )
    # Predicted rule: instantiate the best columns until the weighted
    # fraction target is met.
    total_w = sum(ws)
    target = fraction * total_w
    chosen: list[int] = []
    acc = 0.0
    for i in order:
        if acc >= target and chosen:
            break
        chosen.append(i)
        acc += ws[i]
    base = sum(ws[i] for i in chosen)
    predicted_mw = float(base**exponent) if base > 0 else 0.0
    return KKTAnalysis(
        ratios=ratios,
        instantiated_fraction=fraction,
        predicted_columns=tuple(chosen),
        predicted_mw=predicted_mw,
    )


def exponent_for_target_fraction(
    top_fractions: Sequence[float], target_fraction: float
) -> float:
    """Pick ``k`` so the max-score rule instantiates ``s`` of the columns.

    Section 6.1: ``k = −s · Σ_c ln f_c``.
    """
    if not 0.0 <= target_fraction <= 1.0:
        raise ParameterError("target_fraction must be in [0, 1]")
    total_log = sum(math.log(min(max(float(f), 1e-12), 1.0)) for f in top_fractions)
    return -target_fraction * total_log


def estimate_parametric_mw(table: Table, column_weights: Sequence[float], exponent: float) -> float:
    """Predicted ``mw`` for the parametric family on a concrete table."""
    stats = compute_stats(table)
    fs = [c.top_fraction if c.top_fraction > 0 else 1.0 for c in stats.columns]
    cat_idx = table.schema.categorical_indexes
    ws = [column_weights[i] for i in cat_idx]
    return kkt_analysis(fs, ws, exponent).predicted_mw
