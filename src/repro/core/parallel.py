"""Parallel candidate counting over shared memory — the first-pick backend.

The incremental engine (:mod:`repro.core.search_cache`) made picks
2..k of a BRS run nearly free, so interactive latency is dominated by
the *first* pick's level-wise a-priori counting: for every surviving
(parent, extension-column) pair, two weighted ``np.bincount`` passes
over the parent's covered rows (see
:func:`count_extensions_kernel`).  Those passes are independent of one
another, which makes them embarrassingly parallel — this module shards
them across a persistent worker-pool.

Architecture
------------

* **Shared immutable region.**  :class:`CountingPool` exports a table
  once: every dictionary-encoded code array plus the measure array is
  copied into one :mod:`multiprocessing.shared_memory` segment, and a
  second (small, mutable) segment holds the per-tuple ``top`` weights
  of the search in flight.  Workers attach by name and build zero-copy
  ``numpy`` views — after the one-time export, no table data ever
  crosses the IPC channel again.  The same region can serve any number
  of searches (and, down the road, any number of sessions — the
  multi-tenant story in ROADMAP.md mirrors shared-sample stores in
  VerdictDB-style approximate engines).  Backends sharing one export
  serialise their dispatching batches on the export's lock and
  re-publish their ``top`` array on ownership change, so concurrent
  searches stay correct (they interleave, they do not corrupt).
* **Persistent process pool.**  Workers are forked (or spawned) once
  and reused; a counting batch ships only task descriptors — a
  categorical position, an optional covered-row index array, and the
  scalar fast-path weight — and receives back the supported codes with
  their Counts and MarginalValues.
* **The backend seam.**  The search engines talk to a
  :class:`CountingBackend`: :class:`~repro.core.marginal._Searcher`
  batches each level pass, :class:`~repro.core.search_cache.SearchContext`
  batches its size-1 build and per-candidate expansions.  When no
  backend is configured (``n_workers=None``/``1``), both engines run
  their original serial code paths, byte for byte.
* **Registration-time precompute.**  The serving catalog's first-pick
  marginal cache (:mod:`repro.core.first_pick`) is a third client of
  :func:`count_extensions_kernel`: it runs the level-1 passes once per
  ``(table, weighting, mw)`` at registration and serves the kernel's
  output read-only, so a cold session's first pick skips both the
  serial scan *and* the pool dispatch (which the recorded 1-core bench
  shows can be slower than serial for that single batch).  Shard
  workers rebuild the identical cache from their wire-decoded table
  copies — same kernel, same arrays, bit for bit.
* **Bit-identical results.**  The unit of work is one whole
  (parent, column) bincount pair — row ranges are never split, so
  float accumulation order inside every bincount is exactly the serial
  order and the returned Counts/MarginalValues are bit-identical.
  Batching a level only changes *when* the a-priori threshold is
  consulted (a batched pass prunes with the threshold as of the start
  of the pass, the serial pass with a running threshold); pruning with
  any valid threshold never removes a candidate that could beat or tie
  the final best, so the selected rule lists are identical — the
  equivalence suite ``tests/core/test_parallel.py`` pins this across
  weight functions and worker counts.

Serial fallbacks
----------------

The backend quietly degrades to in-process counting when parallelism
cannot help or cannot work: tables below ``min_table_rows``, tasks
below ``min_task_rows`` (computed locally *while* the big tasks are in
flight), batches with fewer than two shippable tasks, platforms without
``multiprocessing.shared_memory``, value-dependent (slow-path) weight
functions, and pools that failed to start or have been closed.

Lifecycle and ownership
-----------------------

A :class:`CountingPool` owns its executor and every exported segment;
:meth:`CountingPool.close` (also a context-manager exit, also run at
interpreter exit) terminates the workers and unlinks the segments.
Exports are keyed per table and freed early when the table is garbage
collected.  Whoever *creates* a pool closes it — nobody else:

* a :class:`~repro.session.session.DrillDownSession` built with
  ``n_workers >= 2`` owns its pool and releases it in ``close()``
  (deferred until any in-flight expansion drains);
* a session handed a shared ``pool=`` only borrows it — its ``close()``
  leaves the pool (and every export other sessions may be counting
  against) untouched;
* in the multi-tenant serving tier, the
  :class:`~repro.serving.TableCatalog` owns the pool: tables register
  once, export once, and stay exported until the catalog (not any
  individual tenant session) is closed.

Fair scheduling hook
--------------------

Setting :attr:`CountingPool.scheduler` installs a dispatch gate on the
pool's task queue: every batch a backend ships to the workers first
enters ``scheduler.dispatch_turn(tenant)`` (a context manager), where
``tenant`` is the label given to :meth:`CountingPool.backend_for`.
:class:`repro.serving.FairScheduler` implements round-robin turns
across tenants, so one tenant's deep drill-down queues behind — not
ahead of — everyone else's next batch.  The gate wraps only batch
*submission* (publish ``top``, queue the buckets): it is released
before worker results are awaited, so tenants' batches compute
concurrently and only their entry into the work queue is ordered.
Serial fallback counting never waits on it, and with no scheduler
installed (the default) the hook costs one attribute read.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

try:  # gate: some platforms build python without POSIX shared memory
    from multiprocessing import get_all_start_methods, get_context
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised only on exotic builds
    _shared_memory = None

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.table.table import Table

__all__ = [
    "CountTask",
    "CountingBackend",
    "CountingPool",
    "count_extensions_kernel",
    "current_deadline",
    "deadline_scope",
    "default_pool",
    "resolve_pool",
]


# -- request deadlines -----------------------------------------------------------

_DEADLINES = threading.local()


def current_deadline() -> float | None:
    """The calling thread's absolute deadline, if one is in scope."""
    return getattr(_DEADLINES, "at", None)


@contextmanager
def deadline_scope(deadline_at: float | None) -> Iterator[None]:
    """Bind an absolute deadline to the calling thread.

    The serving facade wraps each expansion in this scope so the fair
    scheduler's dispatch gate (deep inside
    :meth:`CountingBackend.count_batch`, reached through session and
    search-engine code that knows nothing about deadlines) can bound
    its queue wait.  ``deadline_at`` is in the clock domain of whoever
    set it — the serving tier uses the same injectable clock for its
    scheduler and this scope.  Scopes nest; the previous value is
    restored on exit.  The scope bounds *queue entry* only: a batch
    already submitted to the workers runs to completion.
    """
    previous = getattr(_DEADLINES, "at", None)
    _DEADLINES.at = deadline_at
    try:
        yield
    finally:
        _DEADLINES.at = previous


def count_extensions_kernel(
    codes: np.ndarray,
    measures: np.ndarray,
    top: np.ndarray,
    rows: np.ndarray | None,
    n_values: int,
    weight: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Count all value extensions of one parent on one column.

    The counting primitive shared by the serial engines and the worker
    processes — keeping it in one place is what makes the parallel
    backend bit-identical to the serial path.  Two weighted bincounts
    over the parent's covered rows (``rows``; ``None`` means the whole
    table) yield the Count and MarginalValue of every value extension
    under the scalar fast-path ``weight``:

        Count(v)        = Σ_{t ∈ parent, t.c = v} m(t)
        MarginalVal(v)  = Σ_{t ∈ parent, t.c = v} m(t) · max(W − top(t), 0)

    Returns ``(supported, counts, marginals)`` where ``supported`` holds
    the codes with positive Count and the other two arrays align to it.
    """
    if rows is None:
        c, m, t = codes, measures, top
    else:
        c = codes[rows]
        m = measures[rows]
        t = top[rows]
    counts = np.bincount(c, weights=m, minlength=n_values)
    gains = np.maximum(weight - t, 0.0) * m
    marginals = np.bincount(c, weights=gains, minlength=n_values)
    supported = np.nonzero(counts > 0)[0]
    return supported, counts[supported], marginals[supported]


@dataclass(frozen=True)
class CountTask:
    """One (parent, extension-column) counting unit.

    ``rows`` is the parent's covered-row index array, or ``None`` for
    the trivial (whole-table) parent; ``weight`` is the scalar fast-path
    weight shared by every value extension of this task.  ``task_id``
    is caller-chosen and echoed back so batched results can be matched
    to their tasks regardless of completion order.
    """

    task_id: int
    pos: int
    n_values: int
    weight: float
    rows: np.ndarray | None


def _task_cost(task: CountTask, full_cost: int) -> int:
    """Rows a task scans — the load-balancing and threshold estimate."""
    return full_cost if task.rows is None else int(task.rows.size)


# -- worker side ---------------------------------------------------------------

#: Per-worker cache of attached shared tables, LRU-capped so a
#: long-lived pool serving many tables cannot accumulate stale
#: attachments (close drops the mapping; the parent owns unlinking).
_WORKER_TABLES: "OrderedDict[str, tuple]" = OrderedDict()
_WORKER_CACHE_LIMIT = 8


def _worker_attach(meta: tuple) -> tuple:
    """Attach (or retrieve) the shared table described by ``meta``."""
    data_name, top_name, n_rows, cat_offsets, measures_offset = meta
    cached = _WORKER_TABLES.get(data_name)
    if cached is not None:
        _WORKER_TABLES.move_to_end(data_name)
        return cached
    data_shm = _shared_memory.SharedMemory(name=data_name)
    top_shm = _shared_memory.SharedMemory(name=top_name)
    codes = [
        np.ndarray((n_rows,), dtype=np.int32, buffer=data_shm.buf, offset=off)
        for off in cat_offsets
    ]
    measures = np.ndarray(
        (n_rows,), dtype=np.float64, buffer=data_shm.buf, offset=measures_offset
    )
    top = np.ndarray((n_rows,), dtype=np.float64, buffer=top_shm.buf)
    entry = (data_shm, top_shm, codes, measures, top)
    _WORKER_TABLES[data_name] = entry
    while len(_WORKER_TABLES) > _WORKER_CACHE_LIMIT:
        old_data, old_top, old_codes, old_measures, old_t = _WORKER_TABLES.popitem(
            last=False
        )[1]
        del old_codes, old_measures, old_t
        old_data.close()
        old_top.close()
    return entry


def _worker_count(
    meta: tuple, rows_arrays: list[np.ndarray], tasks: list[tuple]
) -> list[tuple]:
    """Run a batch of counting tasks against an attached shared table.

    ``rows_arrays`` carries each distinct covered-row array once; tasks
    reference them by index (``None`` = whole table), so a parent
    extended on several columns ships its rows a single time.
    """
    _data, _top_shm, codes, measures, top = _worker_attach(meta)
    out: list[tuple] = []
    for task_id, pos, n_values, weight, rows_idx in tasks:
        rows = None if rows_idx is None else rows_arrays[rows_idx]
        supported, counts, marginals = count_extensions_kernel(
            codes[pos], measures, top, rows, n_values, weight
        )
        out.append((task_id, supported, counts, marginals))
    return out


# -- parent side ---------------------------------------------------------------


class _TableExport:
    """One table's shared-memory residency: codes + measures + top scratch.

    The immutable segment concatenates every categorical code array
    (int32) followed by the measure array (float64); the mutable
    segment holds the ``top`` array of the search whose batch is in
    flight.  ``lock`` serialises dispatching batches from different
    backends sharing this export (e.g. two sessions over one pool):
    the owning backend re-publishes its ``top`` only when it lost
    ownership, and holds the lock until its workers finish, so a
    concurrent search can never overwrite the segment mid-batch.
    ``meta`` is the picklable attachment descriptor shipped to workers.
    """

    def __init__(self, table: "Table", measures: np.ndarray):
        n = table.n_rows
        code_arrays = table.categorical_code_arrays()
        data_bytes = sum(a.nbytes for a in code_arrays) + measures.nbytes
        self._data_shm = _shared_memory.SharedMemory(create=True, size=max(data_bytes, 1))
        self._top_shm = _shared_memory.SharedMemory(create=True, size=max(n * 8, 1))
        self._views: list[np.ndarray] = []
        cat_offsets = []
        offset = 0
        for arr in code_arrays:
            view = np.ndarray(arr.shape, arr.dtype, buffer=self._data_shm.buf, offset=offset)
            view[:] = arr
            self._views.append(view)
            cat_offsets.append(offset)
            offset += arr.nbytes
        mview = np.ndarray(measures.shape, np.float64, buffer=self._data_shm.buf, offset=offset)
        mview[:] = measures
        self._views.append(mview)
        self._top_view: np.ndarray | None = np.ndarray(
            (n,), np.float64, buffer=self._top_shm.buf
        )
        self.measures = measures
        self.meta = (
            self._data_shm.name,
            self._top_shm.name,
            n,
            tuple(cat_offsets),
            offset,
        )
        self.lock = threading.Lock()
        #: (backend id, top version) the segment currently holds.
        self.top_owner: tuple[int, int] | None = None
        self.closed = False

    @classmethod
    def grown(
        cls, old: "_TableExport", table: "Table", measures: np.ndarray
    ) -> "_TableExport":
        """Build ``table``'s export by growing ``old``'s data segment.

        The append fast path: ``table`` extends ``old``'s table row-wise
        (dictionary-prefix invariant), so every exported array is the
        old bytes plus a tail.  The old segment's regions are copied
        once into a freshly sized segment — the grow-and-copy — and only
        the appended tails are read from the table's own arrays.
        Workers attach the new segment by name as usual; the bytes are
        identical to a cold export of ``table``.
        """
        self = cls.__new__(cls)
        n = table.n_rows
        _, _, n_old, old_offsets, old_measures_offset = old.meta
        code_arrays = table.categorical_code_arrays()
        data_bytes = sum(a.nbytes for a in code_arrays) + measures.nbytes
        self._data_shm = _shared_memory.SharedMemory(create=True, size=max(data_bytes, 1))
        self._top_shm = _shared_memory.SharedMemory(create=True, size=max(n * 8, 1))
        self._views = []
        old_buf = old._data_shm.buf
        cat_offsets = []
        offset = 0
        for arr, old_off in zip(code_arrays, old_offsets):
            view = np.ndarray(arr.shape, arr.dtype, buffer=self._data_shm.buf, offset=offset)
            view[:n_old] = np.ndarray((n_old,), np.int32, buffer=old_buf, offset=old_off)
            view[n_old:] = arr[n_old:]
            self._views.append(view)
            cat_offsets.append(offset)
            offset += arr.nbytes
        mview = np.ndarray(measures.shape, np.float64, buffer=self._data_shm.buf, offset=offset)
        mview[:n_old] = np.ndarray(
            (n_old,), np.float64, buffer=old_buf, offset=old_measures_offset
        )
        mview[n_old:] = measures[n_old:]
        self._views.append(mview)
        self._top_view = np.ndarray((n,), np.float64, buffer=self._top_shm.buf)
        self.measures = measures
        self.meta = (
            self._data_shm.name,
            self._top_shm.name,
            n,
            tuple(cat_offsets),
            offset,
        )
        self.lock = threading.Lock()
        self.top_owner = None
        self.closed = False
        return self

    def publish_top(self, top: np.ndarray, owner: tuple[int, int]) -> None:
        """Write ``top`` into the shared segment unless ``owner`` already did.

        Callers must hold :attr:`lock` across this call *and* the batch
        that depends on it.
        """
        if not self.closed and self.top_owner != owner:
            self._top_view[:] = top
            self.top_owner = owner

    def close(self) -> None:
        """Release the numpy views, close, and unlink both segments."""
        if self.closed:
            return
        self.closed = True
        self._views.clear()
        self._top_view = None
        for shm in (self._data_shm, self._top_shm):
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - already gone
                pass


@dataclass
class CountingBackend:
    """The seam the search engines count through.

    Built by :meth:`CountingPool.backend_for` for one (table, measures)
    pair.  :meth:`set_top` publishes the per-tuple selected-weight
    array before a search dispatches; :meth:`count_batch` executes a
    batch of :class:`CountTask`, sharding large tasks over the pool and
    computing small ones locally while the futures are in flight.

    ``tasks_dispatched``/``tasks_local`` count where work actually ran,
    which the tests and the parallel-counting benchmark use to assert
    the pool was (or was not) exercised.  ``tenant`` labels this
    backend's dispatched batches for the pool's optional fair
    :attr:`~CountingPool.scheduler`; it never affects results.
    """

    pool: "CountingPool"
    export: _TableExport
    codes: list[np.ndarray]
    measures: np.ndarray
    top: np.ndarray | None = None
    tenant: Any = None
    tasks_dispatched: int = 0
    tasks_local: int = 0
    batches: int = 0
    _top_version: int = 0

    def set_top(self, top: np.ndarray) -> None:
        """Stage ``top`` for the next batches.

        The array is normalised to float64 once (the shared segment is
        float64, and local fallback tasks must see bit-identical values
        to the workers); the write into the shared segment is deferred
        to the next dispatching batch, which re-publishes only if
        another backend used the segment in between.
        """
        self.top = np.asarray(top, dtype=np.float64)
        self._top_version += 1

    def count_columns(
        self, specs: Sequence[tuple[int, int, float]]
    ) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Count whole-table extensions for ``(pos, n_values, weight)`` specs.

        The shared wrapper for the engines' size-1 passes — both
        :mod:`repro.core.marginal` and :mod:`repro.core.search_cache`
        build their first level through this, so the task construction
        cannot drift between them.  Results are keyed by ``pos``.
        """
        return self.count_batch(
            [CountTask(pos, pos, n_values, weight, None) for pos, n_values, weight in specs]
        )

    def _count_local(self, task: CountTask) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        self.tasks_local += 1
        return count_extensions_kernel(
            self.codes[task.pos],
            self.measures,
            self.top,
            task.rows,
            task.n_values,
            task.weight,
        )

    def count_batch(
        self, tasks: Sequence[CountTask]
    ) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Count every task, returning ``{task_id: (codes, counts, marginals)}``.

        Tasks scanning at least ``pool.min_task_rows`` rows are packed
        into per-worker buckets (greedy balance on scan cost, tasks
        sharing a parent's rows kept together so each distinct row
        array ships at most once per bucket) and dispatched; everything
        else — and everything, when fewer than two tasks are shippable
        or the pool is unavailable — runs locally, overlapping with the
        in-flight futures.  The export's lock is held from publishing
        ``top`` until the last worker result lands, so backends sharing
        one export serialise rather than corrupt each other's batches.
        """
        assert self.top is not None, "set_top() must run before count_batch()"
        self.batches += 1
        full_cost = self.top.size
        remote = [t for t in tasks if _task_cost(t, full_cost) >= self.pool.min_task_rows]
        if len(remote) < 2 or self.pool.closed:
            remote = []
        executor = self.pool._ensure_executor() if remote else None
        if executor is None:
            remote = []
        results: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if not remote:
            for task in tasks:
                results[task.task_id] = self._count_local(task)
            return results
        shipped = {t.task_id for t in remote}
        local = [t for t in tasks if t.task_id not in shipped]
        scheduler = self.pool.scheduler
        with self.export.lock:
            # The fair-dispatch turn covers only *submission*: once this
            # backend's buckets are queued (in round-robin order across
            # tenants), the turn is released so other tenants — notably
            # ones on other tables, whose export locks are free — can
            # queue theirs while these compute.  The export lock is
            # taken first, so a backend waiting for it never holds the
            # turn hostage.
            deadline_at = current_deadline()
            if scheduler is None:
                gate = nullcontext()
            elif deadline_at is not None:
                # Threaded through the thread-local scope (set by the
                # serving facade): an expired deadline aborts the queue
                # wait with DeadlineExceededError, which the facade
                # catches to refund the expansion's budget charge.
                gate = scheduler.dispatch_turn(self.tenant, deadline_at=deadline_at)
            else:
                gate = scheduler.dispatch_turn(self.tenant)
            with gate:
                self.export.publish_top(self.top, (id(self), self._top_version))
                futures = []
                try:
                    for bucket in self.pool._pack(remote, full_cost):
                        rows_arrays: list[np.ndarray] = []
                        rows_index: dict[int, int] = {}
                        payload = []
                        for t in bucket:
                            if t.rows is None:
                                idx = None
                            else:
                                idx = rows_index.get(id(t.rows))
                                if idx is None:
                                    idx = len(rows_arrays)
                                    rows_index[id(t.rows)] = idx
                                    rows_arrays.append(t.rows)
                            payload.append((t.task_id, t.pos, t.n_values, t.weight, idx))
                        futures.append(
                            executor.submit(
                                _worker_count, self.export.meta, rows_arrays, payload
                            )
                        )
                    self.tasks_dispatched += len(remote)
                except Exception:  # pool broke between batches: go serial
                    self.pool._mark_broken()
                    futures = []
                    local = list(tasks)
            for task in local:  # overlaps with the in-flight futures
                results[task.task_id] = self._count_local(task)
            failed: list[CountTask] = []
            for future in futures:
                try:
                    for task_id, supported, counts, marginals in future.result():
                        results[task_id] = (supported, counts, marginals)
                except Exception:  # worker died / pool broke: recompute locally
                    self.pool._mark_broken()
                    failed = [t for t in remote if t.task_id not in results]
                    break
            for task in failed:
                results[task.task_id] = self._count_local(task)
        return results


class CountingPool:
    """A persistent worker pool plus its shared-memory table registry.

    Parameters
    ----------
    n_workers:
        Worker processes; ``0`` means ``os.cpu_count()``.  A pool built
        with ``n_workers <= 1`` is permanently serial — every backend
        request returns ``None`` and the engines keep their in-process
        paths (the documented ``n_workers=1`` fallback).
    min_table_rows:
        Tables smaller than this are never exported; sub-second already,
        the export + dispatch overhead would only slow them down.
    min_task_rows:
        Tasks scanning fewer rows run locally even when a pool is up.
    start_method:
        Optional :mod:`multiprocessing` start method; defaults to
        ``fork`` where available (cheap on Linux), else ``spawn``.

    The pool is a context manager; :meth:`close` terminates workers and
    unlinks every exported segment, and is also registered ``atexit``
    so segments cannot outlive the interpreter.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        min_table_rows: int = 25_000,
        min_task_rows: int = 8_192,
        start_method: str | None = None,
    ):
        if n_workers == 0 or n_workers is None:
            n_workers = os.cpu_count() or 1
        self.n_workers = int(n_workers)
        self.min_table_rows = int(min_table_rows)
        self.min_task_rows = int(min_task_rows)
        self._start_method = start_method
        self._executor = None
        self._broken = False
        self.closed = False
        #: Optional fair-dispatch gate (see "Fair scheduling hook" in the
        #: module docstring).  Anything with a ``dispatch_turn(tenant)``
        #: context-manager method works; the serving tier installs a
        #: :class:`repro.serving.FairScheduler`.
        self.scheduler = None
        # Both keyed by id(table): Table defines __eq__ without
        # __hash__, so identity keys it.  _exports maps to the table's
        # [(measures, export), ...] list; _finalizers holds the
        # weakref.finalize that unlinks those exports when the table is
        # garbage collected.
        self._exports: dict[int, list[tuple[np.ndarray, _TableExport]]] = {}
        self._finalizers: dict[int, weakref.finalize] = {}
        #: Exports built by the append fast path (:meth:`append_export`
        #: growing a resident segment instead of a cold re-copy).
        self.exports_grown = 0
        _live_pools.add(self)

    # -- executor lifecycle ----------------------------------------------------

    def _ensure_executor(self):
        if self.closed or self._broken or self.n_workers <= 1:
            return None
        if self._executor is None:
            try:
                from concurrent.futures import ProcessPoolExecutor

                method = self._start_method or (
                    "fork" if "fork" in get_all_start_methods() else None
                )
                ctx = get_context(method) if method else get_context()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=ctx
                )
            except Exception:  # pragma: no cover - sandboxed platforms
                self._broken = True
                return None
        return self._executor

    def _mark_broken(self) -> None:
        """Degrade to serial permanently after a worker failure."""
        self._broken = True
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    @property
    def usable(self) -> bool:
        """Whether backends from this pool may dispatch to workers."""
        return (
            _shared_memory is not None
            and not self.closed
            and not self._broken
            and self.n_workers > 1
        )

    # -- table exports ---------------------------------------------------------

    def backend_for(
        self, table: "Table", measures: np.ndarray | None = None, *, tenant: Any = None
    ) -> CountingBackend | None:
        """Return a counting backend for ``table``, or ``None`` for serial.

        ``None`` (the serial fallback) is returned when the pool is not
        usable, the table is smaller than ``min_table_rows``, or the
        table has no categorical columns.  The table's shared-memory
        export is created on first request and reused for subsequent
        backends with the same measures (compared by identity, then
        value).  ``tenant`` labels the backend's batches for the
        optional fair :attr:`scheduler`.
        """
        if not self.usable or table.n_rows < self.min_table_rows:
            return None
        cat_positions = table.schema.categorical_indexes
        if not cat_positions:
            return None
        if measures is None:
            measures = np.ones(table.n_rows, dtype=np.float64)
        else:
            measures = np.asarray(measures, dtype=np.float64)
        key = id(table)
        entries = self._exports.setdefault(key, [])
        export = None
        for stored, candidate in entries:
            if stored is measures or np.array_equal(stored, measures):
                export = candidate
                break
        if export is None:
            try:
                export = _TableExport(table, measures)
            except OSError:  # pragma: no cover - /dev/shm unavailable
                self._broken = True
                return None
            entries.append((measures, export))
            if key not in self._finalizers:
                self._finalizers[key] = weakref.finalize(
                    table, self._drop_table, key
                )
        codes = list(table.categorical_code_arrays())
        return CountingBackend(
            pool=self, export=export, codes=codes, measures=export.measures,
            tenant=tenant,
        )

    def append_export(self, old_table: "Table", table: "Table") -> bool:
        """Export ``table`` (an appended version of ``old_table``) incrementally.

        The versioned catalog's export-maintenance hook: when
        ``old_table`` has a resident default-measures export, the new
        version's segment is built by one grow-and-copy of the old
        bytes (:meth:`_TableExport.grown`) instead of re-reading every
        array from the table.  Returns ``True`` when the grown path
        ran; on any miss (pool unusable, table below threshold, no old
        export) the cold :meth:`backend_for` path is taken instead and
        ``False`` is returned — either way a subsequent
        :meth:`backend_for` call finds the export resident.

        ``table`` must extend ``old_table`` row-wise with the
        dictionary-prefix invariant (:meth:`repro.table.table.Table.append_rows`);
        the caller (the catalog) owns that guarantee.
        """
        if (
            not self.usable
            or table.n_rows < self.min_table_rows
            or not table.schema.categorical_indexes
        ):
            return False
        measures = np.ones(table.n_rows, dtype=np.float64)
        n_old = old_table.n_rows
        old_export = None
        for stored, candidate in self._exports.get(id(old_table), []):
            if not candidate.closed and np.array_equal(stored, measures[:n_old]):
                old_export = candidate
                break
        if old_export is None:
            self.backend_for(table)
            return False
        try:
            export = _TableExport.grown(old_export, table, measures)
        except OSError:  # pragma: no cover - /dev/shm unavailable
            self._broken = True
            return False
        key = id(table)
        self._exports.setdefault(key, []).append((measures, export))
        if key not in self._finalizers:
            self._finalizers[key] = weakref.finalize(table, self._drop_table, key)
        self.exports_grown += 1
        return True

    def drop_export(self, table: "Table") -> int:
        """Unlink ``table``'s exports *now* (the version-reap path).

        The weakref finalizer frees exports when a table is garbage
        collected, but a reaped version should release its shared
        memory deterministically, not whenever the collector gets
        around to it.  Returns the number of exports closed; idempotent
        (a later GC finalizer finds nothing to drop).
        """
        key = id(table)
        fin = self._finalizers.get(key)
        if fin is not None:
            fin.detach()
        n = len(self._exports.get(key, ()))
        self._drop_table(key)
        return n

    def export_count(self, table: "Table | None" = None) -> int:
        """Live shared-memory exports — for ``table`` only, when given.

        The public accessor the serving tier's stats and the benchmarks
        use to assert the register-once/export-once invariant (one
        export per (table, measures) pair, shared by every backend).
        """
        if table is None:
            return sum(len(entries) for entries in self._exports.values())
        return len(self._exports.get(id(table), []))

    def _drop_table(self, key: int) -> None:
        """Unlink a dead table's segments (weakref finalizer target)."""
        for _measures, export in self._exports.pop(key, []):
            export.close()
        self._finalizers.pop(key, None)

    # -- scheduling ------------------------------------------------------------

    def _pack(self, tasks: list[CountTask], full_cost: int) -> list[list[CountTask]]:
        """Greedy-balance tasks into at most ``n_workers`` buckets by cost.

        Tasks sharing one parent's row array are packed as a unit, so
        the (deduplicated) array is pickled at most once per batch.
        """
        groups: dict[int | None, list[CountTask]] = {}
        for task in tasks:
            groups.setdefault(None if task.rows is None else id(task.rows), []).append(task)
        units = list(groups.values())
        n_buckets = min(self.n_workers, len(units))
        buckets: list[list[CountTask]] = [[] for _ in range(n_buckets)]
        loads = [0] * n_buckets
        for unit in sorted(
            units, key=lambda u: sum(_task_cost(t, full_cost) for t in u), reverse=True
        ):
            i = loads.index(min(loads))
            buckets[i].extend(unit)
            loads[i] += sum(_task_cost(t, full_cost) for t in unit)
        return [b for b in buckets if b]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down and unlink every exported segment."""
        if self.closed:
            return
        self.closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for key in list(self._exports):
            for _measures, export in self._exports.pop(key, []):
                export.close()
        for fin in self._finalizers.values():
            fin.detach()
        self._finalizers.clear()
        _live_pools.discard(self)

    def __enter__(self) -> "CountingPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("broken" if self._broken else "open")
        return (
            f"CountingPool(n_workers={self.n_workers}, tables={len(self._exports)}, "
            f"{state})"
        )


#: Pools with live shared-memory exports, unlinked at interpreter exit.
_live_pools: "weakref.WeakSet[CountingPool]" = weakref.WeakSet()


@atexit.register
def _close_live_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in list(_live_pools):
        pool.close()


_default_pools: dict[int, CountingPool] = {}


def default_pool(n_workers: int) -> CountingPool:
    """Return the process-wide shared pool for ``n_workers``.

    Lets bare ``brs(..., n_workers=4)`` calls amortise worker start-up
    and table exports across invocations without explicit pool
    management; the pools are closed ``atexit``.
    """
    if n_workers == 0:
        n_workers = os.cpu_count() or 1
    pool = _default_pools.get(n_workers)
    if pool is None or pool.closed:
        pool = CountingPool(n_workers)
        _default_pools[n_workers] = pool
    return pool


def resolve_pool(
    pool: CountingPool | None, n_workers: int | None
) -> CountingPool | None:
    """Resolve the public ``pool=``/``n_workers=`` knobs to a pool.

    An explicit ``pool`` wins.  Otherwise ``n_workers`` of ``None`` or
    ``1`` means serial (no pool), ``0`` means all cores, and ``>= 2``
    returns the shared :func:`default_pool` of that size.
    """
    if pool is not None:
        return pool
    if n_workers is None:
        return None
    if n_workers == 0:
        n_workers = os.cpu_count() or 1
    if n_workers <= 1:
        return None
    return default_pool(n_workers)
