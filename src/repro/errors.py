"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  Sub-classes are fine-grained enough that tests can assert on
the *kind* of misuse detected.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table schema is malformed or used inconsistently.

    Raised for duplicate column names, unknown columns, kind mismatches
    (e.g. asking for categorical codes of a numeric column), and ragged
    row input.
    """


class EncodingError(ReproError):
    """A value could not be encoded against a column dictionary."""


class RuleError(ReproError):
    """A rule is malformed for the schema it is evaluated against."""


class WeightFunctionError(ReproError):
    """A user-supplied weighting function violates its contract.

    The paper requires weighting functions to be non-negative and
    monotonic (sub-rules weigh no more than super-rules); validation
    helpers raise this error when a counter-example is found.
    """


class SamplingError(ReproError):
    """Sampling machinery was misused (bad rates, empty reservoirs, ...)."""


class AllocationError(ReproError):
    """Sample-memory allocation inputs are infeasible or malformed."""


class StorageError(ReproError):
    """Simulated disk layer misuse (closed scans, bad page sizes, ...)."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class SessionError(ReproError):
    """An interactive-session operation is invalid in the current state.

    Examples: expanding a rule that is not displayed, collapsing a rule
    that has no children, drilling down on a non-star cell.
    """
