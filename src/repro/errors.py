"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  Sub-classes are fine-grained enough that tests can assert on
the *kind* of misuse detected.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table schema is malformed or used inconsistently.

    Raised for duplicate column names, unknown columns, kind mismatches
    (e.g. asking for categorical codes of a numeric column), and ragged
    row input.
    """


class EncodingError(ReproError):
    """A value could not be encoded against a column dictionary."""


class RuleError(ReproError):
    """A rule is malformed for the schema it is evaluated against."""


class WeightFunctionError(ReproError):
    """A user-supplied weighting function violates its contract.

    The paper requires weighting functions to be non-negative and
    monotonic (sub-rules weigh no more than super-rules); validation
    helpers raise this error when a counter-example is found.
    """


class EngineError(ReproError, ValueError):
    """A search-engine selector or engine-level knob is invalid.

    Raised by :func:`repro.core.brs.brs_iter` for an unknown ``engine``
    name and by :func:`repro.core.brs.brs_time_limited` for a
    non-positive time limit.  Dual-inherits :class:`ValueError` so
    pre-existing ``except ValueError`` call sites keep working; the
    HTTP front end maps it (via :class:`ReproError`) to 400.
    """


class ParameterError(ReproError, ValueError):
    """An analysis-parameter value is out of its documented domain.

    Raised by :mod:`repro.core.params` validation (mismatched
    weight/fraction vector lengths, a target fraction outside
    ``[0, 1]``).  Dual-inherits :class:`ValueError` for backward
    compatibility; maps to HTTP 400 on the wire.
    """


class SamplingError(ReproError):
    """Sampling machinery was misused (bad rates, empty reservoirs, ...)."""


class AllocationError(ReproError):
    """Sample-memory allocation inputs are infeasible or malformed."""


class StorageError(ReproError):
    """Simulated disk layer misuse (closed scans, bad page sizes, ...)."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class SessionError(ReproError):
    """An interactive-session operation is invalid in the current state.

    Examples: expanding a rule that is not displayed, collapsing a rule
    that has no children, drilling down on a non-star cell.
    """


class SessionClosedError(SessionError):
    """A closed :class:`~repro.session.DrillDownSession` was used.

    Raised by every mutating session operation (expand, collapse,
    refresh) after :meth:`~repro.session.DrillDownSession.close` — which
    the multi-tenant registry may call at any time, including while an
    expansion is in flight on another thread.  Read-only accessors keep
    working so a client can still render the last displayed tree.
    """


class ServingError(ReproError):
    """Base class for multi-tenant serving-tier errors (:mod:`repro.serving`)."""


class UnknownTableError(ServingError):
    """A table name is not registered in the :class:`~repro.serving.TableCatalog`."""


class TableConflictError(ServingError):
    """A table name is already registered with different data.

    Served tables are versioned, not silently mutable: re-registering a
    name with other rows is refused so no client can swap data out from
    under live sessions by accident.  The remedies are explicit —
    ``append_rows(name, rows)`` grows the table in place as a new
    version, ``replace_table(name, table)`` swaps it wholesale (also as
    a new version), and ``unregister`` + ``register`` starts over.
    Maps to HTTP 409 Conflict.
    """


class UnknownSessionError(ServingError):
    """A session id is not (or no longer) in the :class:`~repro.serving.SessionRegistry`.

    Raised both for ids that never existed and for sessions that were
    expired (TTL) or evicted (LRU) — from the client's point of view the
    session is simply gone and must be recreated.
    """


class SnapshotError(ServingError):
    """A session snapshot cannot be written or decoded.

    Raised when a session's state is not representable in the on-disk
    snapshot format (e.g. an unserialisable rule value) and —
    internally — when a stored snapshot fails to decode.  The
    :class:`~repro.serving.persistence.SnapshotStore` *skips* undecodable
    and stale-version files with a counter rather than propagating this
    at load time, so one corrupt snapshot can never block a warm
    restart.
    """


class ShardError(ServingError):
    """A shard worker process misbehaved at the protocol level.

    Raised by the :class:`~repro.serving.ShardRouter` when a shard
    returns an unintelligible frame or fails inside infrastructure code
    (as opposed to raising a typed :class:`ReproError`, which travels
    the wire and is re-raised as itself).  Maps to HTTP 503 — the
    request may succeed against a healthy shard after a restart.
    """


class ShardDownError(ShardError):
    """A shard worker process died while (or before) serving a request.

    The router detects the broken pipe, restarts the shard in the
    background (re-registering its tables, which warm-restores any
    snapshotted sessions from the shard's own persist directory), and
    raises this error for the request that observed the crash — it may
    have been half-applied, so the router never retries it silently.
    HTTP 503: the client should retry.
    """


class DeadlineExceededError(ServingError):
    """A request's deadline expired before the serving tier finished it.

    Raised on every layer of the deadline spine: admission (a budget
    already spent by earlier calls), the session-entry lock, the fair
    scheduler's dispatch queue, and the shard pipe (a worker that
    missed its reply window — the router kills and restarts it).  Maps
    to HTTP 503 with a ``Retry-After`` header: the tier is healthy or
    recovering, and the same request may well fit a fresh deadline.
    ``retry_after`` is a back-off hint in seconds (``None`` = retry at
    will).
    """

    def __init__(self, message: str = "deadline exceeded", *, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class CircuitOpenError(ShardDownError):
    """A shard's circuit breaker is open: the request was shed, not sent.

    After ``threshold`` consecutive pipe-level failures the router
    stops dialing the shard at all; callers get this error immediately
    (no queueing behind the corpse) until the breaker's cooldown admits
    a half-open probe.  Subclasses :class:`ShardDownError`, so existing
    503 mappings and ``except ShardDownError`` maintenance sweeps treat
    it as the shard being unavailable.  ``retry_after`` is the
    remaining cooldown in seconds.
    """

    def __init__(self, message: str = "circuit open", *, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class TenantBudgetError(ServingError):
    """A tenant's token budget cannot cover a requested expansion.

    The serving tier's typed throttle signal: raised *immediately*
    instead of queueing the work, so an over-budget tenant gets a clear
    retry-able error (HTTP 429 on the wire) rather than a hang.
    ``retry_after`` estimates the seconds until the bucket has refilled
    enough, or is ``None`` when the budget does not refill.
    """

    def __init__(
        self,
        tenant: object,
        requested: float,
        available: float,
        retry_after: float | None = None,
    ):
        self.tenant = tenant
        self.requested = requested
        self.available = available
        self.retry_after = retry_after
        message = (
            f"tenant {tenant!r} requested {requested:g} tokens "
            f"but only {available:g} are available"
        )
        if retry_after is not None:
            message += f" (retry in ~{retry_after:.1f}s)"
        super().__init__(message)
