"""A small LRU page cache over a :class:`~repro.storage.disk.DiskTable`.

Real systems keep recently scanned pages in a buffer pool; repeated
scans (e.g. a Create pass shortly after the initial load) then hit
memory.  The cache preserves the *logical* I/O accounting contract —
hits are counted separately so experiments can report both logical and
effective I/O.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import StorageError
from repro.storage.disk import DiskTable
from repro.table.table import Table

__all__ = ["CacheStats", "PageCache"]


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`PageCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU cache of decoded pages keyed by page index.

    Parameters
    ----------
    disk:
        The underlying metered disk table.
    capacity_pages:
        Maximum number of pages held.
    """

    def __init__(self, disk: DiskTable, capacity_pages: int):
        if capacity_pages < 1:
            raise StorageError("capacity_pages must be >= 1")
        self._disk = disk
        self._capacity = capacity_pages
        self._pages: OrderedDict[int, tuple[np.ndarray, Table]] = OrderedDict()
        self.stats = CacheStats()

    @property
    def disk(self) -> DiskTable:
        return self._disk

    @property
    def capacity_pages(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def _load_page(self, page: int) -> tuple[np.ndarray, Table]:
        start = page * self._disk.page_rows
        stop = min(start + self._disk.page_rows, self._disk.n_rows)
        indexes = np.arange(start, stop, dtype=np.int64)
        chunk = self._disk.fetch_rows(indexes)
        return indexes, chunk

    def get_page(self, page: int) -> tuple[np.ndarray, Table]:
        """Return ``(global row indexes, page chunk)``, caching LRU-style."""
        if not 0 <= page < self._disk.n_pages:
            raise StorageError(f"page {page} out of range")
        cached = self._pages.get(page)
        if cached is not None:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        entry = self._load_page(page)
        self._pages[page] = entry
        if len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def scan(self) -> Iterator[tuple[np.ndarray, Table]]:
        """Full scan through the cache (hot pages skip simulated I/O)."""
        for page in range(self._disk.n_pages):
            yield self.get_page(page)
