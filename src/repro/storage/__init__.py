"""Simulated disk storage substrate (Section 4's cost model)."""

from repro.storage.disk import DEFAULT_PAGE_READ_SECONDS, DiskTable, IOStats, ScanContext
from repro.storage.pager import CacheStats, PageCache

__all__ = [
    "CacheStats",
    "DEFAULT_PAGE_READ_SECONDS",
    "DiskTable",
    "IOStats",
    "PageCache",
    "ScanContext",
]
