"""Simulated disk-resident tables (substrate for paper Section 4).

The paper's sampling machinery exists because "making a pass through
the entire table" on disk is the bottleneck; its runtime model is
``a·|T| + b·minSS`` where ``a`` is the per-tuple disk-scan cost.  This
module provides that substrate: a :class:`DiskTable` wraps an in-memory
:class:`~repro.table.Table` but only exposes it through **streaming
page scans**, each of which is metered (pages, tuples, simulated
seconds).  The SampleHandler's Create path consumes these scans; its
Find/Combine paths never touch them — exactly the cost asymmetry the
paper's Figures 5 and 8(a) measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import StorageError
from repro.table.schema import Schema
from repro.table.table import Table

__all__ = ["IOStats", "DiskTable", "ScanContext"]

#: Default simulated cost of reading one page from disk, in seconds.
#: Chosen so a full scan of the 2.5M-row Census table at 4096 rows/page
#: costs ≈ 3 simulated seconds, matching the paper's reported "a few
#: seconds" for scan-dominated drill-downs (Section 5.2.3).
DEFAULT_PAGE_READ_SECONDS = 5e-3


@dataclass
class IOStats:
    """Cumulative metered I/O of a :class:`DiskTable`."""

    scans_started: int = 0
    scans_completed: int = 0
    pages_read: int = 0
    tuples_read: int = 0
    simulated_seconds: float = 0.0

    def snapshot(self) -> "IOStats":
        """Return a copy (for before/after deltas in experiments)."""
        return IOStats(
            self.scans_started,
            self.scans_completed,
            self.pages_read,
            self.tuples_read,
            self.simulated_seconds,
        )

    def delta(self, before: "IOStats") -> "IOStats":
        """Return the I/O performed since ``before``."""
        return IOStats(
            self.scans_started - before.scans_started,
            self.scans_completed - before.scans_completed,
            self.pages_read - before.pages_read,
            self.tuples_read - before.tuples_read,
            self.simulated_seconds - before.simulated_seconds,
        )


class ScanContext:
    """Handle for one streaming scan; iterate to receive page chunks.

    Each yielded chunk is a :class:`Table` slice of up to ``page_rows``
    rows together with the global row indexes it came from (row
    identity is what lets samples be deduplicated when combined).
    """

    def __init__(self, disk: "DiskTable"):
        self._disk = disk
        self._next_row = 0
        self._finished = False

    def __iter__(self) -> Iterator[tuple[np.ndarray, Table]]:
        disk = self._disk
        n = disk.n_rows
        while self._next_row < n:
            start = self._next_row
            stop = min(start + disk.page_rows, n)
            indexes = np.arange(start, stop, dtype=np.int64)
            chunk = disk._table.take(indexes)
            disk.io_stats.pages_read += 1
            disk.io_stats.tuples_read += stop - start
            disk.io_stats.simulated_seconds += disk.page_read_seconds
            self._next_row = stop
            yield indexes, chunk
        if not self._finished:
            self._finished = True
            disk.io_stats.scans_completed += 1


class DiskTable:
    """A table reachable only through metered streaming scans.

    Parameters
    ----------
    table:
        The backing data.
    page_rows:
        Tuples per simulated disk page.
    page_read_seconds:
        Simulated latency per page read; accumulated in
        :attr:`io_stats` (wall-clock is never slept).
    """

    def __init__(
        self,
        table: Table,
        *,
        page_rows: int = 4096,
        page_read_seconds: float = DEFAULT_PAGE_READ_SECONDS,
    ):
        if page_rows < 1:
            raise StorageError("page_rows must be >= 1")
        if page_read_seconds < 0:
            raise StorageError("page_read_seconds must be >= 0")
        self._table = table
        self.page_rows = page_rows
        self.page_read_seconds = page_read_seconds
        self.io_stats = IOStats()

    # -- metadata access (free: catalog information, not data pages) -------

    @property
    def schema(self) -> Schema:
        return self._table.schema

    @property
    def n_rows(self) -> int:
        return self._table.n_rows

    @property
    def n_columns(self) -> int:
        return self._table.n_columns

    @property
    def n_pages(self) -> int:
        return -(-self._table.n_rows // self.page_rows)

    # -- data access --------------------------------------------------------

    def scan(self) -> ScanContext:
        """Start a streaming scan over all pages (metered)."""
        self.io_stats.scans_started += 1
        return ScanContext(self)

    def fetch_rows(self, indexes: np.ndarray) -> Table:
        """Random-access fetch of specific rows, metered by touched pages.

        Used by tests and by exact-count refresh; the SampleHandler's
        hot paths never call it.
        """
        indexes = np.asarray(indexes, dtype=np.int64)
        if indexes.size:
            pages = np.unique(indexes // self.page_rows)
            self.io_stats.pages_read += int(pages.size)
            self.io_stats.tuples_read += int(indexes.size)
            self.io_stats.simulated_seconds += self.page_read_seconds * pages.size
        return self._table.take(indexes)

    def fetch_buffered(self, indexes: np.ndarray) -> Table:
        """Unmetered fetch of rows that a just-completed scan buffered.

        A real single-pass reservoir keeps the (capacity-bounded) set of
        currently sampled *tuples* in memory as it streams; since this
        simulator's reservoirs track row ids, the handler re-extracts
        those tuples here after the scan.  No additional I/O is charged
        — the pass that produced the ids already read the pages.
        """
        return self._table.take(np.asarray(indexes, dtype=np.int64))

    def materialize(self) -> Table:
        """Read the whole table into memory (counts as one full scan)."""
        self.io_stats.scans_started += 1
        self.io_stats.scans_completed += 1
        self.io_stats.pages_read += self.n_pages
        self.io_stats.tuples_read += self.n_rows
        self.io_stats.simulated_seconds += self.page_read_seconds * self.n_pages
        return self._table

    def __repr__(self) -> str:
        return (
            f"DiskTable(rows={self.n_rows}, pages={self.n_pages}, "
            f"page_rows={self.page_rows})"
        )
