"""Interactive session state (the prototype tool's rule tree ``U``)."""

from repro.session.session import DrillDownSession, ExpansionRecord, SessionNode

__all__ = ["DrillDownSession", "ExpansionRecord", "SessionNode"]
