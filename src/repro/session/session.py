"""Interactive drill-down sessions — the paper's prototype tool (§2.3, §4.3).

A :class:`DrillDownSession` owns the displayed rule tree ``U``: it
starts at the trivial rule with the table's total count (the paper's
Table 1), expands rules into rule-lists on click, collapses them on a
second click (the roll-up of Section 2.3), and — when the table lives
on simulated disk — routes every expansion through the
:class:`~repro.sampling.handler.SampleHandler`, scaling displayed
counts by the sample's ``N_s`` and pre-fetching samples for the newly
displayed leaves in the background.

Expansions run on the incremental search engine; an in-memory session
additionally keeps the :class:`~repro.core.search_cache.SearchContext`
of every node it has expanded, so re-expanding a node (say after a
collapse, or with a larger ``k``) reuses the cached candidate lattice
instead of re-filtering and re-mining the sub-table.  Sampled (disk)
sessions do not retain contexts — they would pin evicted sample tables
past the handler's memory budget, and a swapped sample invalidates
them anyway.  :meth:`DrillDownSession.clear_search_cache` drops the
retained ones to reclaim memory.

Sessions built with ``n_workers >= 2`` (or a shared ``pool=``) mine
their expansions through the shared-memory parallel counting backend
(:mod:`repro.core.parallel`).

**Ownership and lifecycle.**  Who closes what:

* A session built with ``n_workers >= 2`` *owns* its
  :class:`~repro.core.parallel.CountingPool` and releases the workers
  and shared-memory exports in :meth:`DrillDownSession.close` (or the
  context-manager exit).  A pool passed in via ``pool=`` — the
  multi-tenant pattern, where a
  :class:`~repro.serving.TableCatalog` owns one pool for every
  tenant — is only borrowed and is never closed by the session.
* Search contexts retained by the session (``_search_contexts``) are
  session-owned and dropped on close.  When a ``context_store=`` is
  supplied (the serving tier's
  :class:`~repro.serving.ContextStore`), the session additionally
  *leases* clones of contexts published by other sessions with an
  identical drill-down configuration and publishes its own freshly
  built ones back; leased clones are still private to this session —
  the store only ever hands out copies, so sessions cannot corrupt
  each other.
* :meth:`close` is idempotent and safe to call from another thread —
  e.g. a registry evicting this session — while an expansion is in
  flight: the in-flight operation completes (an owned pool's release
  is deferred until it drains), and every *later* mutating call
  raises :class:`~repro.errors.SessionClosedError`.  ``on_close=``
  registers a callback fired exactly once on the first close, which
  the serving registry uses for eviction bookkeeping.
"""

from __future__ import annotations

import numbers
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.drilldown import (
    drilldown_tag,
    rule_drilldown,
    star_drilldown,
    traditional_drilldown,
)
from repro.core.parallel import CountingPool
from repro.core.rule import Rule
from repro.core.scoring import ScoredRule
from repro.core.search_cache import SearchContext
from repro.core.weights import SizeWeight, WeightFunction
from repro.errors import SessionClosedError, SessionError
from repro.sampling.estimate import estimate_count
from repro.sampling.handler import SampleHandler
from repro.storage.disk import DiskTable
from repro.table.table import Table

__all__ = ["ExpansionRecord", "SessionNode", "DrillDownSession"]


def _validated_k(k: Any) -> int:
    """``k`` as a positive int, or :class:`SessionError`.

    ``k=0`` used to fall back to the session default silently (the
    ``k or self.k`` idiom); an explicit zero/negative/fractional ``k``
    is a caller bug and must say so (HTTP maps it to 400).  Integral
    numpy scalars (``np.int64(4)`` from an ``argmax``/count) coerce.
    """
    if isinstance(k, bool) or not isinstance(k, numbers.Integral):
        raise SessionError(f"k must be an integer >= 1, got {k!r}")
    if k < 1:
        raise SessionError(f"k must be >= 1, got {k}")
    return int(k)


def _validated_error_target(value: Any) -> float:
    """``error_target`` as a positive float, or :class:`SessionError`."""
    try:
        target = float(value)
    except (TypeError, ValueError):
        raise SessionError(f"error_target must be a number > 0, got {value!r}") from None
    if not target > 0:
        raise SessionError(f"error_target must be > 0, got {value!r}")
    return target


def _validated_mw(mw: Any) -> float:
    """``mw`` as a positive float, or :class:`SessionError`."""
    try:
        value = float(mw)
    except (TypeError, ValueError):
        raise SessionError(f"mw must be a number > 0, got {mw!r}") from None
    if not value > 0:
        raise SessionError(f"mw must be > 0, got {mw!r}")
    return value


@dataclass
class SessionNode:
    """One displayed rule with its statistics and expansion state.

    ``estimate`` is present only on nodes produced by an *approximate*
    expansion (sample-based mining, §4.3): a plain dict of
    :class:`~repro.sampling.estimate.CountEstimate` metadata —
    ``estimate``/``low``/``high``/``confidence``/``sample_size``/
    ``scale``/``escalated``/``exact`` — that travels verbatim through
    the shard wire, snapshots and the HTTP response.  Exact expansions
    leave it ``None`` and serialise byte-identically to before the
    field existed.
    """

    rule: Rule
    count: float
    weight: float
    depth: int
    children: list["SessionNode"] = field(default_factory=list)
    expanded_via: str | None = None  # "rule" | "star" | "traditional"
    estimate: dict | None = None

    @property
    def is_expanded(self) -> bool:
        return bool(self.children)


@dataclass(frozen=True)
class ExpansionRecord:
    """Telemetry for one expansion (drives the §5.2 experiments)."""

    rule: Rule
    kind: str
    k: int
    wall_seconds: float
    simulated_io_seconds: float
    sample_method: str  # "find" | "combine" | "create" | "direct" | "approx" | "approx-escalated"
    sample_size: int
    scale: float


def _node_state(node: SessionNode) -> dict:
    """One displayed node (and its subtree) as replayable plain data.

    ``estimate`` is emitted only when present, so exact-session
    snapshots keep their pre-approx byte layout.
    """
    state = {
        "rule": node.rule,
        "count": node.count,
        "weight": node.weight,
        "depth": node.depth,
        "expanded_via": node.expanded_via,
        "children": [_node_state(child) for child in node.children],
    }
    if node.estimate is not None:
        state["estimate"] = dict(node.estimate)
    return state


def _record_state(record: ExpansionRecord) -> dict:
    """One history record as a plain dict (rules stay ``Rule`` objects)."""
    return {
        "rule": record.rule,
        "kind": record.kind,
        "k": record.k,
        "wall_seconds": record.wall_seconds,
        "simulated_io_seconds": record.simulated_io_seconds,
        "sample_method": record.sample_method,
        "sample_size": record.sample_size,
        "scale": record.scale,
    }


class DrillDownSession:
    """A stateful smart drill-down exploration of one table.

    Parameters
    ----------
    source:
        An in-memory :class:`~repro.table.Table` (expansions run on the
        full data) or a :class:`~repro.storage.DiskTable` (expansions
        run on dynamically maintained samples, Section 4).
    wf:
        Weight function; defaults to Size weighting.
    k:
        Rules per expansion (the paper's default display is 3–4).
    mw:
        Max-weight parameter for the BRS search.
    measure:
        Optional numeric column for Sum aggregation.
    memory_capacity, min_sample_size, allocator, rng:
        SampleHandler settings (disk sources only).
    prefetch:
        Pre-fetch samples for new leaves after each expansion (§4.3).
    n_workers:
        Parallel counting for expansions: ``None`` or ``1`` (the
        default) mines serially; ``0`` uses every core; ``>= 2`` spins
        up a session-owned shared-memory
        :class:`~repro.core.parallel.CountingPool` of that many
        workers, released by :meth:`close` (the session is also a
        context manager).  Expansions are identical either way.
    pool:
        An existing :class:`~repro.core.parallel.CountingPool` to share
        (e.g. one pool serving many sessions — the multi-tenant
        pattern).  Overrides ``n_workers``; a shared pool is *not*
        closed by :meth:`close`.
    context_store:
        Optional cross-session :class:`~repro.serving.ContextStore`.
        In-memory sessions then lease cached candidate lattices built
        by other sessions with an identical (table, weighting, ``mw``,
        measure) configuration — skipping the full-table first-pick
        passes — and publish their own fresh contexts back.  Leases
        are private clones; results are identical with or without a
        store.
    tenant:
        Opaque tenant label forwarded to the counting backend so a
        shared pool's :class:`~repro.serving.FairScheduler` (when
        installed) can round-robin dispatch across tenants.
    samples:
        Optional pre-built :class:`~repro.serving.TableSampleSet` over
        the *same* table, enabling approximate expansions
        (``approx=True``, or ``default_approx=``): mining runs on the
        best matching sample, displayed counts are scaled estimates,
        and every child carries :class:`CountEstimate` metadata in
        :attr:`SessionNode.estimate`.  In-memory sources only — a
        :class:`~repro.storage.DiskTable` session already mines on the
        handler's dynamic samples.
    default_approx:
        When true, expansions mine approximately unless the call says
        ``approx=False``.  Requires ``samples``.
    error_target:
        Default relative half-width bound for approximate expansions:
        a child whose confidence interval's half-width exceeds
        ``error_target × max(estimate, 1)`` sits too close to the
        greedy decision boundary, and the whole expansion escalates to
        exact mining.  Tight targets therefore converge to the exact
        rule list.  Overridable per call.
    approx_confidence:
        Confidence level of the per-child intervals (default 0.95).
    on_close:
        Callback invoked exactly once, with this session, when the
        session transitions to closed (explicit :meth:`close`, context
        exit, or registry eviction).
    """

    def __init__(
        self,
        source: Table | DiskTable,
        *,
        wf: WeightFunction | None = None,
        k: int = 3,
        mw: float = 5.0,
        measure: str | None = None,
        memory_capacity: int = 50_000,
        min_sample_size: int = 5_000,
        allocator: str = "dp",
        rng: np.random.Generator | None = None,
        prefetch: bool = True,
        n_workers: int | None = None,
        pool: CountingPool | None = None,
        context_store: Any = None,
        tenant: Any = None,
        samples: Any = None,
        marginals: Any = None,
        default_approx: bool = False,
        error_target: float = 0.1,
        approx_confidence: float = 0.95,
        on_close: Callable[["DrillDownSession"], None] | None = None,
    ):
        self.wf = wf or SizeWeight()
        self.k = _validated_k(k)
        self.mw = _validated_mw(mw)
        self.measure = measure
        self.prefetch_enabled = prefetch
        self.tenant = tenant
        if isinstance(source, DiskTable) and samples is not None:
            raise SessionError(
                "samples= applies to in-memory tables only; a DiskTable "
                "session mines on its SampleHandler's dynamic samples"
            )
        if default_approx and samples is None:
            raise SessionError("default_approx=True requires pre-built samples=")
        self._samples = samples
        # Registration-time first-pick marginal cache (read-only,
        # shared across sessions).  Only in-memory sessions can use it:
        # a DiskTable session mines on dynamic sample tables, which the
        # cache's identity keying would never match anyway.
        self._marginals = None if isinstance(source, DiskTable) else marginals
        self.default_approx = bool(default_approx)
        self.error_target = _validated_error_target(error_target)
        if not 0.0 < float(approx_confidence) < 1.0:
            raise SessionError("approx_confidence must be in (0, 1)")
        self.approx_confidence = float(approx_confidence)
        self._context_store = context_store
        self._on_close = on_close
        self._closed = False
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._deferred_pool: CountingPool | None = None
        if pool is not None:
            self._pool: CountingPool | None = pool
            self._owns_pool = False
        elif n_workers is not None and n_workers != 1:
            self._pool = CountingPool(n_workers)
            self._owns_pool = True
        else:
            self._pool = None
            self._owns_pool = False
        if isinstance(source, DiskTable):
            self._disk: DiskTable | None = source
            self._table: Table | None = None
            self.handler: SampleHandler | None = SampleHandler(
                source,
                memory_capacity=memory_capacity,
                min_sample_size=min_sample_size,
                allocator=allocator,  # type: ignore[arg-type]
                rng=rng,
            )
            n_columns = source.n_columns
            total = float(source.n_rows)
        else:
            self._disk = None
            self._table = source
            self.handler = None
            n_columns = source.n_columns
            total = float(source.n_rows)
        self._n_columns = n_columns
        self.root = SessionNode(
            rule=Rule.trivial(n_columns), count=total, weight=self.wf.weight(Rule.trivial(n_columns)), depth=0
        )
        self._nodes: dict[Rule, SessionNode] = {self.root.rule: self.root}
        self.history: list[ExpansionRecord] = []
        # Incremental-search state per expanded node, keyed by
        # (kind, rule, column); survives collapse so re-expansion is
        # nearly free (see repro.core.search_cache).  Only in-memory
        # sessions retain contexts: in a sampled session they would pin
        # evicted sample tables and their row caches, bypassing the
        # SampleHandler's memory budget.
        self._search_contexts: dict[tuple, "SearchContext"] = {}

    # -- lookup -----------------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        if self._table is not None:
            return self._table.column_names
        assert self._disk is not None
        return self._disk.schema.names

    def node(self, rule: Rule) -> SessionNode:
        """Return the displayed node for ``rule``."""
        try:
            return self._nodes[rule]
        except KeyError:
            raise SessionError(f"rule {rule} is not displayed") from None

    def displayed(self) -> list[SessionNode]:
        """Pre-order walk of the displayed tree (the rendered rows)."""
        out: list[SessionNode] = []

        def walk(node: SessionNode) -> None:
            out.append(node)
            for child in node.children:
                walk(child)

        walk(self.root)
        return out

    def leaves(self) -> list[SessionNode]:
        """Displayed nodes with no children (drill-down candidates)."""
        return [n for n in self.displayed() if not n.children]

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (mutating calls now raise)."""
        return self._closed

    @property
    def source_rows(self) -> int:
        """Rows in the session's source (table or simulated disk).

        The serving tier's :class:`~repro.serving.FairScheduler` uses
        this as the token cost of one expansion.
        """
        if self._table is not None:
            return self._table.n_rows
        assert self._disk is not None
        return self._disk.n_rows

    # -- expansion machinery ------------------------------------------------------

    def _begin_op(self) -> None:
        """Enter a mutating operation; reject it on a closed session."""
        with self._state_lock:
            if self._closed:
                raise SessionClosedError("session is closed")
            self._inflight += 1

    def _end_op(self) -> None:
        """Leave a mutating operation; run any close deferred behind it."""
        release = None
        with self._state_lock:
            self._inflight -= 1
            if self._closed and self._inflight == 0 and self._deferred_pool is not None:
                release = self._deferred_pool
                self._deferred_pool = None
        if release is not None:
            release.close()

    def _lease_context(
        self, cache_key: tuple, tag: tuple, source: Table | None = None
    ) -> "SearchContext | None":
        """A context for this expansion: session-owned first, then a store lease.

        ``source`` is the table the expansion will actually mine —
        the session's own table by default, a shared sample table for
        approximate expansions (the store keys prototypes by table
        identity, so approx and exact contexts can never collide).
        """
        context = self._search_contexts.get(cache_key)
        if (
            context is None
            and tag is not None
            and self._context_store is not None
            and self.handler is None
        ):
            context = self._context_store.lease(
                self._table if source is None else source,
                tag, pool=self._pool, tenant=self.tenant,
            )
        return context

    def _retain_context(
        self,
        cache_key: tuple,
        tag: tuple,
        context: "SearchContext | None",
        source: Table | None = None,
    ) -> None:
        """Keep a fresh context for re-expansion and share it via the store.

        Retention is guarded on ``_closed`` *under the state lock*: a
        concurrent :meth:`close` racing an in-flight expansion runs
        :meth:`clear_search_cache` once, and an unguarded retain landing
        after that clear would pin the table and candidate lattice past
        session death.  Either the retain commits first (and the close's
        clear removes it) or the flag is already set (and we skip) —
        both leave a closed session holding nothing.  (The store's
        prototype is a frozen clone owned by the store itself, so
        publishing is independent of this session's lifetime.)
        """
        if context is None or tag is None or self.handler is not None:
            return
        with self._state_lock:
            if self._closed:
                return
            self._search_contexts[cache_key] = context
        if self._context_store is not None:
            self._context_store.publish(
                self._table if source is None else source, tag, context
            )

    def _expandable_node(self, rule: Rule) -> SessionNode:
        """The displayed, not-yet-expanded node for ``rule``.

        Validated *before* any table work runs: an already-expanded (or
        undisplayed) rule must fail here, not after a full mining pass —
        the serving tier refunds a rejected expansion's budget charge on
        the promise that rejection costs nothing.
        """
        node = self.node(rule)
        if node.children:
            raise SessionError(f"rule {rule} is already expanded; collapse it first")
        return node

    def _acquire(self, rule: Rule) -> tuple[Table, float, str, int]:
        """Table to mine for ``rule``: a sample (scaled) or the full data."""
        if self.handler is None:
            assert self._table is not None
            return self._table, 1.0, "direct", self._table.n_rows
        sample, method = self.handler.get_sample(rule)
        return sample.table, sample.scale, method, sample.size

    def _attach(
        self,
        parent: SessionNode,
        entries: Sequence[ScoredRule],
        scale: float,
        kind: str,
    ) -> list[SessionNode]:
        if parent.children:
            raise SessionError(f"rule {parent.rule} is already expanded; collapse it first")
        children: list[SessionNode] = []
        for entry in entries:
            if entry.rule in self._nodes:
                continue  # a rule is displayed at most once
            child = SessionNode(
                rule=entry.rule,
                count=entry.count * scale,
                weight=entry.weight,
                depth=parent.depth + 1,
            )
            self._nodes[entry.rule] = child
            children.append(child)
        parent.children = children
        parent.expanded_via = kind
        return children

    def _record(
        self,
        rule: Rule,
        kind: str,
        k: int,
        wall: float,
        method: str,
        sample_size: int,
        scale: float,
        io_before: float,
    ) -> None:
        io_now = self._disk.io_stats.simulated_seconds if self._disk else 0.0
        self.history.append(
            ExpansionRecord(
                rule=rule,
                kind=kind,
                k=k,
                wall_seconds=wall,
                simulated_io_seconds=io_now - io_before,
                sample_method=method,
                sample_size=sample_size,
                scale=scale,
            )
        )

    def _prefetch(self, parent: SessionNode) -> None:
        if self.handler is None or not self.prefetch_enabled or not parent.children:
            return
        self.handler.prefetch(parent.rule, [c.rule for c in parent.children])

    # -- approximate expansion (§4.3 over pre-built serving samples) ---------------

    def _resolve_approx(self, approx: Any, error_target: Any) -> tuple[bool, float]:
        """Resolve the per-call ``approx``/``error_target`` knobs.

        Validation happens before any table work so the serving tier's
        refund-on-rejection policy holds for bad knobs too.
        """
        target = (
            self.error_target if error_target is None else _validated_error_target(error_target)
        )
        use = self.default_approx if approx is None else bool(approx)
        if use and self._samples is None:
            raise SessionError(
                "approximate expansion requires pre-built samples "
                "(register the table with a sample_budget, or pass samples=)"
            )
        return use, target

    def _run_approx(
        self,
        node: SessionNode,
        rule: Rule,
        k: int | None,
        kind: str,
        target: float,
        cache_key: tuple,
        tag: tuple | None,
        mine: Callable[[Table, "SearchContext | None"], Any],
    ) -> list[SessionNode]:
        """One approximate expansion: mine on the best stored sample,
        stamp per-child :class:`CountEstimate` metadata, and escalate
        the whole expansion to exact mining when any child's interval
        half-width crosses the greedy decision boundary
        (``target × max(estimate, 1)``) — so a tight ``error_target``
        provably returns the exact rule list.
        """
        assert self._samples is not None and self._table is not None
        start = time.perf_counter()
        sample = self._samples.sample_for(rule)
        approx_key = (*cache_key, "approx", sample.filter_rule)
        result = mine(sample.table, self._lease_context(approx_key, tag, source=sample.table))
        self._retain_context(approx_key, tag, result.context, source=sample.table)
        entries = result.rule_list.entries
        estimates = {
            entry.rule: estimate_count(sample, entry.rule, confidence=self.approx_confidence)
            for entry in entries
        }
        escalate = any(
            est.half_width > target * max(est.estimate, 1.0)
            for est in estimates.values()
        )
        if escalate:
            result = mine(self._table, self._lease_context(cache_key, tag))
            self._retain_context(cache_key, tag, result.context)
            children = self._attach(node, result.rule_list.entries, 1.0, kind)
            for child in children:
                child.estimate = {
                    "estimate": child.count,
                    "low": child.count,
                    "high": child.count,
                    "confidence": self.approx_confidence,
                    "sample_size": self._table.n_rows,
                    "scale": 1.0,
                    "escalated": True,
                    "exact": True,
                }
            method, sample_size, scale = "approx-escalated", self._table.n_rows, 1.0
        else:
            children = self._attach(node, entries, sample.scale, kind)
            for child in children:
                est = estimates[child.rule]
                child.estimate = {
                    "estimate": est.estimate,
                    "low": est.low,
                    "high": est.high,
                    "confidence": est.confidence,
                    "sample_size": est.sample_size,
                    "scale": sample.scale,
                    "escalated": False,
                    "exact": est.half_width == 0.0,
                }
            method, sample_size, scale = "approx", sample.size, sample.scale
        wall = time.perf_counter() - start
        self._record(
            rule, kind, k if k is not None else len(children),
            wall, method, sample_size, scale, 0.0,
        )
        return children

    # -- the user-facing operations -------------------------------------------------

    def expand(
        self,
        rule: Rule,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
    ) -> list[SessionNode]:
        """Smart drill-down on ``rule`` (click on a rule, §2.3).

        ``approx=True`` (or ``default_approx``) mines on the pre-built
        sample instead of the full table, attaching
        :attr:`SessionNode.estimate` metadata to every child and
        escalating to exact mining when an estimate crosses the
        ``error_target`` decision boundary.
        """
        self._begin_op()
        try:
            node = self._expandable_node(rule)
            k = self.k if k is None else _validated_k(k)
            use_approx, target = self._resolve_approx(approx, error_target)
            cache_key = ("rule", rule, None)
            tag = drilldown_tag(
                "rule", rule, None, measure=self.measure, wf=self.wf, mw=self.mw
            )
            if use_approx:
                def mine(table: Table, context: "SearchContext | None"):
                    return rule_drilldown(
                        table, rule, self.wf, k, self.mw, measure=self.measure,
                        context=context, pool=self._pool, tenant=self.tenant,
                    )

                return self._run_approx(node, rule, k, "rule", target, cache_key, tag, mine)
            io_before = self._disk.io_stats.simulated_seconds if self._disk else 0.0
            start = time.perf_counter()
            mined, scale, method, sample_size = self._acquire(rule)
            result = rule_drilldown(
                mined, rule, self.wf, k, self.mw, measure=self.measure,
                context=self._lease_context(cache_key, tag), pool=self._pool,
                tenant=self.tenant, first_pick=self._marginals,
            )
            self._retain_context(cache_key, tag, result.context)
            children = self._attach(node, result.rule_list.entries, scale, "rule")
            wall = time.perf_counter() - start
            self._record(rule, "rule", k, wall, method, sample_size, scale, io_before)
            self._prefetch(node)
            return children
        finally:
            self._end_op()

    def expand_star(
        self,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
    ) -> list[SessionNode]:
        """Smart drill-down on a ``?`` cell of ``rule`` (§2.3)."""
        self._begin_op()
        try:
            node = self._expandable_node(rule)
            k = self.k if k is None else _validated_k(k)
            use_approx, target = self._resolve_approx(approx, error_target)
            if use_approx:
                assert self._table is not None
                resolved_column = (
                    self._table.schema.index_of(column) if isinstance(column, str) else column
                )
                cache_key = ("star", rule, resolved_column)
                tag = drilldown_tag(
                    "star", rule, resolved_column,
                    measure=self.measure, wf=self.wf, mw=self.mw,
                )

                def mine(table: Table, context: "SearchContext | None"):
                    return star_drilldown(
                        table, rule, resolved_column, self.wf, k, self.mw,
                        measure=self.measure, context=context, pool=self._pool,
                        tenant=self.tenant,
                    )

                return self._run_approx(node, rule, k, "star", target, cache_key, tag, mine)
            io_before = self._disk.io_stats.simulated_seconds if self._disk else 0.0
            start = time.perf_counter()
            mined, scale, method, sample_size = self._acquire(rule)
            resolved_column = (
                mined.schema.index_of(column) if isinstance(column, str) else column
            )
            cache_key = ("star", rule, resolved_column)
            tag = drilldown_tag(
                "star", rule, resolved_column,
                measure=self.measure, wf=self.wf, mw=self.mw,
            )
            result = star_drilldown(
                mined, rule, resolved_column, self.wf, k, self.mw, measure=self.measure,
                context=self._lease_context(cache_key, tag), pool=self._pool,
                tenant=self.tenant, first_pick=self._marginals,
            )
            self._retain_context(cache_key, tag, result.context)
            children = self._attach(node, result.rule_list.entries, scale, "star")
            wall = time.perf_counter() - start
            self._record(rule, "star", k, wall, method, sample_size, scale, io_before)
            self._prefetch(node)
            return children
        finally:
            self._end_op()

    def expand_traditional(
        self,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
    ) -> list[SessionNode]:
        """Classic OLAP drill-down on one column (Figure 4)."""
        self._begin_op()
        try:
            node = self._expandable_node(rule)
            if k is not None:
                k = _validated_k(k)
            use_approx, target = self._resolve_approx(approx, error_target)
            if use_approx:
                def mine(table: Table, context: Any):
                    # Traditional drill-down has no incremental context;
                    # the lease/retain around it degrades to a no-op.
                    return traditional_drilldown(
                        table, rule, column, measure=self.measure, k=k
                    )

                return self._run_approx(
                    node, rule, k, "traditional", target,
                    ("traditional", rule, column), None, mine,
                )
            io_before = self._disk.io_stats.simulated_seconds if self._disk else 0.0
            start = time.perf_counter()
            mined, scale, method, sample_size = self._acquire(rule)
            result = traditional_drilldown(mined, rule, column, measure=self.measure, k=k)
            children = self._attach(node, result.rule_list.entries, scale, "traditional")
            wall = time.perf_counter() - start
            self._record(
                rule, "traditional", k or len(children), wall, method, sample_size, scale, io_before
            )
            self._prefetch(node)
            return children
        finally:
            self._end_op()

    def collapse(self, rule: Rule) -> None:
        """Undo an expansion — the paper's roll-up equivalent (§2.3)."""
        self._begin_op()
        try:
            node = self.node(rule)
            if not node.children:
                raise SessionError(f"rule {rule} is not expanded")

            def forget(n: SessionNode) -> None:
                for child in n.children:
                    forget(child)
                    self._nodes.pop(child.rule, None)
                n.children = []

            forget(node)
            node.expanded_via = None
        finally:
            self._end_op()

    def clear_search_cache(self) -> None:
        """Drop all retained incremental-search contexts.

        Contexts are kept across :meth:`collapse` precisely so that
        re-expanding a node is nearly free; call this to reclaim their
        memory (cached candidate row sets) in a long session.
        """
        self._search_contexts.clear()

    @property
    def pool(self) -> CountingPool | None:
        """The parallel counting pool serving this session (None = serial)."""
        return self._pool

    # -- durability (snapshot / replay) --------------------------------------------

    def snapshot(self) -> dict:
        """This session's replayable exploration state, as plain data.

        Everything :meth:`restore` needs to rebuild an equivalent
        session over the same source *without re-mining*: the displayed
        rule tree ``U`` (rules, counts, weights, depths, expansion
        kinds), the expansion history, and the ``k``/``mw``/``measure``
        configuration plus tenant label.  Rules stay :class:`Rule`
        objects — serialisation (the versioned on-disk format) is the
        job of :mod:`repro.serving.persistence`.

        Deliberately **not** captured: search contexts (rebuilt, or
        re-leased from a :class:`~repro.serving.ContextStore`, on the
        first expansion after restore — the engine is deterministic, so
        results are identical either way), the pool, and the sample
        handler's in-memory samples.

        The caller must serialise against concurrent mutation — the
        serving tier snapshots under its per-session entry lock.
        """
        return {
            "k": self.k,
            "mw": self.mw,
            "measure": self.measure,
            "tenant": self.tenant,
            "columns": list(self.column_names),
            "tree": _node_state(self.root),
            "history": [_record_state(record) for record in self.history],
        }

    @classmethod
    def restore(
        cls,
        source: Table | DiskTable,
        state: dict,
        *,
        wf: WeightFunction | None = None,
        tenant: Any = None,
        **kwargs: Any,
    ) -> "DrillDownSession":
        """Rebuild a session from a :meth:`snapshot` state, replaying the
        tree without re-mining.

        ``source`` must hold the same data the snapshot was taken over
        (the snapshot stores no table rows); ``wf`` must be the same
        weighting configuration.  Remaining keyword arguments
        (``pool=``, ``context_store=``, ``n_workers=``, ``on_close=``,
        ...) are forwarded to the constructor.  The restored session's
        :meth:`to_text` is bit-identical to the snapshotted one, and —
        same engine, contexts rebuilt or store-leased — so are the rule
        lists of every subsequent expansion.

        Raises :class:`~repro.errors.SessionError` when the state does
        not fit ``source`` (column mismatch, malformed tree).
        """
        if tenant is None:
            tenant = state.get("tenant")
        session = cls(
            source,
            wf=wf,
            k=state["k"],
            mw=state["mw"],
            measure=state.get("measure"),
            tenant=tenant,
            **kwargs,
        )
        session._replay(state)
        return session

    def _replay(self, state: dict) -> None:
        """Install a snapshot's tree and history over the fresh root."""
        columns = [str(c) for c in state.get("columns", ())]
        if columns != [str(c) for c in self.column_names]:
            raise SessionError(
                f"snapshot columns {columns} do not match the source's "
                f"{list(self.column_names)} — restore needs the same table"
            )

        def build(node_state: dict) -> SessionNode:
            estimate = node_state.get("estimate")
            node = SessionNode(
                rule=node_state["rule"],
                count=float(node_state["count"]),
                weight=float(node_state["weight"]),
                depth=int(node_state["depth"]),
                expanded_via=node_state.get("expanded_via"),
                estimate=dict(estimate) if estimate is not None else None,
            )
            node.children = [build(c) for c in node_state.get("children", ())]
            return node

        try:
            root = build(state["tree"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SessionError(f"malformed snapshot tree: {exc}") from None
        if root.rule != Rule.trivial(self._n_columns):
            raise SessionError("snapshot tree must be rooted at the trivial rule")
        nodes: dict[Rule, SessionNode] = {}

        def index(node: SessionNode) -> None:
            if node.rule in nodes:
                raise SessionError(f"snapshot displays rule {node.rule} twice")
            nodes[node.rule] = node
            for child in node.children:
                index(child)

        index(root)
        if float(root.count) != float(self.root.count):
            raise SessionError(
                f"snapshot root count {root.count:g} does not match the "
                f"source's {self.root.count:g} rows — the table's data changed"
            )
        try:
            history = [ExpansionRecord(**record) for record in state.get("history", ())]
        except TypeError as exc:
            raise SessionError(f"malformed snapshot history: {exc}") from None
        self.root = root
        self._nodes = nodes
        self.history = history

    def close(self) -> None:
        """Close the session: idempotent, thread-safe, eviction-safe.

        Releases the retained search contexts and — if this session
        created its own :class:`~repro.core.parallel.CountingPool` (the
        ``n_workers`` constructor knob) — the pool's workers and
        shared-memory table exports.  A pool passed in via ``pool=`` is
        shared (typically catalog-owned) and left running, exports
        intact, for the sessions still using it.

        Safe to call any number of times and from any thread, including
        a registry evicting this session while an expansion is in
        flight on another thread: the in-flight operation completes
        (an owned pool's release is deferred until it drains), the
        ``on_close`` callback fires exactly once, and every subsequent
        mutating call raises
        :class:`~repro.errors.SessionClosedError`.  Read-only accessors
        (:meth:`displayed`, :meth:`to_text`, ...) keep working on the
        last displayed tree.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            release = pool if (pool is not None and self._owns_pool) else None
            if release is not None and self._inflight > 0:
                self._deferred_pool = release  # drained by _end_op
                release = None
        self.clear_search_cache()
        if release is not None:
            release.close()
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback(self)

    def __enter__(self) -> "DrillDownSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def refresh_exact_counts(self) -> dict[Rule, float]:
        """Replace displayed estimated counts with exact counts (§4.3).

        For sampled sessions this pays one metered pass (the paper runs
        it inside the background pre-fetch pass); for in-memory sessions
        counts are recomputed directly.  Returns the per-rule deltas
        applied, so callers can surface "count corrected" feedback.
        """
        self._begin_op()
        try:
            return self._refresh_exact_counts()
        finally:
            self._end_op()

    def _refresh_exact_counts(self) -> dict[Rule, float]:
        nodes = [n for n in self.displayed() if not n.rule.is_trivial]
        deltas: dict[Rule, float] = {}
        if self.handler is not None:
            exact = self.handler.exact_counts([n.rule for n in nodes])
            for node in nodes:
                new = float(exact[node.rule])
                if new != node.count:
                    deltas[node.rule] = new - node.count
                    node.count = new
        else:
            assert self._table is not None
            from repro.core.rule import cover_mask

            measures = None
            if self.measure is not None:
                from repro.core.scoring import tuple_measures

                measures = tuple_measures(self._table, self.measure)
            for node in nodes:
                mask = cover_mask(node.rule, self._table)
                new = float(mask.sum()) if measures is None else float(measures[mask].sum())
                if new != node.count:
                    deltas[node.rule] = new - node.count
                    node.count = new
        return deltas

    # -- rendering --------------------------------------------------------------------

    def to_text(self, *, sort_display_by_count: bool = False) -> str:
        """Render the displayed tree as the paper's dotted table."""
        from repro.ui.render import render_session

        return render_session(self, sort_display_by_count=sort_display_by_count)
