"""``determinism`` — no unseeded randomness anywhere in ``repro/``.

The replay harness asserts *bit-identical* drill-down results across
runs; every random draw in the pipeline therefore flows from an
explicit seed, usually via :func:`repro.core.seeding.derive_seed`
(stable SHA1-derived per-component seeds from one base seed).  A
single unseeded generator — ``np.random.default_rng()`` with no
argument, the legacy global ``np.random.shuffle``-style API, or the
stdlib ``random`` module-level functions (which share one ambient
global state) — silently breaks that property: the replay tests go
flaky, and "same seed, same result" stops being a debugging tool.

Flagged, everywhere under ``repro/``:

* ``np.random.default_rng()`` / ``numpy.random.Generator(...)``
  constructions with *no positional seed argument*;
* any call into the legacy global API — ``np.random.rand``,
  ``np.random.shuffle``, ``np.random.seed``, ... (even *seeding* the
  global state is flagged: it is process-wide mutable state that
  cross-contaminates components);
* stdlib ``random`` module-level functions (``random.random``,
  ``random.shuffle``, ``random.randint``, ...) for the same reason;
* ``random.Random()`` / ``np.random.RandomState()`` constructed with
  no seed.

``random.Random(seed)`` and ``default_rng(seed)`` with an explicit
argument are the sanctioned shapes and pass.  ``random.SystemRandom``
is entropy by definition and out of scope for replay — if one ever
appears it should carry a pragma explaining why nondeterminism is
wanted there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, register_rule

__all__ = ["DeterminismRule"]

#: Unlike the serving-scoped rules, determinism applies to *every*
#: linted path — the benchmark and example trees feed the published
#: EXPERIMENTS numbers and must replay too (they are swept in
#: report-only mode by the gate, see ``tests/analysis``).
SCOPE = ()

#: Constructors that are fine *with* a seed argument, flagged without.
SEEDED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Names under these dotted prefixes are the shared-global APIs —
#: flagged regardless of arguments.
GLOBAL_STATE_PREFIX = "numpy.random."
STDLIB_RANDOM_PREFIX = "random."

#: numpy.random members that are classes/constructors, not draws on
#: the global state (handled by SEEDED_CONSTRUCTORS instead).
_NUMPY_NON_GLOBAL = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

_STDLIB_NON_GLOBAL = frozenset({"random.Random", "random.SystemRandom"})


def _has_seed(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg in ("seed", "x") for kw in node.keywords)


@register_rule
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "all randomness is explicitly seeded (derive_seed); unseeded "
        "default_rng()/Random() and the global np.random/random APIs "
        "break bit-identity replay"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if SCOPE and not module.in_package(*SCOPE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve(node.func)
            if target is None:
                continue
            if target in SEEDED_CONSTRUCTORS:
                if not _has_seed(node):
                    yield self.finding(
                        module,
                        node,
                        f"{target}() constructed without a seed — pass "
                        "derive_seed(...) so replay stays bit-identical",
                    )
            elif (
                target.startswith(GLOBAL_STATE_PREFIX)
                and target not in _NUMPY_NON_GLOBAL
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy global-state API {target}() — use a seeded "
                    "np.random.default_rng(derive_seed(...)) generator",
                )
            elif (
                target.startswith(STDLIB_RANDOM_PREFIX)
                and target not in _STDLIB_NON_GLOBAL
            ):
                yield self.finding(
                    module,
                    node,
                    f"stdlib global-state API {target}() — use a seeded "
                    "random.Random(derive_seed(...)) instance",
                )
