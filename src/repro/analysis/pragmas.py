"""Per-line pragma suppression: ``# repro-lint: allow[RULE] reason=...``.

A pragma silences named rules on one line — the line it trails, or,
for a comment that stands alone on its own line, the next line of
actual code (so a suppression can sit above a long statement without
breaking the line-length budget)::

    started = time.time()  # repro-lint: allow[clock-discipline] reason=wall clock survives restarts

    # repro-lint: allow[lock-blocking] reason=handle lock serialises the pipe by design
    raw = self.conn.recv_bytes()

Several rules may be listed, comma-separated:
``allow[clock-discipline,lock-blocking]``.  The ``reason=`` clause is
**mandatory** and consumes the rest of the comment: a suppression
without a recorded justification is itself a defect, so a malformed
pragma (missing rules, empty reason, unparseable syntax) suppresses
nothing and surfaces as a ``bad-pragma`` finding instead of silently
doing nothing.

Comments are located with :mod:`tokenize` (never regexes over string
literals), so a pragma-shaped string inside a docstring or test
fixture does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Pragma", "collect_pragmas"]

#: Any comment that *mentions* repro-lint is parsed strictly; the
#: well-formed shape is ``# repro-lint: allow[rule,rule] reason=text``.
_PRAGMA_HINT = re.compile(r"#\s*repro-lint\b")
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[^\]]*)\]\s*reason=(?P<reason>.*\S)"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment.

    ``line`` is the line the pragma *applies to* (the comment's own
    line for trailing pragmas, the next code line for standalone
    ones).  ``rules`` is the tuple of rule names it allows; an invalid
    pragma has ``error`` set and suppresses nothing.
    """

    line: int
    rules: tuple[str, ...]
    reason: str
    comment_line: int
    error: str | None = None

    def allows(self, rule: str) -> bool:
        return self.error is None and rule in self.rules


def _parse_comment(text: str, comment_line: int, applies_to: int) -> Pragma | None:
    """Parse one comment; ``None`` when it is not a pragma at all."""
    if not _PRAGMA_HINT.search(text):
        return None
    match = _PRAGMA.search(text)
    if not match:
        return Pragma(
            line=applies_to,
            rules=(),
            reason="",
            comment_line=comment_line,
            error=(
                "malformed repro-lint pragma (expected "
                "'# repro-lint: allow[rule,...] reason=...')"
            ),
        )
    rules = tuple(r.strip() for r in match.group("rules").split(",") if r.strip())
    reason = match.group("reason").strip()
    if not rules:
        return Pragma(
            line=applies_to,
            rules=(),
            reason=reason,
            comment_line=comment_line,
            error="repro-lint pragma allows no rules (empty allow[...])",
        )
    return Pragma(line=applies_to, rules=rules, reason=reason, comment_line=comment_line)


def collect_pragmas(source: str) -> list[Pragma]:
    """Every repro-lint pragma in ``source`` (including malformed ones).

    Tokenization errors (the file does not lex) yield no pragmas — the
    caller already reports the file as unparseable.
    """
    comments: list[tuple[int, str, bool]] = []  # (line, text, standalone)
    line_starts: dict[int, bool] = {}  # line -> saw non-comment code token
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string, False))
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for lineno in range(token.start[0], token.end[0] + 1):
                    line_starts[lineno] = True
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []

    pragmas: list[Pragma] = []
    code_lines = sorted(line_starts)
    for lineno, text, _ in comments:
        standalone = lineno not in line_starts
        if standalone:
            # Applies to the next line that holds code (skip blank and
            # further comment-only lines).
            applies_to = next((c for c in code_lines if c > lineno), lineno)
        else:
            applies_to = lineno
        pragma = _parse_comment(text, lineno, applies_to)
        if pragma is not None:
            pragmas.append(pragma)
    return pragmas
