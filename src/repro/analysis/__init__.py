"""repro.analysis — AST-based invariant linting for the serving tier.

Eight PRs of growth turned this reproduction into a concurrent,
sharded, crash-recovering serving tier whose correctness rests on
hand-enforced invariants: injectable clocks, the lock-vs-blocking-call
discipline (the PR 4 eviction race class), typed
:class:`~repro.errors.ReproError` raising with complete HTTP mappings,
tmp+fsync+``os.replace`` persistence, and ``derive_seed``-style
determinism that the bit-identity replay harness depends on.  The
chaos and replay suites can only probe those invariants *dynamically*
— one schedule, one seed at a time.  This package mechanizes them as a
static-analysis pass over the source itself, so every future PR is
checked against the rules on every file it touches.

The pass is pure stdlib-``ast`` (no third-party linter, no imports of
the code under analysis except the one rule that introspects the
exception hierarchy) and ships five repo-specific analyzers:

``clock-discipline``
    No naked ``time.time()`` / ``time.monotonic()`` /
    ``datetime.now()`` reads in ``repro/serving/`` outside declared
    clock seams — serving components take injectable ``clock=`` /
    ``wall_clock=`` callables (:mod:`repro.serving.registry`,
    :mod:`repro.serving.faults`, :mod:`repro.serving.server`).
``lock-blocking``
    No blocking operations (pipe ``recv_bytes``/``poll``, ``fsync``,
    snapshot ``save``, ``close()``, ``join()``, ...) lexically inside
    ``with self._lock:`` / ``with entry.lock:`` blocks — the exact
    race class PR 4 and PR 6 fixed by hand in the registry's eviction
    path.
``typed-errors``
    Request-path code (``repro/serving/`` + ``repro/core/``) raises
    :class:`~repro.errors.ReproError` subclasses, never bare builtins;
    and every concrete ``ReproError`` subclass resolves to an HTTP
    status in :mod:`repro.serving.http`'s mapper (completeness checked
    by importing the hierarchy and diffing it against the mapper's
    AST).
``atomic-writes``
    File writes in ``repro/serving/`` go through the
    tmp+fsync+``os.replace`` idiom (:mod:`repro.serving.persistence`,
    :mod:`~repro.serving.samples`, :mod:`~repro.serving.marginals`) —
    a direct ``open(..., "w")`` outside an atomic helper can publish a
    torn file under the real name on power loss.
``determinism``
    No unseeded randomness anywhere linted (including the
    ``benchmarks/`` and ``examples/`` trees, swept advisory-only) —
    ``np.random.default_rng()`` without a seed, the legacy global
    ``np.random.*`` API, and the stdlib ``random`` module-level
    functions all break the bit-identity replay harness.

Findings can be suppressed per line with a pragma carrying a reason::

    deadline = time.monotonic() + timeout  # repro-lint: allow[clock-discipline] reason=real pipe wait

or grandfathered in a checked-in baseline file (see
:mod:`repro.analysis.baseline`); the tier-1 gate
(``tests/analysis/test_repo_clean.py``) fails on any non-baselined
finding *and* on stale baseline entries, so the baseline can only
shrink.

Run it::

    PYTHONPATH=src python -m repro.analysis src/repro
    PYTHONPATH=src python -m repro.analysis --json src/repro

See ``docs/ANALYSIS.md`` for the operator's guide and how to add a
rule.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, default_rules, register_rule, rule_names
from repro.analysis.runner import AnalysisReport, analyze_paths, analyze_source

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "load_baseline",
    "register_rule",
    "rule_names",
    "write_baseline",
]
