"""The rule registry and the common per-module analysis context.

A rule is a named check over one parsed module.  Rules self-register
via :func:`register_rule` at import time; :func:`default_rules`
imports the shipped rule modules and returns one instance of each, so
the CLI, the library API, and the test gate all agree on the active
rule set without a config file.

:class:`ModuleInfo` is the unit of work handed to rules: the parsed
AST plus the repository-relative path (rules scope themselves by path
— e.g. clock discipline applies to ``repro/serving/`` only) and a
resolved import-alias map (so ``from time import monotonic`` and
``import numpy as np`` are seen through).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Type

from repro.analysis.findings import Finding

__all__ = [
    "ModuleInfo",
    "Rule",
    "default_rules",
    "register_rule",
    "rule_names",
]


@dataclass
class ModuleInfo:
    """One source file, parsed and path-classified, ready for rules.

    ``relpath`` uses forward slashes and starts at the package root
    (``repro/serving/server.py``) so scoping predicates and baseline
    keys are machine-independent.
    """

    relpath: str
    source: str
    tree: ast.Module
    #: local name -> dotted origin for imports: ``import numpy as np``
    #: maps ``"np" -> "numpy"``; ``from time import monotonic`` maps
    #: ``"monotonic" -> "time.monotonic"``.
    aliases: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, relpath: str) -> "ModuleInfo":
        tree = ast.parse(source)
        info = cls(relpath=relpath, source=source, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    info.aliases[name.asname or name.name.split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name == "*":
                        continue
                    info.aliases[name.asname or name.name] = f"{node.module}.{name.name}"
        return info

    def resolve(self, node: ast.expr) -> str | None:
        """A call target as a dotted path, import aliases unfolded.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        unresolvable shapes (calls on call results, subscripts)
        return ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def in_package(self, *prefixes: str) -> bool:
        """Does this module live under any of the given path prefixes?"""
        return any(self.relpath.startswith(p) for p in prefixes)


class Rule:
    """Base class for one named analyzer.

    Subclasses set ``name``/``description`` and implement
    :meth:`check`, yielding :class:`~repro.analysis.findings.Finding`
    objects whose ``rule`` field matches ``name`` (the helper
    :meth:`finding` fills the boilerplate).
    """

    name: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (names are unique)."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _load_shipped_rules() -> None:
    # Import for the side effect of registration; idempotent.
    from repro.analysis import (  # noqa: F401
        rules_atomic,
        rules_clock,
        rules_determinism,
        rules_errors,
        rules_locks,
    )


def default_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """One instance of every registered rule (optionally a named subset)."""
    _load_shipped_rules()
    names = sorted(_REGISTRY) if only is None else list(only)
    unknown = [n for n in names if n not in _REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {unknown!r}; registered: {sorted(_REGISTRY)}"
        )
    return [_REGISTRY[n]() for n in names]


def rule_names() -> tuple[str, ...]:
    """The registered rule names, sorted."""
    _load_shipped_rules()
    return tuple(sorted(_REGISTRY))
