"""Drive rules over files: collect, suppress, baseline, classify.

:func:`analyze_paths` is the one entry point shared by the CLI
(:mod:`repro.analysis.__main__`), the library API, and the tier-1 gate
(``tests/analysis/test_repo_clean.py``).  The pipeline per file:

1. read + parse (a file that does not parse is itself a finding —
   rule name ``parse-error`` — never a crash of the pass);
2. run every rule, collecting raw findings;
3. apply inline pragmas: a finding on a pragma'd line for an allowed
   rule becomes ``suppressed`` (kept, reported, never fatal); a
   malformed pragma emits a ``bad-pragma`` finding on its own;
4. apply the baseline: matching findings become ``baselined``.

The resulting :class:`AnalysisReport` splits findings into the
*enforced* set (what fails the gate), the *report-only* set (paths the
caller marked advisory — ``benchmarks/``, ``examples/``), suppressed
findings, and stale baseline entries.  ``report.exit_code`` folds the
gate policy into one number: non-zero on any enforced finding or any
stale baseline entry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.pragmas import collect_pragmas
from repro.analysis.registry import ModuleInfo, Rule, default_rules

__all__ = ["AnalysisReport", "analyze_paths", "analyze_source", "iter_python_files"]

#: Synthetic rule names emitted by the runner itself (not registered
#: rules — they cannot be pragma-suppressed or baselined away).
PARSE_ERROR_RULE = "parse-error"
BAD_PRAGMA_RULE = "bad-pragma"


@dataclass
class AnalysisReport:
    """Everything one pass produced, pre-classified for the gate.

    ``enforced`` findings (plus ``stale_baseline`` entries) fail the
    gate; ``report_only`` findings are advisory; ``suppressed`` keeps
    the pragma'd findings visible for audit.
    """

    enforced: list = field(default_factory=list)
    report_only: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if (self.enforced or self.stale_baseline) else 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "enforced": [f.to_dict() for f in self.enforced],
            "report_only": [f.to_dict() for f in self.report_only],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [
                {"rule": r, "path": p, "line": n} for (r, p, n) in self.stale_baseline
            ],
            "exit_code": self.exit_code,
        }


def analyze_source(
    source: str,
    relpath: str,
    rules: Sequence[Rule] | None = None,
) -> list:
    """Lint one in-memory module; findings with pragmas already applied.

    The workhorse for rule unit tests (no filesystem) and for
    :func:`analyze_paths`.  Baseline application is the caller's job —
    the baseline is a repository-level concept, not a module-level one.
    """
    if rules is None:
        rules = default_rules()
    try:
        module = ModuleInfo.parse(source, relpath)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=relpath,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]

    findings: list = []
    for rule in rules:
        findings.extend(rule.check(module))

    pragmas = collect_pragmas(source)
    by_line: dict = {}
    for pragma in pragmas:
        if pragma.error is not None:
            findings.append(
                Finding(
                    rule=BAD_PRAGMA_RULE,
                    path=relpath,
                    line=pragma.comment_line,
                    message=pragma.error,
                )
            )
        else:
            by_line.setdefault(pragma.line, []).append(pragma)

    out: list = []
    for finding in findings:
        pragma = next(
            (p for p in by_line.get(finding.line, ()) if p.allows(finding.rule)),
            None,
        )
        if pragma is not None:
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                suppressed=True,
                reason=pragma.reason,
            )
        out.append(finding)
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out


def iter_python_files(paths: Iterable[str]) -> list:
    """``(abspath, relpath)`` for every ``.py`` under ``paths``, sorted.

    ``relpath`` starts at the innermost ``repro`` package directory
    when there is one (``src/repro/serving/server.py`` →
    ``repro/serving/server.py``) so rule scoping and baseline keys are
    independent of where the checkout lives; paths outside the package
    (``benchmarks/bench_foo.py``) keep their path relative to the
    argument's parent.
    """
    collected: list = []
    for path in paths:
        path = os.path.abspath(os.fspath(path))
        if os.path.isfile(path):
            files = [path] if path.endswith(".py") else []
            root_parent = os.path.dirname(path)
        else:
            root_parent = os.path.dirname(path.rstrip(os.sep))
            files = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        for abspath in files:
            rel = os.path.relpath(abspath, root_parent).replace(os.sep, "/")
            # Re-anchor at the repro package root when present, so
            # ``src/repro/...`` and an installed tree lint identically.
            parts = rel.split("/")
            if "repro" in parts:
                rel = "/".join(parts[parts.index("repro"):])
            collected.append((abspath, rel))
    # De-duplicate (overlapping arguments) while keeping sort order.
    seen = set()
    unique = []
    for item in sorted(collected, key=lambda x: x[1]):
        if item[1] not in seen:
            seen.add(item[1])
            unique.append(item)
    return unique


def analyze_paths(
    paths: Iterable[str],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
    report_only_paths: Iterable[str] = (),
) -> AnalysisReport:
    """Run the full pass over files/directories and classify the output.

    ``report_only_paths`` are matched as relpath *prefixes* against
    each finding (``benchmarks/`` makes every finding under that tree
    advisory).  The baseline is consumed in deterministic file order;
    stale entries are computed after the sweep.
    """
    if rules is None:
        rules = default_rules()
    if baseline is None:
        baseline = Baseline()
    advisory = tuple(p.replace(os.sep, "/").rstrip("/") + "/" for p in report_only_paths)

    report = AnalysisReport()
    for abspath, relpath in iter_python_files(paths):
        with open(abspath, "r", encoding="utf-8") as fh:
            source = fh.read()
        report.files_checked += 1
        for finding in analyze_source(source, relpath, rules):
            if finding.suppressed:
                report.suppressed.append(finding)
            elif baseline.consume(finding):
                report.baselined.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        baselined=True,
                    )
                )
            elif finding.path.startswith(advisory) if advisory else False:
                report.report_only.append(finding)
            else:
                report.enforced.append(finding)
    report.stale_baseline = baseline.stale_entries()
    return report
