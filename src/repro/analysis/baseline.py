"""The grandfathering baseline: known findings that do not fail the gate.

When a new rule lands against a codebase with pre-existing violations,
either the rule waits for a mass cleanup or the violations are
*grandfathered*: recorded in a checked-in JSON file, matched by
``(rule, path, line)``, and excluded from the failing set.  Two
properties keep the baseline honest:

* **It can only shrink.**  A baseline entry that no longer matches any
  live finding (the code was fixed, moved, or deleted) is reported as
  ``stale-baseline`` and fails the gate until the entry is removed —
  so the file never accumulates dead weight, and a fixed finding can
  never silently regress back in under its old entry's cover.
* **It is regenerated, never hand-edited.**  ``python -m repro.analysis
  --write-baseline`` rewrites the file from the current findings in a
  stable sort order, so diffs stay reviewable.

This repository ships an *empty* baseline (``lint-baseline.json`` at
the repo root): every finding the five rules had against the tree was
either fixed or pragma-suppressed with a reason when the rules landed.
The machinery stays, exercised by fixtures, for the next rule that
arrives with history.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = ["BASELINE_VERSION", "Baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1

#: Default baseline filename, resolved against the current directory by
#: the CLI when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class Baseline:
    """The parsed baseline: a set of grandfathered finding keys.

    ``consume`` marks entries as matched; :meth:`stale_entries` lists
    the leftovers afterwards (the "can only shrink" check).
    """

    entries: set = field(default_factory=set)
    path: str | None = None
    _matched: set = field(default_factory=set)

    def consume(self, finding: Finding) -> bool:
        """``True`` (and remember the match) when ``finding`` is grandfathered."""
        if finding.key in self.entries:
            self._matched.add(finding.key)
            return True
        return False

    def stale_entries(self) -> list[tuple[str, str, int]]:
        """Baseline keys that matched no live finding, stably sorted."""
        return sorted(self.entries - self._matched)

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: str | os.PathLike) -> Baseline:
    """Read a baseline file; raises ``ValueError`` on a malformed one.

    A *missing* file is indistinguishable from an empty baseline — a
    fresh checkout with no grandfathered findings needs no file.
    """
    if not os.path.exists(path):
        return Baseline(path=os.fspath(path))
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{os.fspath(path)}: not a repro-lint baseline "
            f"(expected version {BASELINE_VERSION})"
        )
    entries = set()
    for raw in payload.get("findings", ()):
        try:
            entries.add((str(raw["rule"]), str(raw["path"]), int(raw["line"])))
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                f"{os.fspath(path)}: malformed baseline entry {raw!r} "
                "(need rule/path/line)"
            ) from None
    return Baseline(entries=entries, path=os.fspath(path))


def write_baseline(path: str | os.PathLike, findings: list[Finding]) -> None:
    """Serialise ``findings`` as the new baseline, stably sorted."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings, key=lambda f: f.key)
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
