"""Reporters: human-readable text and machine-readable ``--json``.

Both render the same :class:`~repro.analysis.runner.AnalysisReport`;
the JSON shape is ``AnalysisReport.to_dict()`` verbatim (stable keys,
findings as flat dicts) so CI tooling can diff runs without scraping
text.  The human reporter prints enforced findings first (they are
what the reader must act on), then stale baseline entries, then a
one-line summary; suppressed/baselined/advisory findings appear only
in verbose mode to keep the clean-run output to a single line.
"""

from __future__ import annotations

import json

from repro.analysis.runner import AnalysisReport

__all__ = ["render_human", "render_json"]


def render_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_human(report: AnalysisReport, *, verbose: bool = False) -> str:
    lines: list = []
    for finding in report.enforced:
        lines.append(finding.render())
    for rule, path, line in report.stale_baseline:
        lines.append(
            f"{path}:{line}:0: [stale-baseline] baseline entry for rule "
            f"{rule!r} matched no finding — the code was fixed; remove the "
            "entry (regenerate with --write-baseline)"
        )
    if verbose:
        for finding in report.report_only:
            lines.append(f"{finding.render()} (report-only)")
        for finding in report.suppressed:
            lines.append(finding.render())
        for finding in report.baselined:
            lines.append(finding.render())
    summary = (
        f"{report.files_checked} file(s) checked: "
        f"{len(report.enforced)} finding(s), "
        f"{len(report.report_only)} report-only, "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined, "
        f"{len(report.stale_baseline)} stale baseline entr(y/ies)"
    )
    lines.append(summary)
    return "\n".join(lines)
