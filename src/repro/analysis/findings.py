"""The unit of lint output: one :class:`Finding` per rule violation.

A finding is deliberately flat and JSON-friendly — the CLI's ``--json``
reporter emits findings verbatim, the baseline file stores a stable
subset of their fields, and the test gate compares them as plain data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repository-relative with forward slashes (stable across
    machines — it is what the baseline keys on); ``line``/``col`` are
    1-based / 0-based as in :mod:`ast`.  ``suppressed`` marks findings
    silenced by an inline pragma (kept for reporting, never fatal);
    ``baselined`` marks findings matched by a baseline entry.
    """

    rule: str
    path: str
    line: int
    message: str
    col: int = 0
    suppressed: bool = False
    #: The pragma reason when ``suppressed`` (audit trail in reports).
    reason: str | None = None
    baselined: bool = field(default=False, compare=False)

    @property
    def key(self) -> tuple[str, str, int]:
        """Identity used for baseline matching: (rule, path, line)."""
        return (self.rule, self.path, self.line)

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["reason"] = self.reason
        if self.baselined:
            out["baselined"] = True
        return out

    def render(self) -> str:
        """``path:line:col: [rule] message`` — the human reporter's line."""
        tags = []
        if self.suppressed:
            tags.append("suppressed")
        if self.baselined:
            tags.append("baselined")
        suffix = f" ({', '.join(tags)})" if tags else ""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}{suffix}"
