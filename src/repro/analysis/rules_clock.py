"""``clock-discipline`` — no naked wall/monotonic clock reads in serving code.

Every serving-tier component that reasons about time takes an
injectable clock — :class:`~repro.serving.registry.SessionRegistry`
and :class:`~repro.serving.faults.CircuitBreaker` accept
``clock=time.monotonic``, :class:`~repro.serving.server.DrillDownServer`
additionally takes ``wall_clock=time.time`` for the recency/downtime
accounting that must survive restarts.  That seam is what makes TTL
expiry, deadline aborts, breaker cooldowns, and warm-restart idle math
deterministically testable (frozen clocks) instead of sleep-based.

A *naked* ``time.time()`` / ``time.monotonic()`` / ``datetime.now()``
call inside ``repro/serving/`` bypasses the seam: the component works
in production and becomes untestable (or, worse, mixes clock domains —
comparing a wall-clock timestamp against a monotonic deadline).  This
rule flags every such call.

Passing a clock *function as a value* (``clock=time.monotonic`` as a
parameter default, ``field(default_factory=time.time)``) is not a
call and is deliberately not flagged — that is exactly what a seam
declaration looks like.  Genuine real-time waits (a pipe poll timeout,
a watchdog's own timer thread) are suppressed inline with a pragma
naming the reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, register_rule

__all__ = ["ClockDisciplineRule"]

#: Dotted call targets that read a clock.  ``time.sleep`` is not a
#: clock *read* and is governed by ``lock-blocking`` instead.
CLOCK_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Path prefixes the rule applies to (the serving tier only — core
#: search code's ``perf_counter`` telemetry is out of scope).
SCOPE = ("repro/serving/",)


@register_rule
class ClockDisciplineRule(Rule):
    name = "clock-discipline"
    description = (
        "serving-tier code must read time through an injectable clock "
        "seam, never time.time()/time.monotonic()/datetime.now() directly"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve(node.func)
            if target in CLOCK_READS:
                yield self.finding(
                    module,
                    node,
                    f"naked clock read {target}() — thread an injectable "
                    "clock=/wall_clock= through instead (see "
                    "SessionRegistry/CircuitBreaker)",
                )
