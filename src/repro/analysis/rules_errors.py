"""``typed-errors`` — request-path errors are typed and HTTP-mappable.

Two halves, one invariant: *anything a request can make the tier raise
travels as a* :class:`~repro.errors.ReproError` *subclass with a
deliberate HTTP status*.

**Raise discipline.**  In ``repro/serving/`` and ``repro/core/`` (the
request path — everything reachable from an HTTP verb), ``raise`` of a
bare builtin exception (``ValueError``, ``KeyError``, ``TypeError``,
...) is flagged: the HTTP front end would answer it through a generic
catch with an untyped name, clients cannot programmatically
distinguish it, and ``except ReproError`` boundaries miss it.  The
pipe-protocol signals ``EOFError`` / ``BrokenPipeError`` /
``TimeoutError`` are allowed — the shard transport deliberately
speaks OS-level exceptions for OS-level failures (the router converts
them to typed :class:`~repro.errors.ShardError`\\ s at the boundary).
Re-raising a caught exception (bare ``raise``) is always fine.

**Mapping completeness.**  The HTTP mapper
(:meth:`~repro.serving.http` ``Handler._fail``) routes exception
classes to status codes via ``isinstance`` checks.  When
``repro/serving/http.py`` is analysed, this rule *imports the live
hierarchy* (:mod:`repro.errors`), walks every concrete
:class:`~repro.errors.ReproError` subclass, and diffs it against the
class names mentioned in the mapper's AST: a subclass none of whose
ancestors appears in the mapper has no deliberate status (it would
fall to the 500 fallback) and is flagged; conversely a name the
mapper tests that no longer exists in the hierarchy is a stale
mapping and is flagged too.  Adding an error class and forgetting the
mapper — or renaming one and leaving the old mapping — fails tier-1.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, register_rule

__all__ = ["TypedErrorsRule"]

SCOPE = ("repro/serving/", "repro/core/")

#: The HTTP mapper module (relative path) and the method holding the
#: isinstance dispatch.
MAPPER_MODULE = "repro/serving/http.py"
MAPPER_FUNCTION = "_fail"

#: Builtin exceptions whose *deliberate* raise in request-path code is
#: a finding.  (Catching them is fine — the HTTP layer converts user
#: input with int()/float() and maps the resulting ValueError.)
FLAGGED_BUILTINS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "RuntimeError",
        "NotImplementedError",
        "OSError",
        "IOError",
        "AttributeError",
        "StopIteration",
    }
)

#: Pipe-protocol signals the shard transport raises on purpose: the
#: router's crash detector keys on exactly these OS-level types.
ALLOWED_BUILTINS = frozenset({"EOFError", "BrokenPipeError", "TimeoutError"})


def _exception_name(node: ast.expr | None) -> str | None:
    """The raised class name for ``raise X(...)`` / ``raise X`` shapes."""
    if node is None:  # bare re-raise
        return None
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    return None  # attribute raises (exc.With...) and exotic shapes


def _mapped_names(tree: ast.Module) -> tuple[set, int] | None:
    """Class names the mapper's isinstance checks test, + the def line.

    Returns ``None`` when the mapper function cannot be found (itself
    reported as a finding by the caller).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == MAPPER_FUNCTION:
            names: set = set()
            for call in ast.walk(node):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "isinstance"
                    and len(call.args) == 2
                ):
                    classes = call.args[1]
                    elts = (
                        classes.elts
                        if isinstance(classes, ast.Tuple)
                        else [classes]
                    )
                    for elt in elts:
                        if isinstance(elt, ast.Name):
                            names.add(elt.id)
            return names, node.lineno
    return None


def _hierarchy() -> dict:
    """name -> class for every ReproError subclass (ReproError included).

    Imported live — the AST of ``repro/errors.py`` cannot see dynamic
    subclassing, and the MRO walk below needs real classes anyway.
    """
    from repro.errors import ReproError

    classes = {"ReproError": ReproError}
    stack = [ReproError]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub.__name__ not in classes:
                classes[sub.__name__] = sub
                stack.append(sub)
    return classes


@register_rule
class TypedErrorsRule(Rule):
    name = "typed-errors"
    description = (
        "request-path code raises ReproError subclasses, and every "
        "concrete subclass has an HTTP status mapping in serving/http.py"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_package(*SCOPE):
            yield from self._check_raises(module)
        if module.relpath == MAPPER_MODULE:
            yield from self._check_mapping(module)

    # -- raise discipline --------------------------------------------------------

    def _check_raises(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _exception_name(node.exc)
            if name in FLAGGED_BUILTINS:
                yield self.finding(
                    module,
                    node,
                    f"raise {name} in request-path code — raise a "
                    "ReproError subclass (repro.errors) so the HTTP "
                    "mapper and except-boundaries stay complete",
                )

    # -- mapping completeness ----------------------------------------------------

    def _check_mapping(self, module: ModuleInfo) -> Iterator[Finding]:
        located = _mapped_names(module.tree)
        if located is None:
            yield Finding(
                rule=self.name,
                path=module.relpath,
                line=1,
                message=(
                    f"HTTP error mapper {MAPPER_FUNCTION}() not found — "
                    "the typed-errors completeness check has nothing to diff "
                    "against (rename the mapper and this rule together)"
                ),
            )
            return
        mapped, def_line = located
        classes = _hierarchy()
        for name in sorted(classes):
            cls = classes[name]
            covered = any(
                ancestor.__name__ in mapped for ancestor in cls.__mro__
            )
            if not covered:
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=def_line,
                    message=(
                        f"error class {name} has no HTTP status mapping in "
                        f"{MAPPER_FUNCTION}() (neither it nor any ancestor is "
                        "isinstance-checked) — it would answer 500"
                    ),
                )
        for name in sorted(mapped):
            if name.endswith("Error") and name not in classes and name not in (
                "TimeoutError",
                "KeyError",
                "TypeError",
                "ValueError",
                "IndexError",
                "OSError",
            ):
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=def_line,
                    message=(
                        f"HTTP mapper tests {name}, which is not in the "
                        "ReproError hierarchy — stale mapping (removed or "
                        "renamed error class?)"
                    ),
                )
