"""CLI for the invariant linter: ``python -m repro.analysis [paths...]``.

Exit status is the gate: ``0`` for a clean tree, ``1`` when any
enforced finding or stale baseline entry exists, ``2`` for usage
errors (unknown rule, malformed baseline file).  Typical invocations::

    # The tier-1 gate, human output:
    PYTHONPATH=src python -m repro.analysis src/repro

    # Machine-readable, with the benchmark/example trees advisory:
    PYTHONPATH=src python -m repro.analysis --json \\
        --report-only benchmarks --report-only examples \\
        src/repro benchmarks examples

    # Grandfather the current findings (new-rule rollout):
    PYTHONPATH=src python -m repro.analysis --write-baseline src/repro
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, load_baseline, write_baseline
from repro.analysis.registry import default_rules, rule_names
from repro.analysis.report import render_human, render_json
from repro.analysis.runner import analyze_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro serving tier.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (lint the tree raw)",
    )
    parser.add_argument(
        "--report-only",
        action="append",
        default=[],
        metavar="PREFIX",
        help=(
            "relpath prefix whose findings are advisory, not failing "
            "(repeatable; e.g. --report-only benchmarks)"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="NAME[,NAME...]",
        help=f"run only these rules (available: {', '.join(rule_names())})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current enforced findings",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print suppressed/baselined/report-only findings",
    )
    return parser


def main(argv: list | None = None) -> int:
    args = _build_parser().parse_args(argv)

    try:
        rules = default_rules(
            args.rules.split(",") if args.rules else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE_NAME
    baseline = None
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = analyze_paths(
        args.paths,
        rules=rules,
        baseline=baseline,
        report_only_paths=args.report_only,
    )

    if args.write_baseline:
        write_baseline(baseline_path, report.enforced)
        print(
            f"wrote {len(report.enforced)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.json:
        print(render_json(report))
    else:
        print(render_human(report, verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
