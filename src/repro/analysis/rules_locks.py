"""``lock-blocking`` — no blocking calls while holding a serving-tier lock.

The PR 4 eviction race class: :class:`~repro.serving.registry.\
SessionRegistry` once closed evicted sessions *inside* ``with
self._lock:`` — ``close()`` can block behind an in-flight expansion
and its ``on_evict`` callback re-enters the registry, so one eviction
stalled every tenant's lookup and invited deadlock.  PR 4 (and PR 6
for the snapshot store) fixed the pattern by hand: pop victims under
the lock, act on them after it is released; snapshot under the entry
lock, write the file outside it.

This rule mechanizes that discipline lexically: inside a ``with``
block whose context manager is a lock attribute (``self._lock``,
``entry.lock``, ``self._weights_lock``, ...) or a bounded-lock helper
(``entry.hold(...)``), any call whose target name is a known blocking
operation is flagged:

* pipe I/O — ``recv_bytes`` / ``send_bytes`` / ``poll``
* durability — ``fsync``, :meth:`SnapshotStore.save`,
  ``checkpoint_all``
* lifecycle — ``close`` / ``close_all`` / ``shutdown`` / ``terminate``
  / ``kill`` (session/pool/process teardown blocks on in-flight work)
* thread/process — ``join``, ``sleep``, ``acquire`` (nested lock
  acquisition under a held lock is the textbook deadlock shape)
* pool dispatch — ``run_tasks`` / ``submit`` / ``dispatch_turn``

``Condition.wait`` is deliberately *not* in the list: waiting on a
condition built over the held lock releases it (the
:class:`~repro.serving.scheduler.FairScheduler` dispatch gate is the
correct version of that pattern).  Function *definitions* nested under
a lock are skipped — a closure defined under a lock does not run
there.

Lexical analysis cannot see every alias (a lock bound to a plain
local, a blocking call hidden behind a helper), so this rule is a
tripwire for the common shape, not a proof — the chaos suite still
probes the dynamic schedules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, register_rule

__all__ = ["LockBlockingRule"]

#: Method/function names that block (see module docstring for why).
BLOCKING_CALLS = frozenset(
    {
        "recv_bytes",
        "send_bytes",
        "poll",
        "fsync",
        "save",
        "checkpoint_all",
        "close",
        "close_all",
        "shutdown",
        "terminate",
        "kill",
        "join",
        "sleep",
        "acquire",
        "run_tasks",
        "submit",
        "dispatch_turn",
    }
)

SCOPE = ("repro/serving/",)


def _lock_like(expr: ast.expr) -> bool:
    """Is this with-item expression a lock (or bounded-lock helper)?"""
    if isinstance(expr, ast.Call):
        # ``with entry.hold(deadline, clock):`` — the deadline-bounded
        # acquire of the per-session entry lock.
        func = expr.func
        return isinstance(func, ast.Attribute) and func.attr == "hold"
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return False
    return name == "lock" or name.endswith("_lock")


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "LockBlockingRule", module: ModuleInfo):
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        self._held: list[str] = []  # descriptions of locks currently held

    # -- lock scope tracking -----------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        held = [
            ast.unparse(item.context_expr)
            for item in node.items
            if _lock_like(item.context_expr)
        ]
        self._held.extend(held)
        self.generic_visit(node)
        if held:
            del self._held[-len(held):]

    # A function defined under a lock does not *run* under it; analyse
    # its body as lock-free (it gets its own visit from the top level
    # of whatever scope it is called in — lexically, that is all we
    # can know).
    def _visit_scope(self, node: ast.AST) -> None:
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    # -- the check ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._held:
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in BLOCKING_CALLS:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"blocking call {ast.unparse(func)}() while holding "
                        f"{self._held[-1]} — pop state under the lock, do the "
                        "blocking work after releasing it (the PR 4 eviction "
                        "race class)",
                    )
                )
        self.generic_visit(node)


@register_rule
class LockBlockingRule(Rule):
    name = "lock-blocking"
    description = (
        "no blocking operations (pipe I/O, fsync/save, close, join, sleep, "
        "nested acquire) lexically inside a with-lock block"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPE):
            return
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        yield from visitor.findings
