"""``atomic-writes`` — serving-tier file writes go through tmp+fsync+replace.

The durability promise of the snapshot/sample/marginal stores is "a
crash mid-write leaves the previous file intact, never a torn one
under the real name".  That only holds because every writer follows
one idiom (:meth:`SnapshotStore.save`,
:meth:`TableSampleSet.save`, :func:`save_first_pick`): write to a
temporary sibling, ``flush`` + ``os.fsync`` the data, then publish
with ``os.replace`` (and best-effort fsync the directory).  A direct
``open(path, "w")`` into a persisted location bypasses all of it —
power loss can publish an empty or half-written file under the real
name, and the corrupt-file-skipping loaders then silently drop the
session/sample it held.

Lexical check: in ``repro/serving/``, any write-mode ``open(...)``
(or ``Path.write_text`` / ``Path.write_bytes``) whose *enclosing
function* does not itself call both ``os.fsync`` and ``os.replace``
is flagged.  The enclosing-function heuristic is exactly how the
three shipped helpers are shaped — the tmp-open, the fsync, and the
replace live in one function so the ``except: tmp.unlink()`` cleanup
can see them all; a write-open anywhere else is either a new
persistence path that must adopt the idiom or a genuine one-off that
documents itself with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, register_rule

__all__ = ["AtomicWritesRule"]

SCOPE = ("repro/serving/",)

#: ``open`` mode characters that make a call a *write*.
_WRITE_MODE_CHARS = set("wxa+")


def _is_write_open(node: ast.Call, module: ModuleInfo) -> bool:
    target = module.resolve(node.func)
    if target in ("open", "io.open", "os.fdopen"):
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return bool(_WRITE_MODE_CHARS & set(mode.value))
        return mode is not None and not isinstance(mode, ast.Constant)
    if isinstance(node.func, ast.Attribute) and node.func.attr in (
        "write_text",
        "write_bytes",
    ):
        return True
    return False


def _atomic_functions(tree: ast.Module) -> set:
    """ids of function nodes that call both os.fsync and os.replace."""
    atomic = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        has_fsync = has_replace = False
        for call in ast.walk(node):
            if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
                if call.func.attr == "fsync":
                    has_fsync = True
                elif call.func.attr == "replace":
                    has_replace = True
        if has_fsync and has_replace:
            atomic.add(id(node))
    return atomic


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "AtomicWritesRule", module: ModuleInfo):
        self.rule = rule
        self.module = module
        self.atomic = _atomic_functions(module.tree)
        self.findings: list[Finding] = []
        self._inside_atomic = 0

    def _visit_function(self, node: ast.AST) -> None:
        is_atomic = id(node) in self.atomic
        self._inside_atomic += is_atomic
        self.generic_visit(node)
        self._inside_atomic -= is_atomic

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._inside_atomic and _is_write_open(node, self.module):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "direct file write outside a tmp+fsync+os.replace helper "
                    "— a crash here can publish a torn file (use the "
                    "SnapshotStore.save idiom)",
                )
            )
        self.generic_visit(node)


@register_rule
class AtomicWritesRule(Rule):
    name = "atomic-writes"
    description = (
        "serving-tier file writes happen inside functions that fsync and "
        "os.replace (the snapshot store's atomic-publish idiom)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPE):
            return
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        yield from visitor.findings
