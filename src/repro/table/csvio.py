"""CSV import/export for :class:`~repro.table.Table`.

The loaders perform light type inference (numeric columns become
:class:`~repro.table.column.NumericColumn`) and can be forced with an
explicit :class:`~repro.table.schema.Schema`.  They exist so the
datasets in :mod:`repro.datasets` round-trip to disk and so users can
point the library at their own exports.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence, TextIO

from repro.errors import DatasetError
from repro.table.schema import ColumnKind, ColumnSchema, Schema
from repro.table.table import Table

__all__ = ["read_csv", "write_csv", "table_from_csv_text", "table_to_csv_text"]


def _coerce(cell: str) -> Any:
    """Best-effort conversion of a CSV cell to ``int``/``float``/``str``."""
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def _infer_schema(names: Sequence[str], rows: list[list[Any]]) -> Schema:
    entries = []
    for j, name in enumerate(names):
        numeric = bool(rows) and all(
            isinstance(row[j], (int, float)) and not isinstance(row[j], bool) for row in rows
        )
        entries.append(ColumnSchema(name, ColumnKind.NUMERIC if numeric else ColumnKind.CATEGORICAL))
    return Schema(entries)


def _read(handle: TextIO, schema: Schema | None) -> Table:
    reader = csv.reader(handle)
    try:
        names = next(reader)
    except StopIteration:
        raise DatasetError("CSV input has no header row") from None
    rows = [[_coerce(c) for c in row] for row in reader if row]
    for row in rows:
        if len(row) != len(names):
            raise DatasetError(
                f"CSV row has {len(row)} fields, header has {len(names)}"
            )
    if schema is None:
        schema = _infer_schema(names, rows)
    elif schema.names != tuple(names):
        raise DatasetError(
            f"CSV header {tuple(names)} does not match schema {schema.names}"
        )
    # Categorical columns must hold their values as strings consistently:
    # a column forced to categorical keeps the coerced values as-is.
    return Table.from_rows(schema, rows)


def read_csv(path: str | Path, schema: Schema | None = None) -> Table:
    """Load a CSV file (with header) into a :class:`Table`.

    With ``schema=None``, column kinds are inferred: a column whose
    every cell parses as a number becomes numeric.
    """
    with open(path, newline="") as handle:
        return _read(handle, schema)


def table_from_csv_text(text: str, schema: Schema | None = None) -> Table:
    """Parse CSV from an in-memory string (header required)."""
    return _read(io.StringIO(text), schema)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table (with header) to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        writer.writerows(table.rows())


def table_to_csv_text(table: Table) -> str:
    """Serialise a table to a CSV string (header included)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(table.column_names)
    writer.writerows(table.rows())
    return buf.getvalue()
