"""Column storage: dictionary-encoded categorical and numeric columns.

Categorical columns store an ``int32`` code array plus a value
dictionary, which is the representation every mining algorithm in
:mod:`repro.core` operates on — rule coverage is a vectorised equality
test on codes.  Numeric columns store a ``float64`` array and are used
as measure columns (Section 6.3) or as raw input to bucketization
(Section 6.2).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import EncodingError, SchemaError

__all__ = ["CategoricalColumn", "NumericColumn"]


class CategoricalColumn:
    """A dictionary-encoded categorical column.

    Parameters
    ----------
    codes:
        Integer array of value codes, each in ``[0, len(values))``.
    values:
        The dictionary: ``values[code]`` is the decoded value.  Values
        may be any hashable Python objects (strings, ints, intervals).

    The code array is stored read-only; columns are immutable.
    """

    __slots__ = ("_codes", "_values", "_value_to_code")

    def __init__(self, codes: np.ndarray | Sequence[int], values: Sequence[Any]):
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 1:
            raise SchemaError("categorical codes must be a 1-d array")
        values = tuple(values)
        value_to_code: dict[Any, int] = {}
        for code, value in enumerate(values):
            if value in value_to_code:
                raise SchemaError(f"duplicate dictionary value: {value!r}")
            value_to_code[value] = code
        if codes.size and (codes.min() < 0 or codes.max() >= len(values)):
            raise SchemaError("code out of range for dictionary")
        codes.setflags(write=False)
        self._codes = codes
        self._values = values
        self._value_to_code = value_to_code

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_values(cls, raw: Iterable[Any]) -> "CategoricalColumn":
        """Encode raw values, building the dictionary in first-seen order."""
        values: list[Any] = []
        value_to_code: dict[Any, int] = {}
        codes: list[int] = []
        for v in raw:
            code = value_to_code.get(v)
            if code is None:
                code = len(values)
                value_to_code[v] = code
                values.append(v)
            codes.append(code)
        return cls(np.asarray(codes, dtype=np.int32), values)

    def extend_with_values(self, raw: Iterable[Any]) -> "CategoricalColumn":
        """Return a column with ``raw`` appended, dictionary prefix kept.

        Existing values keep their codes and unseen values get fresh
        codes in first-seen order — exactly the assignment
        :meth:`from_values` would produce had the whole stream been
        encoded at once, so an append is bit-identical (codes *and*
        dictionary) to a cold re-encode of old+new.  This is the
        invariant the versioned catalog's incremental maintenance
        (export grow, first-pick delta bincounts) rests on.
        """
        values = list(self._values)
        value_to_code = dict(self._value_to_code)
        new_codes: list[int] = []
        for v in raw:
            try:
                code = value_to_code.get(v)
            except TypeError:
                raise EncodingError(f"unhashable value: {v!r}") from None
            if code is None:
                code = len(values)
                value_to_code[v] = code
                values.append(v)
            new_codes.append(code)
        codes = np.concatenate(
            [self._codes, np.asarray(new_codes, dtype=np.int32)]
        )
        return CategoricalColumn(codes, values)

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return int(self._codes.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalColumn):
            return NotImplemented
        return self._values == other._values and np.array_equal(self._codes, other._codes)

    def __repr__(self) -> str:
        return f"CategoricalColumn(n={len(self)}, distinct={self.distinct_count})"

    # -- accessors ---------------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The read-only ``int32`` code array."""
        return self._codes

    @property
    def values(self) -> tuple[Any, ...]:
        """The dictionary, indexed by code."""
        return self._values

    @property
    def distinct_count(self) -> int:
        """Number of dictionary entries (``|c|`` in the paper)."""
        return len(self._values)

    @property
    def nbytes(self) -> int:
        """Bytes held by the code array (shared-memory sizing helper)."""
        return int(self._codes.nbytes)

    def decode(self, code: int) -> Any:
        """Return the raw value for ``code``."""
        return self._values[code]

    def encode(self, value: Any) -> int:
        """Return the code for ``value``.

        Raises :class:`EncodingError` if the value is not in the
        dictionary.
        """
        try:
            return self._value_to_code[value]
        except KeyError:
            raise EncodingError(f"value not in column dictionary: {value!r}") from None
        except TypeError:
            raise EncodingError(f"unhashable value: {value!r}") from None

    def try_encode(self, value: Any) -> int | None:
        """Return the code for ``value`` or ``None`` if absent."""
        try:
            return self._value_to_code.get(value)
        except TypeError:
            return None

    def __getitem__(self, i: int) -> Any:
        return self._values[self._codes[i]]

    def to_list(self) -> list[Any]:
        """Decode the whole column to a Python list."""
        return [self._values[c] for c in self._codes]

    # -- vectorised operations --------------------------------------------------

    def mask_eq(self, code: int) -> np.ndarray:
        """Boolean mask of rows whose code equals ``code``."""
        return self._codes == code

    def take(self, indexes: np.ndarray) -> "CategoricalColumn":
        """Return a new column with rows gathered by ``indexes``.

        The dictionary is shared (not re-compacted), so codes remain
        comparable across the parent and the selection — an invariant
        the sampling layer relies on.
        """
        return CategoricalColumn(self._codes[indexes], self._values)

    def counts(self) -> np.ndarray:
        """Occurrence count of each code, aligned with :attr:`values`."""
        return np.bincount(self._codes, minlength=self.distinct_count)

    def frequencies(self) -> np.ndarray:
        """Relative frequency of each code (empty column → zeros)."""
        n = len(self)
        if n == 0:
            return np.zeros(self.distinct_count)
        return self.counts() / n

    def remap(self, mapping: Mapping[Any, Any]) -> "CategoricalColumn":
        """Return a column with dictionary values replaced via ``mapping``.

        Values absent from ``mapping`` are kept as-is.  Codes are
        unchanged, so this is O(distinct) not O(rows).
        """
        new_values = [mapping.get(v, v) for v in self._values]
        return CategoricalColumn(self._codes.copy(), new_values)


class NumericColumn:
    """A ``float64`` numeric column (measure or pre-bucketization)."""

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray | Sequence[float]):
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 1:
            raise SchemaError("numeric data must be a 1-d array")
        arr.setflags(write=False)
        self._data = arr

    def __len__(self) -> int:
        return int(self._data.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NumericColumn):
            return NotImplemented
        return np.array_equal(self._data, other._data)

    def __repr__(self) -> str:
        return f"NumericColumn(n={len(self)})"

    def __getitem__(self, i: int) -> float:
        return float(self._data[i])

    @property
    def data(self) -> np.ndarray:
        """The read-only ``float64`` value array."""
        return self._data

    def to_list(self) -> list[float]:
        return self._data.tolist()

    def take(self, indexes: np.ndarray) -> "NumericColumn":
        """Return a new column with rows gathered by ``indexes``."""
        return NumericColumn(self._data[indexes])

    def extend_with_values(self, raw: Iterable[float]) -> "NumericColumn":
        """Return a column with ``raw`` appended (one ``float64`` copy)."""
        tail = np.asarray(list(raw), dtype=np.float64)
        return NumericColumn(np.concatenate([self._data, tail]))

    def mask_range(self, lo: float, hi: float, *, closed_right: bool = False) -> np.ndarray:
        """Boolean mask of rows with value in ``[lo, hi)`` (or ``[lo, hi]``)."""
        if closed_right:
            return (self._data >= lo) & (self._data <= hi)
        return (self._data >= lo) & (self._data < hi)

    def mask_eq(self, value: float) -> np.ndarray:
        """Boolean mask of rows exactly equal to ``value``."""
        return self._data == value
