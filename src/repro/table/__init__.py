"""Columnar table substrate (the paper's denormalised relation ``D``)."""

from repro.table.bucketize import Interval, bucketize, bucketize_column
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.groupby import GroupedRow, group_by
from repro.table.predicates import ColumnRef, Predicate, col
from repro.table.csvio import read_csv, table_from_csv_text, table_to_csv_text, write_csv
from repro.table.schema import ColumnKind, ColumnSchema, Schema
from repro.table.stats import ColumnStats, TableStats, compute_stats
from repro.table.table import Table

__all__ = [
    "CategoricalColumn",
    "ColumnKind",
    "ColumnSchema",
    "ColumnRef",
    "ColumnStats",
    "GroupedRow",
    "Interval",
    "NumericColumn",
    "Predicate",
    "Schema",
    "Table",
    "TableStats",
    "bucketize",
    "bucketize_column",
    "col",
    "compute_stats",
    "group_by",
    "read_csv",
    "table_from_csv_text",
    "table_to_csv_text",
    "write_csv",
]
