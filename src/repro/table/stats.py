"""Column statistics used by parameter guidance and the weight family.

The analyses in Sections 4.2 and 6.1 of the paper need, per column:
the number of distinct values ``|c|``, the frequency ``f_c`` of the most
common value, and value-frequency tables.  These helpers compute them
once per table so the estimators do not rescan columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = ["ColumnStats", "TableStats", "compute_stats"]


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one categorical column."""

    name: str
    distinct: int
    top_value: Any
    top_count: int
    top_fraction: float

    @property
    def entropy_bits(self) -> float:
        """``ceil(log2 |c|)`` — the Bits weight contribution of the column."""
        return float(np.ceil(np.log2(max(self.distinct, 1)))) if self.distinct > 1 else 0.0


@dataclass(frozen=True)
class TableStats:
    """Per-column statistics for every categorical column of a table."""

    n_rows: int
    columns: tuple[ColumnStats, ...]

    def column(self, name: str) -> ColumnStats:
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(name)

    @property
    def min_distinct(self) -> int:
        """``|c|`` of the categorical column with fewest distinct values.

        Section 4.2 uses this to lower-bound the score of the best rule
        (the most frequent value of this column occurs ≥ |T|/|c| times).
        """
        return min((c.distinct for c in self.columns), default=0)

    @property
    def max_top_fraction(self) -> float:
        """Frequency ``x`` of the most common value anywhere in the table.

        Appears in the Section 3.5 runtime analysis: candidate counts
        shrink geometrically as ``x^i``.
        """
        return max((c.top_fraction for c in self.columns), default=0.0)


def compute_stats(table: Table) -> TableStats:
    """Compute :class:`TableStats` over the categorical columns of ``table``."""
    stats: list[ColumnStats] = []
    for idx in table.schema.categorical_indexes:
        col = table.column(idx)
        assert isinstance(col, CategoricalColumn)
        name = table.schema[idx].name
        counts = col.counts()
        if counts.size == 0:
            stats.append(ColumnStats(name, 0, None, 0, 0.0))
            continue
        top = int(np.argmax(counts))
        top_count = int(counts[top])
        fraction = top_count / table.n_rows if table.n_rows else 0.0
        stats.append(
            ColumnStats(
                name=name,
                distinct=col.distinct_count,
                top_value=col.decode(top),
                top_count=top_count,
                top_fraction=fraction,
            )
        )
    return TableStats(n_rows=table.n_rows, columns=tuple(stats))
