"""A small predicate DSL for filtering tables (the paper's entry query).

Example 1 starts from "tuples where Sales were higher than some
threshold"; this module provides the WHERE-clause substrate that
produces the table smart drill-down then explores::

    from repro.table.predicates import col

    hot = table.filter((col("Sales") > 1000).mask(table))

Predicates compose with ``&``, ``|`` and ``~`` and evaluate to boolean
masks against any table with the referenced columns.  Comparisons on
categorical columns use dictionary codes (only ``==``/``!=``/``isin``);
numeric columns support the full ordering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

import numpy as np

from repro.errors import SchemaError
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = ["Predicate", "col", "ColumnRef"]


class Predicate(ABC):
    """A boolean condition evaluable against a table."""

    @abstractmethod
    def mask(self, table: Table) -> np.ndarray:
        """Return the boolean row mask of this predicate over ``table``."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return _And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return _Or(self, other)

    def __invert__(self) -> "Predicate":
        return _Not(self)

    def apply(self, table: Table) -> Table:
        """Return the rows of ``table`` satisfying this predicate."""
        return table.filter(self.mask(table))


class _And(Predicate):
    def __init__(self, left: Predicate, right: Predicate):
        self._left, self._right = left, right

    def mask(self, table: Table) -> np.ndarray:
        return self._left.mask(table) & self._right.mask(table)

    def __repr__(self) -> str:
        return f"({self._left!r} & {self._right!r})"


class _Or(Predicate):
    def __init__(self, left: Predicate, right: Predicate):
        self._left, self._right = left, right

    def mask(self, table: Table) -> np.ndarray:
        return self._left.mask(table) | self._right.mask(table)

    def __repr__(self) -> str:
        return f"({self._left!r} | {self._right!r})"


class _Not(Predicate):
    def __init__(self, inner: Predicate):
        self._inner = inner

    def mask(self, table: Table) -> np.ndarray:
        return ~self._inner.mask(table)

    def __repr__(self) -> str:
        return f"~{self._inner!r}"


class _Comparison(Predicate):
    """A single column-vs-constant comparison."""

    _NUMERIC_OPS = {"<", "<=", ">", ">=", "==", "!="}

    def __init__(self, column: str, op: str, value: Any):
        self._column = column
        self._op = op
        self._value = value

    def mask(self, table: Table) -> np.ndarray:
        column = table.column(self._column)
        if isinstance(column, CategoricalColumn):
            return self._categorical_mask(column)
        assert isinstance(column, NumericColumn)
        return self._numeric_mask(column)

    def _categorical_mask(self, column: CategoricalColumn) -> np.ndarray:
        if self._op == "==":
            code = column.try_encode(self._value)
            if code is None:
                return np.zeros(len(column), dtype=bool)
            return column.mask_eq(code)
        if self._op == "!=":
            code = column.try_encode(self._value)
            if code is None:
                return np.ones(len(column), dtype=bool)
            return ~column.mask_eq(code)
        if self._op == "isin":
            mask = np.zeros(len(column), dtype=bool)
            for value in self._value:
                code = column.try_encode(value)
                if code is not None:
                    mask |= column.mask_eq(code)
            return mask
        raise SchemaError(
            f"operator {self._op!r} is not defined for categorical column {self._column!r}"
        )

    def _numeric_mask(self, column: NumericColumn) -> np.ndarray:
        data = column.data
        if self._op == "isin":
            mask = np.zeros(len(column), dtype=bool)
            for value in self._value:
                mask |= data == float(value)
            return mask
        value = float(self._value)
        ops = {
            "<": data < value,
            "<=": data <= value,
            ">": data > value,
            ">=": data >= value,
            "==": data == value,
            "!=": data != value,
        }
        return ops[self._op]

    def __repr__(self) -> str:
        return f"col({self._column!r}) {self._op} {self._value!r}"


class ColumnRef:
    """A named column awaiting a comparison; produced by :func:`col`."""

    def __init__(self, name: str):
        self._name = name

    def __lt__(self, value: Any) -> Predicate:
        return _Comparison(self._name, "<", value)

    def __le__(self, value: Any) -> Predicate:
        return _Comparison(self._name, "<=", value)

    def __gt__(self, value: Any) -> Predicate:
        return _Comparison(self._name, ">", value)

    def __ge__(self, value: Any) -> Predicate:
        return _Comparison(self._name, ">=", value)

    def __eq__(self, value: Any) -> Predicate:  # type: ignore[override]
        return _Comparison(self._name, "==", value)

    def __ne__(self, value: Any) -> Predicate:  # type: ignore[override]
        return _Comparison(self._name, "!=", value)

    def isin(self, values: Iterable[Any]) -> Predicate:
        """Membership test against a collection of values."""
        return _Comparison(self._name, "isin", tuple(values))

    def __repr__(self) -> str:
        return f"col({self._name!r})"

    __hash__ = None  # type: ignore[assignment]  # == builds predicates, not booleans


def col(name: str) -> ColumnRef:
    """Reference a column by name for use in predicates."""
    return ColumnRef(name)
