"""Group-by aggregation over the columnar table.

The classic OLAP substrate smart drill-down generalises: traditional
drill-down is a single-column group-by ordered by count (§5.1).  The
implementation composes multi-column group keys from dictionary codes
and aggregates with ``np.bincount`` — no Python-level row loops.

Supported aggregates: ``count``, ``sum``, ``mean``, ``min``, ``max``
over a numeric column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table

__all__ = ["GroupedRow", "group_by"]


@dataclass(frozen=True)
class GroupedRow:
    """One output group: its key values plus the aggregate."""

    key: tuple[Any, ...]
    count: int
    value: float


def _group_codes(table: Table, names: Sequence[str]) -> tuple[np.ndarray, list[CategoricalColumn]]:
    """Compose a single int64 group id per row from the key columns."""
    columns: list[CategoricalColumn] = []
    for name in names:
        column = table.column(name)
        if not isinstance(column, CategoricalColumn):
            raise SchemaError(f"group-by key {name!r} must be categorical")
        columns.append(column)
    ids = np.zeros(table.n_rows, dtype=np.int64)
    for column in columns:
        ids = ids * column.distinct_count + column.codes
    return ids, columns


def _decode_key(group_id: int, columns: list[CategoricalColumn]) -> tuple[Any, ...]:
    parts: list[Any] = []
    for column in reversed(columns):
        group_id, code = divmod(group_id, column.distinct_count)
        parts.append(column.decode(int(code)))
    return tuple(reversed(parts))


def group_by(
    table: Table,
    keys: str | Sequence[str],
    *,
    aggregate: str = "count",
    measure: str | None = None,
    sort: str = "value",
    descending: bool = True,
    limit: int | None = None,
) -> list[GroupedRow]:
    """Aggregate ``table`` grouped by one or more categorical columns.

    Parameters
    ----------
    keys:
        Group-key column name(s).
    aggregate:
        ``"count"``, or ``"sum"`` / ``"mean"`` / ``"min"`` / ``"max"``
        over the numeric ``measure`` column.
    sort:
        ``"value"`` (by the aggregate) or ``"key"`` (lexicographic).
    limit:
        Optionally truncate the output after sorting.
    """
    names = [keys] if isinstance(keys, str) else list(keys)
    if not names:
        raise SchemaError("group_by needs at least one key column")
    if aggregate != "count" and measure is None:
        raise SchemaError(f"aggregate {aggregate!r} requires a measure column")
    ids, columns = _group_codes(table, names)
    if table.n_rows == 0:
        return []
    unique_ids, inverse, counts = np.unique(ids, return_inverse=True, return_counts=True)

    if aggregate == "count":
        values = counts.astype(np.float64)
    else:
        measure_col = table.column(measure)  # type: ignore[arg-type]
        if not isinstance(measure_col, NumericColumn):
            raise SchemaError(f"measure column {measure!r} must be numeric")
        data = measure_col.data
        if aggregate == "sum":
            values = np.bincount(inverse, weights=data, minlength=unique_ids.size)
        elif aggregate == "mean":
            sums = np.bincount(inverse, weights=data, minlength=unique_ids.size)
            values = sums / counts
        elif aggregate in ("min", "max"):
            fill = np.inf if aggregate == "min" else -np.inf
            values = np.full(unique_ids.size, fill)
            reducer = np.minimum if aggregate == "min" else np.maximum
            reducer.at(values, inverse, data)
        else:
            raise SchemaError(f"unknown aggregate {aggregate!r}")

    rows = [
        GroupedRow(key=_decode_key(int(gid), columns), count=int(c), value=float(v))
        for gid, c, v in zip(unique_ids, counts, values)
    ]
    if sort == "value":
        rows.sort(key=lambda r: (-r.value if descending else r.value, r.key))
    elif sort == "key":
        rows.sort(key=lambda r: tuple(str(k) for k in r.key), reverse=descending)
    else:
        raise SchemaError(f"unknown sort {sort!r}")
    return rows[:limit] if limit is not None else rows
