"""Schema objects describing the columns of a :class:`~repro.table.Table`.

The paper operates on a single denormalised relational table ``D`` with
a set of columns ``C`` (Section 2.1).  We model each column as either

* **categorical** — the domain mined by smart drill-down.  Values are
  dictionary-encoded; the rule mining algorithms operate on the integer
  codes.
* **numeric** — measure columns (for ``Sum`` aggregation, Section 6.3)
  or raw columns awaiting bucketization (Section 6.2).

A :class:`Schema` is an ordered, immutable collection of
:class:`ColumnSchema` entries with O(1) name lookup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

__all__ = ["ColumnKind", "ColumnSchema", "Schema"]


class ColumnKind(enum.Enum):
    """The storage/semantic kind of a table column."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ColumnSchema:
    """Description of a single column.

    Parameters
    ----------
    name:
        Column name; must be unique within a schema.
    kind:
        :class:`ColumnKind` of the column.
    """

    name: str
    kind: ColumnKind = ColumnKind.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be a non-empty string")

    @property
    def is_categorical(self) -> bool:
        return self.kind is ColumnKind.CATEGORICAL

    @property
    def is_numeric(self) -> bool:
        return self.kind is ColumnKind.NUMERIC


class Schema:
    """Ordered collection of :class:`ColumnSchema` with name lookup.

    Instances are immutable; deriving a modified schema returns a new
    object (see :meth:`without`, :meth:`replace`).
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[ColumnSchema]):
        cols = tuple(columns)
        index: dict[str, int] = {}
        for i, col in enumerate(cols):
            if not isinstance(col, ColumnSchema):
                raise SchemaError(f"expected ColumnSchema, got {type(col).__name__}")
            if col.name in index:
                raise SchemaError(f"duplicate column name: {col.name!r}")
            index[col.name] = i
        self._columns = cols
        self._index = index

    # -- construction helpers ------------------------------------------------

    @classmethod
    def categorical(cls, names: Sequence[str]) -> "Schema":
        """Build a schema where every named column is categorical."""
        return cls(ColumnSchema(n, ColumnKind.CATEGORICAL) for n in names)

    @classmethod
    def of(cls, **kinds: str) -> "Schema":
        """Build a schema from ``name=kind`` keyword pairs.

        >>> Schema.of(store="categorical", sales="numeric").names
        ('store', 'sales')
        """
        return cls(ColumnSchema(n, ColumnKind(k)) for n, k in kinds.items())

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[ColumnSchema]:
        return iter(self._columns)

    def __getitem__(self, key: int | str) -> ColumnSchema:
        if isinstance(key, str):
            return self._columns[self.index_of(key)]
        return self._columns[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        parts = ", ".join(f"{c.name}:{c.kind.value[:3]}" for c in self._columns)
        return f"Schema({parts})"

    # -- lookup ----------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Column names, in schema order."""
        return tuple(c.name for c in self._columns)

    def index_of(self, name: str) -> int:
        """Return the positional index of column ``name``.

        Raises :class:`SchemaError` for unknown names.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column: {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    @property
    def categorical_indexes(self) -> tuple[int, ...]:
        """Indexes of all categorical columns, in schema order."""
        return tuple(i for i, c in enumerate(self._columns) if c.is_categorical)

    @property
    def numeric_indexes(self) -> tuple[int, ...]:
        """Indexes of all numeric columns, in schema order."""
        return tuple(i for i, c in enumerate(self._columns) if c.is_numeric)

    # -- derivation -------------------------------------------------------------

    def without(self, *names: str) -> "Schema":
        """Return a schema with the named columns removed."""
        drop = {self.index_of(n) for n in names}
        return Schema(c for i, c in enumerate(self._columns) if i not in drop)

    def replace(self, name: str, new: ColumnSchema) -> "Schema":
        """Return a schema with column ``name`` replaced by ``new``."""
        idx = self.index_of(name)
        cols = list(self._columns)
        cols[idx] = new
        return Schema(cols)

    def restrict(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only ``names``, in the given order."""
        return Schema(self[n] for n in names)
