"""The in-memory columnar :class:`Table` — the paper's relation ``D``.

Tables are immutable: every transformation (filter, take, projection)
returns a new ``Table``.  Row selections share column dictionaries with
their parent so that integer codes remain comparable across a table and
any sample of it, which the mining and sampling layers exploit.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.schema import ColumnKind, ColumnSchema, Schema

__all__ = ["Table"]

Column = CategoricalColumn | NumericColumn


class Table:
    """An immutable columnar table.

    Parameters
    ----------
    schema:
        The table :class:`~repro.table.schema.Schema`.
    columns:
        One column object per schema entry, kind-matched and all of the
        same length.
    """

    # __weakref__ lets the parallel counting layer key shared-memory
    # exports to a table's lifetime (repro.core.parallel) without
    # pinning the table in memory.
    __slots__ = ("_schema", "_columns", "_n_rows", "__weakref__")

    def __init__(self, schema: Schema, columns: Sequence[Column]):
        columns = tuple(columns)
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} were provided"
            )
        n_rows: int | None = None
        for col_schema, col in zip(schema, columns):
            if col_schema.is_categorical and not isinstance(col, CategoricalColumn):
                raise SchemaError(f"column {col_schema.name!r} must be categorical")
            if col_schema.is_numeric and not isinstance(col, NumericColumn):
                raise SchemaError(f"column {col_schema.name!r} must be numeric")
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise SchemaError(
                    f"column {col_schema.name!r} has {len(col)} rows, expected {n_rows}"
                )
        self._schema = schema
        self._columns = columns
        self._n_rows = n_rows or 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema | Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table by encoding an iterable of row tuples.

        ``schema`` may be a full :class:`Schema` or a plain sequence of
        column names, in which case every column is categorical.
        """
        if not isinstance(schema, Schema):
            schema = Schema.categorical(list(schema))
        buffers: list[list[Any]] = [[] for _ in schema]
        width = len(schema)
        for row in rows:
            if len(row) != width:
                raise SchemaError(f"row has {len(row)} fields, expected {width}")
            for buf, value in zip(buffers, row):
                buf.append(value)
        columns: list[Column] = []
        for col_schema, buf in zip(schema, buffers):
            if col_schema.is_categorical:
                columns.append(CategoricalColumn.from_values(buf))
            else:
                columns.append(NumericColumn(np.asarray(buf, dtype=np.float64)))
        return cls(schema, columns)

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any]], schema: Schema | None = None) -> "Table":
        """Build a table from ``{column name: values}``.

        Without an explicit schema, columns whose values are all
        ``int``/``float`` (and not ``bool``) become numeric; everything
        else becomes categorical.
        """
        if schema is None:
            entries = []
            for name, values in data.items():
                numeric = len(values) > 0 and all(
                    isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
                )
                kind = ColumnKind.NUMERIC if numeric else ColumnKind.CATEGORICAL
                entries.append(ColumnSchema(name, kind))
            schema = Schema(entries)
        columns: list[Column] = []
        for col_schema in schema:
            values = data[col_schema.name]
            if col_schema.is_categorical:
                columns.append(CategoricalColumn.from_values(values))
            else:
                columns.append(NumericColumn(np.asarray(values, dtype=np.float64)))
        return cls(schema, columns)

    # -- basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self._schema == other._schema
            and len(self) == len(other)
            and self.to_rows() == other.to_rows()
        )

    def __repr__(self) -> str:
        return f"Table(rows={self._n_rows}, schema={self._schema!r})"

    # -- accessors -------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def column(self, key: int | str) -> Column:
        """Return the column object for a name or positional index."""
        if isinstance(key, str):
            key = self._schema.index_of(key)
        return self._columns[key]

    def categorical(self, key: int | str) -> CategoricalColumn:
        """Return a categorical column, raising on kind mismatch."""
        col = self.column(key)
        if not isinstance(col, CategoricalColumn):
            raise SchemaError(f"column {key!r} is not categorical")
        return col

    def numeric(self, key: int | str) -> NumericColumn:
        """Return a numeric column, raising on kind mismatch."""
        col = self.column(key)
        if not isinstance(col, NumericColumn):
            raise SchemaError(f"column {key!r} is not numeric")
        return col

    def row(self, i: int) -> tuple[Any, ...]:
        """Return row ``i`` as a decoded tuple."""
        if not -self._n_rows <= i < self._n_rows:
            raise IndexError(f"row index {i} out of range for {self._n_rows} rows")
        return tuple(col[i if i >= 0 else self._n_rows + i] for col in self._columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate decoded row tuples."""
        for i in range(self._n_rows):
            yield self.row(i)

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialise all decoded rows."""
        return list(self.rows())

    def to_dict(self) -> dict[str, list[Any]]:
        """Return ``{column name: decoded values}``."""
        return {name: col.to_list() for name, col in zip(self.column_names, self._columns)}

    # -- transformations -----------------------------------------------------------

    def take(self, indexes: np.ndarray | Sequence[int]) -> "Table":
        """Return a table of the rows at ``indexes`` (dictionaries shared)."""
        indexes = np.asarray(indexes, dtype=np.int64)
        return Table(self._schema, [col.take(indexes) for col in self._columns])

    def filter(self, mask: np.ndarray) -> "Table":
        """Return the rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._n_rows,):
            raise SchemaError("filter mask must be a boolean array of length n_rows")
        return self.take(np.nonzero(mask)[0])

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows), dtype=np.int64))

    def select(self, names: Sequence[str]) -> "Table":
        """Return a table with only the named columns, in the given order."""
        idx = [self._schema.index_of(n) for n in names]
        return Table(self._schema.restrict(names), [self._columns[i] for i in idx])

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed via ``mapping``."""
        entries = [
            ColumnSchema(mapping.get(c.name, c.name), c.kind) for c in self._schema
        ]
        return Table(Schema(entries), self._columns)

    def with_column(self, schema: ColumnSchema, column: Column) -> "Table":
        """Return a table with an extra column appended."""
        return Table(Schema(list(self._schema) + [schema]), list(self._columns) + [column])

    def replace_column(self, name: str, schema: ColumnSchema, column: Column) -> "Table":
        """Return a table with column ``name`` swapped for ``column``."""
        idx = self._schema.index_of(name)
        columns = list(self._columns)
        columns[idx] = column
        return Table(self._schema.replace(name, schema), columns)

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> "Table":
        """Return a table with ``rows`` appended (a new table version).

        The dictionary-prefix invariant: every existing categorical
        code keeps its meaning, unseen values extend the dictionaries
        in first-seen order, and numeric tails are one ``float64``
        copy — so the result is bit-identical (schema, dictionaries,
        code arrays) to :meth:`from_rows` over old rows + new rows,
        while costing O(appended) encoding work instead of O(total).
        The parent table is untouched; sessions pinned to it keep
        mining exactly the rows they started with.
        """
        width = len(self._schema)
        buffers: list[list[Any]] = [[] for _ in self._schema]
        for row in rows:
            if len(row) != width:
                raise SchemaError(f"row has {len(row)} fields, expected {width}")
            for buf, value in zip(buffers, row):
                buf.append(value)
        columns = [
            col.extend_with_values(buf) for col, buf in zip(self._columns, buffers)
        ]
        return Table(self._schema, columns)

    def concat(self, other: "Table") -> "Table":
        """Stack two tables with equal schemas.

        Dictionaries are re-encoded so the result is self-consistent
        even when the inputs used different code assignments.
        """
        if self._schema != other._schema:
            raise SchemaError("cannot concat tables with different schemas")
        columns: list[Column] = []
        for col_schema, a, b in zip(self._schema, self._columns, other._columns):
            if col_schema.is_categorical:
                assert isinstance(a, CategoricalColumn) and isinstance(b, CategoricalColumn)
                columns.append(CategoricalColumn.from_values(a.to_list() + b.to_list()))
            else:
                assert isinstance(a, NumericColumn) and isinstance(b, NumericColumn)
                columns.append(NumericColumn(np.concatenate([a.data, b.data])))
        return Table(self._schema, columns)

    def categorical_code_arrays(self) -> tuple[np.ndarray, ...]:
        """Code arrays of every categorical column, in schema position order.

        The arrays are the columns' own read-only buffers (zero-copy) —
        this is the export surface the shared-memory counting backend
        (:mod:`repro.core.parallel`) places into its immutable region,
        and it is ordered identically to
        ``schema.categorical_indexes``, which the mining engines index
        by categorical *position*.
        """
        return tuple(
            self.categorical(idx).codes for idx in self._schema.categorical_indexes
        )

    # -- statistics ---------------------------------------------------------------

    def distinct_counts(self) -> dict[str, int]:
        """Dictionary size ``|c|`` per categorical column."""
        return {
            name: col.distinct_count
            for name, col in zip(self.column_names, self._columns)
            if isinstance(col, CategoricalColumn)
        }
