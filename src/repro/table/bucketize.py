"""Numeric bucketization (paper Section 6.2).

Smart drill-down assumes categorical columns; numeric columns are
bucketized beforehand ("age is divided into buckets 18-24, 25-34 and so
on").  This module converts a :class:`NumericColumn` into a categorical
column whose dictionary values are :class:`Interval` objects, using
equi-width, equi-depth (quantile), or explicit edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DatasetError, SchemaError
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.schema import ColumnKind, ColumnSchema
from repro.table.table import Table

__all__ = ["Interval", "equal_width_edges", "equal_depth_edges", "bucketize_column", "bucketize"]


@dataclass(frozen=True)
class Interval:
    """A half-open numeric interval ``[lo, hi)``.

    The final bucket of a bucketization is closed on the right so the
    column maximum is always covered.
    """

    lo: float
    hi: float
    closed_right: bool = False

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise DatasetError(f"empty interval: [{self.lo}, {self.hi})")

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, float)):
            return False
        if self.closed_right:
            return self.lo <= value <= self.hi
        return self.lo <= value < self.hi

    def __str__(self) -> str:
        bracket = "]" if self.closed_right else ")"
        return f"[{_fmt(self.lo)}, {_fmt(self.hi)}{bracket}"


def _fmt(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def equal_width_edges(data: np.ndarray, n_buckets: int) -> np.ndarray:
    """Edges of ``n_buckets`` equal-width buckets spanning the data range."""
    if n_buckets < 1:
        raise DatasetError("n_buckets must be >= 1")
    if data.size == 0:
        raise DatasetError("cannot bucketize an empty column")
    lo, hi = float(data.min()), float(data.max())
    if lo == hi:
        hi = lo + 1.0
    return np.linspace(lo, hi, n_buckets + 1)


def equal_depth_edges(data: np.ndarray, n_buckets: int) -> np.ndarray:
    """Edges of ``n_buckets`` equi-depth (quantile) buckets.

    Duplicate quantiles (heavy ties) are collapsed, so the result may
    have fewer than ``n_buckets`` buckets.
    """
    if n_buckets < 1:
        raise DatasetError("n_buckets must be >= 1")
    if data.size == 0:
        raise DatasetError("cannot bucketize an empty column")
    qs = np.linspace(0.0, 1.0, n_buckets + 1)
    edges = np.unique(np.quantile(data, qs))
    if edges.size == 1:
        edges = np.array([edges[0], edges[0] + 1.0])
    return edges


def bucketize_column(
    column: NumericColumn,
    *,
    n_buckets: int = 10,
    method: str = "width",
    edges: Sequence[float] | None = None,
) -> CategoricalColumn:
    """Convert a numeric column to a categorical column of intervals.

    Parameters
    ----------
    n_buckets:
        Target bucket count (ignored when ``edges`` is given).
    method:
        ``"width"`` for equal-width, ``"depth"`` for equi-depth.
    edges:
        Explicit, strictly increasing bucket edges.
    """
    data = column.data
    if edges is not None:
        edge_arr = np.asarray(edges, dtype=np.float64)
        if edge_arr.size < 2 or np.any(np.diff(edge_arr) <= 0):
            raise DatasetError("edges must be strictly increasing with >= 2 entries")
        if data.size and (data.min() < edge_arr[0] or data.max() > edge_arr[-1]):
            raise DatasetError("explicit edges do not cover the data range")
    elif method == "width":
        edge_arr = equal_width_edges(data, n_buckets)
    elif method == "depth":
        edge_arr = equal_depth_edges(data, n_buckets)
    else:
        raise DatasetError(f"unknown bucketization method: {method!r}")

    intervals = [
        Interval(float(edge_arr[i]), float(edge_arr[i + 1]), closed_right=(i == edge_arr.size - 2))
        for i in range(edge_arr.size - 1)
    ]
    # np.searchsorted with side='right' maps x == edge[i] (i>0) into bucket i,
    # so shift by one and clamp the maximum into the final (closed) bucket.
    codes = np.searchsorted(edge_arr, data, side="right") - 1
    codes = np.clip(codes, 0, len(intervals) - 1)
    return CategoricalColumn(codes.astype(np.int32), intervals)


def bucketize(
    table: Table,
    name: str,
    *,
    n_buckets: int = 10,
    method: str = "width",
    edges: Sequence[float] | None = None,
) -> Table:
    """Return ``table`` with numeric column ``name`` bucketized in place.

    The replacement column is categorical with :class:`Interval`
    dictionary values and keeps the original column name.
    """
    column = table.column(name)
    if not isinstance(column, NumericColumn):
        raise SchemaError(f"column {name!r} is not numeric")
    bucketed = bucketize_column(column, n_buckets=n_buckets, method=method, edges=edges)
    return table.replace_column(name, ColumnSchema(name, ColumnKind.CATEGORICAL), bucketed)
