"""The session registry: per-tenant session lifecycle with TTL + LRU.

A long-running drill-down service accumulates sessions faster than
clients close them — browsers navigate away, notebooks die, load
balancers retry.  The :class:`SessionRegistry` bounds that:

* **TTL expiry** — a session idle longer than ``ttl_seconds`` (no
  lookup, no expansion) is closed and forgotten; the next request for
  its id raises :class:`~repro.errors.UnknownSessionError`, telling
  the client to recreate it.  Expiry runs on every registry operation
  and can be forced with :meth:`evict_expired` — which is what the
  serving tier's background
  :class:`~repro.serving.persistence.ReaperThread` calls on its
  interval, so idle sessions die even when no request ever touches the
  registry again.
* **LRU capacity eviction** — ``max_sessions`` caps live sessions;
  admitting one more closes the least-recently-used first.

Eviction calls :meth:`DrillDownSession.close`, which is idempotent and
safe while an expansion is in flight (see
:mod:`repro.session.session`); a closed tenant mid-expand gets its
result back, and the *next* call raises
:class:`~repro.errors.SessionClosedError` / ``UnknownSessionError``.
Closing a session never touches the catalog's shared pool or its
exports — sessions only borrow them.

**Locking discipline.**  Victims are popped from the table under the
registry ``_lock`` but *closed after it is released* — ``close()`` can
block (an in-flight expansion defers an owned pool's release) and may
fire an ``on_close``/:attr:`on_evict` callback that re-enters the
registry; closing under the lock would stall every tenant's lookup
behind one eviction and invites deadlock.  :meth:`close` and
:meth:`close_all` always worked this way; :meth:`add` and TTL expiry
now do too.

**Durability hooks.**  :class:`SessionEntry` carries the metadata the
serving tier's snapshot subsystem needs (``table``, ``wf_spec``, a
``dirty`` flag set on every expansion/collapse), :attr:`on_evict`
notifies the tier when an entry leaves the registry (so its snapshot
can be deleted), and :meth:`admit` re-enters a *restored* session
under its original id, tenant, and recency after a warm restart.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import DeadlineExceededError, ServingError, UnknownSessionError
from repro.session.session import DrillDownSession

__all__ = ["SessionEntry", "SessionRegistry"]


@dataclass
class SessionEntry:
    """One registered session with its tenancy and recency metadata."""

    session_id: str
    tenant: str
    session: DrillDownSession
    created_at: float
    last_used: float
    expansions: int = 0
    #: Catalog table name the session mines (``None`` outside the
    #: serving facade); part of a snapshot's identity.
    table: str | None = None
    #: Weight-function spec (``"size"``/``"bits"``/...) when the session
    #: was created by name; ``None`` for bring-your-own instances, which
    #: cannot be snapshotted (no way to name the weighting on restore).
    wf_spec: str | None = None
    #: Catalog version of :attr:`table` this session is pinned to
    #: (``None`` outside the serving facade).  A session mines exactly
    #: the version it started on; the serving tier releases the pin —
    #: possibly reaping the version — when the entry leaves the
    #: registry.
    table_version: int | None = None
    #: Set (under :attr:`lock`) whenever an expansion or collapse
    #: mutates the tree; cleared by a successful checkpoint.
    dirty: bool = False
    #: Registry-clock time of the last successful checkpoint (``None``
    #: = never).  A ``last_used`` beyond it means the snapshot's
    #: *recency* is stale even when the tree is clean — read-only
    #: touches (render, lookup) refresh TTL but not ``dirty``, and a
    #: warm restart must not revive an active session as long-idle.
    checkpointed_at: float | None = None
    #: Serialises operations on this session (sessions are not
    #: re-entrant; the HTTP front end is threaded).  Also guards the
    #: ``expansions`` counter and ``dirty`` flag.
    lock: threading.Lock = field(default_factory=threading.Lock)

    @contextmanager
    def hold(
        self,
        deadline_at: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> Iterator[None]:
        """Acquire :attr:`lock`, bounded by an absolute deadline.

        ``with entry.hold():`` is exactly ``with entry.lock:``; with a
        ``deadline_at`` the acquire times out and raises
        :class:`~repro.errors.DeadlineExceededError` instead — a
        deadline'd request queued behind another long operation on the
        *same* session must fail fast, not inherit the predecessor's
        runtime.  ``clock`` must be the domain ``deadline_at`` was
        computed in (the serving tier passes its injectable clock —
        note a non-realtime test clock makes the underlying real-time
        lock wait conservative, which only ever fails *earlier*).
        """
        if deadline_at is None:
            self.lock.acquire()
        else:
            remaining = deadline_at - clock()
            if remaining <= 0.0 or not self.lock.acquire(timeout=remaining):
                raise DeadlineExceededError(
                    f"session {self.session_id!r} is busy with another request "
                    "and the deadline expired waiting for it",
                    retry_after=1.0,
                )
        try:
            yield
        finally:
            self.lock.release()


class SessionRegistry:
    """Create/lookup/expire :class:`DrillDownSession`s per tenant.

    Parameters
    ----------
    max_sessions:
        Live-session cap; ``None`` is unbounded.  Admission beyond the
        cap closes the least-recently-used session.
    ttl_seconds:
        Idle lifetime; ``None`` disables expiry.
    clock:
        Injectable monotonic clock for deterministic TTL tests.
    id_prefix:
        Prefix of generated session ids (``"sess"`` → ``sess-000001``).
        A sharded tier gives every shard's registry a distinct prefix so
        ids stay unique *across* worker processes — the router keys its
        session-affinity table by bare id.
    """

    def __init__(
        self,
        *,
        max_sessions: int | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        id_prefix: str = "sess",
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ServingError("max_sessions must be at least 1")
        if not re.fullmatch(r"[A-Za-z0-9._-]+", id_prefix):
            raise ServingError(f"session id prefix {id_prefix!r} is not filename-safe")
        self.id_prefix = id_prefix
        self._id_pattern = re.compile(re.escape(id_prefix) + r"-(\d+)")
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._next_id = 1
        self.ttl_evictions = 0
        self.lru_evictions = 0
        #: Fired (outside the registry lock) with ``(entry, reason)``
        #: after a session leaves the registry through TTL expiry
        #: (``"ttl"``), LRU eviction (``"lru"``), or an explicit
        #: :meth:`close` (``"closed"``) — the serving tier's snapshot
        #: orphan-cleanup hook.  Not fired by :meth:`close_all`
        #: (shutdown must keep snapshots for the next warm restart).
        self.on_evict: Callable[[SessionEntry, str], None] | None = None

    # -- admission ---------------------------------------------------------------

    def add(
        self,
        session: DrillDownSession,
        *,
        tenant: str = "default",
        table: str | None = None,
        wf_spec: str | None = None,
        table_version: int | None = None,
    ) -> SessionEntry:
        """Register ``session``; may LRU-evict to make room.

        Returns the entry carrying the generated ``session_id``.
        Victims are closed only after the registry lock is released.
        """
        now = self._clock()
        with self._lock:
            expired = self._pop_expired_locked(now)
            victims = self._pop_lru_victims_locked()
            entry = SessionEntry(
                session_id=f"{self.id_prefix}-{self._next_id:06d}",
                tenant=tenant,
                session=session,
                created_at=now,
                last_used=now,
                table=table,
                wf_spec=wf_spec,
                table_version=table_version,
            )
            self._next_id += 1
            self._entries[entry.session_id] = entry
        self._close_evicted(expired, "ttl")
        self._close_evicted(victims, "lru")
        return entry

    def admit(
        self,
        session: DrillDownSession,
        *,
        session_id: str,
        tenant: str = "default",
        created_at: float | None = None,
        last_used: float | None = None,
        expansions: int = 0,
        table: str | None = None,
        wf_spec: str | None = None,
        table_version: int | None = None,
    ) -> SessionEntry:
        """Re-enter a *restored* session under its original identity.

        The warm-restart path: the session keeps its pre-restart id,
        tenant, recency (``last_used``/``created_at``, in this
        registry's clock domain), and expansion count, so TTL expiry
        and per-session counters carry across the restart.  The id
        generator is advanced past ``session_id`` so freshly created
        sessions can never collide with a restored one.  Admit restored
        sessions least-recent first to keep the LRU order faithful.

        Raises :class:`~repro.errors.ServingError` if the id is
        already live.
        """
        now = self._clock()
        with self._lock:
            if session_id in self._entries:
                raise ServingError(f"session id {session_id!r} is already live")
            self._reserve_id_locked(session_id)
            victims = self._pop_lru_victims_locked()
            entry = SessionEntry(
                session_id=session_id,
                tenant=tenant,
                session=session,
                created_at=now if created_at is None else created_at,
                last_used=now if last_used is None else last_used,
                expansions=expansions,
                table=table,
                wf_spec=wf_spec,
                table_version=table_version,
            )
            self._entries[session_id] = entry
        self._close_evicted(victims, "lru")
        return entry

    def reserve_ids(self, session_ids: "list[str] | tuple[str, ...]") -> None:
        """Advance the id generator past every ``sess-NNNNNN`` given.

        Called with all on-disk snapshot ids before any new session is
        created, so ids stay unique even for snapshots whose table is
        never re-registered (and which are therefore never admitted).
        """
        with self._lock:
            for session_id in session_ids:
                self._reserve_id_locked(session_id)

    def _reserve_id_locked(self, session_id: str) -> None:
        match = self._id_pattern.fullmatch(session_id)
        if match:
            self._next_id = max(self._next_id, int(match.group(1)) + 1)

    # -- lookup ------------------------------------------------------------------

    def entry(self, session_id: str) -> SessionEntry:
        """The live entry for ``session_id``, touched for LRU/TTL.

        Raises :class:`~repro.errors.UnknownSessionError` for ids that
        never existed, were closed, or have expired/been evicted.
        """
        now = self._clock()
        with self._lock:
            expired = self._pop_expired_locked(now)
            entry = self._entries.get(session_id)
            if entry is not None:
                entry.last_used = now
                self._entries.move_to_end(session_id)
        self._close_evicted(expired, "ttl")
        if entry is None:
            raise UnknownSessionError(
                f"no live session {session_id!r} (unknown, closed, expired, "
                "or evicted — create a new session)"
            )
        return entry

    def get(self, session_id: str) -> DrillDownSession:
        """The live session for ``session_id`` (see :meth:`entry`)."""
        return self.entry(session_id).session

    def peek(self, session_id: str) -> SessionEntry | None:
        """The live entry *without* touching TTL/LRU or expiring anyone.

        Maintenance accessor (checkpointing must not refresh recency —
        a checkpoint is not the tenant coming back); ``None`` when not
        live.
        """
        with self._lock:
            return self._entries.get(session_id)

    def session_ids(self, *, tenant: str | None = None) -> tuple[str, ...]:
        with self._lock:
            return tuple(
                sid
                for sid, entry in self._entries.items()
                if tenant is None or entry.tenant == tenant
            )

    def entries(self) -> tuple[SessionEntry, ...]:
        """A stable snapshot of the live entries (checkpoint sweeps)."""
        with self._lock:
            return tuple(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._entries

    # -- expiry / eviction -------------------------------------------------------

    def _pop_expired_locked(self, now: float) -> list[SessionEntry]:
        """Remove TTL-expired entries; the caller closes them unlocked."""
        if self.ttl_seconds is None:
            return []
        expired = [
            sid
            for sid, entry in self._entries.items()
            if now - entry.last_used > self.ttl_seconds
        ]
        popped = []
        for sid in expired:
            popped.append(self._entries.pop(sid))
            self.ttl_evictions += 1
        return popped

    def _pop_lru_victims_locked(self) -> list[SessionEntry]:
        """Remove LRU entries until one more admission fits."""
        victims = []
        while self.max_sessions is not None and len(self._entries) >= self.max_sessions:
            _, victim = self._entries.popitem(last=False)
            self.lru_evictions += 1
            victims.append(victim)
        return victims

    def _close_evicted(self, entries: list[SessionEntry], reason: str) -> None:
        """Close popped entries and fire :attr:`on_evict` — never under
        ``_lock``: ``close()`` can block behind an in-flight expansion
        and callbacks may re-enter the registry."""
        for entry in entries:
            entry.session.close()
            if self.on_evict is not None:
                self.on_evict(entry, reason)

    def evict_expired(self) -> list[str]:
        """Close every TTL-expired session now; returns the evicted ids.

        This is the reaper's entry point: called on a timer, it expires
        idle sessions with zero intervening request traffic.
        """
        with self._lock:
            expired = self._pop_expired_locked(self._clock())
        self._close_evicted(expired, "ttl")
        return [entry.session_id for entry in expired]

    def close(self, session_id: str) -> bool:
        """Close and forget one session; ``False`` if it was not live."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
        if entry is None:
            return False
        self._close_evicted([entry], "closed")
        return True

    def close_all(self) -> None:
        """Close every live session (service shutdown).

        Does **not** fire :attr:`on_evict` — shutdown is not eviction,
        and the serving tier relies on that to keep freshly
        checkpointed snapshots on disk for the next warm restart.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.session.close()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            tenants: dict[str, int] = {}
            expansions = 0
            dirty = 0
            for entry in self._entries.values():
                tenants[entry.tenant] = tenants.get(entry.tenant, 0) + 1
                expansions += entry.expansions
                dirty += entry.dirty
            return {
                "sessions": len(self._entries),
                "per_tenant": tenants,
                "expansions": expansions,
                "dirty": dirty,
                "ttl_evictions": self.ttl_evictions,
                "lru_evictions": self.lru_evictions,
                "max_sessions": self.max_sessions,
                "ttl_seconds": self.ttl_seconds,
            }

    def __repr__(self) -> str:
        return (
            f"SessionRegistry(sessions={len(self._entries)}, "
            f"max={self.max_sessions}, ttl={self.ttl_seconds})"
        )
