"""The session registry: per-tenant session lifecycle with TTL + LRU.

A long-running drill-down service accumulates sessions faster than
clients close them — browsers navigate away, notebooks die, load
balancers retry.  The :class:`SessionRegistry` bounds that:

* **TTL expiry** — a session idle longer than ``ttl_seconds`` (no
  lookup, no expansion) is closed and forgotten; the next request for
  its id raises :class:`~repro.errors.UnknownSessionError`, telling
  the client to recreate it.  Expiry is piggy-backed on every registry
  operation (no reaper thread) and can be forced with
  :meth:`evict_expired`.
* **LRU capacity eviction** — ``max_sessions`` caps live sessions;
  admitting one more closes the least-recently-used first.

Eviction calls :meth:`DrillDownSession.close`, which is idempotent and
safe while an expansion is in flight (see
:mod:`repro.session.session`); a closed tenant mid-expand gets its
result back, and the *next* call raises
:class:`~repro.errors.SessionClosedError` / ``UnknownSessionError``.
Closing a session never touches the catalog's shared pool or its
exports — sessions only borrow them.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServingError, UnknownSessionError
from repro.session.session import DrillDownSession

__all__ = ["SessionEntry", "SessionRegistry"]


@dataclass
class SessionEntry:
    """One registered session with its tenancy and recency metadata."""

    session_id: str
    tenant: str
    session: DrillDownSession
    created_at: float
    last_used: float
    expansions: int = 0
    #: Serialises operations on this session (sessions are not
    #: re-entrant; the HTTP front end is threaded).
    lock: threading.Lock = field(default_factory=threading.Lock)


class SessionRegistry:
    """Create/lookup/expire :class:`DrillDownSession`s per tenant.

    Parameters
    ----------
    max_sessions:
        Live-session cap; ``None`` is unbounded.  Admission beyond the
        cap closes the least-recently-used session.
    ttl_seconds:
        Idle lifetime; ``None`` disables expiry.
    clock:
        Injectable monotonic clock for deterministic TTL tests.
    """

    def __init__(
        self,
        *,
        max_sessions: int | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ServingError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._ids = itertools.count(1)
        self.ttl_evictions = 0
        self.lru_evictions = 0

    # -- admission ---------------------------------------------------------------

    def add(self, session: DrillDownSession, *, tenant: str = "default") -> SessionEntry:
        """Register ``session``; may LRU-evict to make room.

        Returns the entry carrying the generated ``session_id``.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            while self.max_sessions is not None and len(self._entries) >= self.max_sessions:
                _, victim = self._entries.popitem(last=False)
                self.lru_evictions += 1
                victim.session.close()
            entry = SessionEntry(
                session_id=f"sess-{next(self._ids):06d}",
                tenant=tenant,
                session=session,
                created_at=now,
                last_used=now,
            )
            self._entries[entry.session_id] = entry
            return entry

    # -- lookup ------------------------------------------------------------------

    def entry(self, session_id: str) -> SessionEntry:
        """The live entry for ``session_id``, touched for LRU/TTL.

        Raises :class:`~repro.errors.UnknownSessionError` for ids that
        never existed, were closed, or have expired/been evicted.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            entry = self._entries.get(session_id)
            if entry is None:
                raise UnknownSessionError(
                    f"no live session {session_id!r} (unknown, closed, expired, "
                    "or evicted — create a new session)"
                )
            entry.last_used = now
            self._entries.move_to_end(session_id)
            return entry

    def get(self, session_id: str) -> DrillDownSession:
        """The live session for ``session_id`` (see :meth:`entry`)."""
        return self.entry(session_id).session

    def session_ids(self, *, tenant: str | None = None) -> tuple[str, ...]:
        with self._lock:
            return tuple(
                sid
                for sid, entry in self._entries.items()
                if tenant is None or entry.tenant == tenant
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._entries

    # -- expiry / eviction -------------------------------------------------------

    def _expire_locked(self, now: float) -> list[str]:
        if self.ttl_seconds is None:
            return []
        expired = [
            sid
            for sid, entry in self._entries.items()
            if now - entry.last_used > self.ttl_seconds
        ]
        for sid in expired:
            entry = self._entries.pop(sid)
            self.ttl_evictions += 1
            entry.session.close()
        return expired

    def evict_expired(self) -> list[str]:
        """Close every TTL-expired session now; returns the evicted ids."""
        with self._lock:
            return self._expire_locked(self._clock())

    def close(self, session_id: str) -> bool:
        """Close and forget one session; ``False`` if it was not live."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
        if entry is None:
            return False
        entry.session.close()
        return True

    def close_all(self) -> None:
        """Close every live session (service shutdown)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.session.close()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            tenants: dict[str, int] = {}
            for entry in self._entries.values():
                tenants[entry.tenant] = tenants.get(entry.tenant, 0) + 1
            return {
                "sessions": len(self._entries),
                "per_tenant": tenants,
                "ttl_evictions": self.ttl_evictions,
                "lru_evictions": self.lru_evictions,
                "max_sessions": self.max_sessions,
                "ttl_seconds": self.ttl_seconds,
            }

    def __repr__(self) -> str:
        return (
            f"SessionRegistry(sessions={len(self._entries)}, "
            f"max={self.max_sessions}, ttl={self.ttl_seconds})"
        )
