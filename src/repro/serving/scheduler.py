"""Fair pool scheduling: per-tenant token budgets + round-robin dispatch.

Two independent fairness mechanisms, one class:

* **Token budgets** — every tenant has a token bucket (capacity +
  optional refill rate).  The serving facade charges one expansion's
  estimated cost (the mined source's row count, see
  :attr:`~repro.session.session.DrillDownSession.source_rows`) *before*
  running it; an empty bucket raises the typed
  :class:`~repro.errors.TenantBudgetError` immediately — a throttled
  tenant gets a clear retry-able error, never a queue it silently
  starves in.  ``capacity=None`` (the default) means unmetered.
* **Round-robin dispatch** — installed as
  :attr:`~repro.core.parallel.CountingPool.scheduler`, the
  :meth:`FairScheduler.dispatch_turn` context manager gates the
  *submission* of every batch a counting backend ships to the worker
  pool (computation overlaps; only queue entry is ordered).  Turns
  rotate across tenants with waiting batches (FIFO within a tenant),
  so a tenant fanning out a deep drill-down queues one batch per turn
  and cannot monopolise the work queue while another tenant's first
  pick waits.

Budget charging and dispatch gating deliberately live at different
levels: budgets meter *expansions* (the user-visible unit of work, so
small-table serial fallbacks are metered too), while turn-taking
orders *worker batches* (the unit of pool contention).  Neither
mechanism ever changes results — only when, or whether, work runs.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import DeadlineExceededError, TenantBudgetError

__all__ = ["FairScheduler", "TenantBudget"]


@dataclass
class TenantBudget:
    """One tenant's token bucket plus its lifetime accounting."""

    capacity: float | None
    tokens: float
    refill_per_second: float
    last_refill: float
    charged: float = 0.0
    throttled: int = 0

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "tokens": None if self.capacity is None else round(self.tokens, 3),
            "refill_per_second": self.refill_per_second,
            "charged": self.charged,
            "throttled": self.throttled,
        }


@dataclass
class _TurnQueue:
    """Tickets of threads waiting for (or holding) a tenant's dispatch turn."""

    waiting: deque = field(default_factory=deque)


class FairScheduler:
    """Per-tenant token budgets and round-robin dispatch turns.

    Parameters
    ----------
    default_budget:
        Token capacity for tenants without an explicit
        :meth:`set_budget`; ``None`` (default) charges but never
        throttles.  Tokens are denominated in *source rows per
        expansion* by the serving facade.
    default_refill_per_second:
        Tokens regained per second, up to capacity.  ``0`` makes the
        budget a hard cap per tenant lifetime.
    clock:
        Injectable monotonic clock (tests drive refill deterministically).
    """

    def __init__(
        self,
        *,
        default_budget: float | None = None,
        default_refill_per_second: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._default_budget = default_budget
        self._default_refill = default_refill_per_second
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._budgets: dict[Any, TenantBudget] = {}
        # Round-robin state: tenants with waiting dispatchers, in turn
        # order; per-tenant FIFO of tickets; the ticket currently
        # holding the (single) dispatch turn.
        self._ring: list[Any] = []
        self._queues: dict[Any, _TurnQueue] = {}
        self._active: int | None = None
        self._active_tenant: Any = None
        self._tickets = itertools.count(1)
        self.dispatches = 0
        self.deadline_aborts = 0

    # -- token budgets -----------------------------------------------------------

    def _budget(self, tenant: Any) -> TenantBudget:
        budget = self._budgets.get(tenant)
        if budget is None:
            capacity = self._default_budget
            budget = TenantBudget(
                capacity=capacity,
                tokens=0.0 if capacity is None else float(capacity),
                refill_per_second=self._default_refill,
                last_refill=self._clock(),
            )
            self._budgets[tenant] = budget
        return budget

    def _refill(self, budget: TenantBudget) -> None:
        now = self._clock()
        if budget.capacity is not None and budget.refill_per_second > 0.0:
            gained = (now - budget.last_refill) * budget.refill_per_second
            budget.tokens = min(budget.capacity, budget.tokens + gained)
        budget.last_refill = now

    def set_budget(
        self,
        tenant: Any,
        capacity: float | None,
        *,
        refill_per_second: float | None = None,
    ) -> None:
        """Give ``tenant`` an explicit bucket (full at ``capacity``)."""
        with self._lock:
            self._budgets[tenant] = TenantBudget(
                capacity=capacity,
                tokens=0.0 if capacity is None else float(capacity),
                refill_per_second=(
                    self._default_refill if refill_per_second is None else refill_per_second
                ),
                last_refill=self._clock(),
            )

    def charge(self, tenant: Any, tokens: float) -> None:
        """Deduct ``tokens`` from the tenant's bucket, or throttle.

        Raises :class:`~repro.errors.TenantBudgetError` — immediately,
        never blocking — when the bucket (after refill accrual) cannot
        cover the charge.  Unmetered tenants only accumulate
        accounting.
        """
        with self._lock:
            budget = self._budget(tenant)
            if budget.capacity is None:
                budget.charged += tokens
                return
            self._refill(budget)
            if tokens > budget.tokens:
                budget.throttled += 1
                retry_after = None
                if budget.refill_per_second > 0.0:
                    retry_after = (tokens - budget.tokens) / budget.refill_per_second
                raise TenantBudgetError(tenant, tokens, budget.tokens, retry_after)
            budget.tokens -= tokens
            budget.charged += tokens

    def refund(self, tenant: Any, tokens: float) -> None:
        """Return ``tokens`` to the tenant's bucket (capped at capacity).

        The serving facade refunds an expansion's up-front charge when
        the operation fails before doing table work (bad rule, closed
        session, ...), so rejected requests never burn budget.
        """
        with self._lock:
            budget = self._budget(tenant)
            budget.charged = max(0.0, budget.charged - tokens)
            if budget.capacity is not None:
                budget.tokens = min(budget.capacity, budget.tokens + tokens)

    def balance(self, tenant: Any) -> float | None:
        """Current tokens for ``tenant`` (``None`` = unmetered)."""
        with self._lock:
            budget = self._budget(tenant)
            if budget.capacity is None:
                return None
            self._refill(budget)
            return budget.tokens

    # -- round-robin dispatch ----------------------------------------------------

    def _my_turn(self, tenant: Any, ticket: int) -> bool:
        return (
            self._active is None
            and bool(self._ring)
            and self._ring[0] == tenant
            and self._queues[tenant].waiting[0] == ticket
        )

    def _abandon_locked(self, tenant: Any, ticket: int) -> None:
        """Withdraw a waiting ticket whose deadline expired (lock held).

        Removes the ticket from the tenant's FIFO; when that empties
        the queue *and* no other ticket of this tenant currently holds
        the turn (the holder's own release pops the ring head and
        cleans up), the tenant leaves the ring too — an abandoned wait
        must never leave a ghost tenant blocking rotation.
        """
        queue = self._queues.get(tenant)
        if queue is None:  # pragma: no cover - defensive
            return
        try:
            queue.waiting.remove(ticket)
        except ValueError:  # pragma: no cover - defensive
            return
        if not queue.waiting and self._active_tenant != tenant:
            del self._queues[tenant]
            try:
                self._ring.remove(tenant)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._cond.notify_all()

    @contextmanager
    def dispatch_turn(
        self, tenant: Any, *, deadline_at: float | None = None
    ) -> Iterator[None]:
        """Hold the dispatch turn while one worker batch is *submitted*.

        Installed on a :class:`~repro.core.parallel.CountingPool` as its
        ``scheduler``, this wraps every batch's entry into the worker
        queue (not its computation — the caller releases the turn
        before awaiting results, so tenants' batches overlap in the
        pool).  One submission happens at a time; when several tenants
        contend, turns rotate tenant-by-tenant (FIFO within a tenant),
        so a backlog from one tenant delays its *own* next batch, not
        every other tenant's first.

        ``deadline_at`` (absolute, in this scheduler's clock) bounds
        the queue wait: a ticket still waiting at the deadline is
        withdrawn and :class:`~repro.errors.DeadlineExceededError`
        raised — the serving facade refunds the expansion's budget
        charge on that path.  (With an injectable test clock the wait
        duration is measured in clock units; deterministic tests pass
        an already-expired deadline.)
        """
        ticket = next(self._tickets)
        with self._cond:
            queue = self._queues.setdefault(tenant, _TurnQueue())
            queue.waiting.append(ticket)
            if tenant not in self._ring:
                self._ring.append(tenant)
            while not self._my_turn(tenant, ticket):
                if deadline_at is None:
                    self._cond.wait()
                    continue
                remaining = deadline_at - self._clock()
                if remaining <= 0.0:
                    self._abandon_locked(tenant, ticket)
                    self.deadline_aborts += 1
                    raise DeadlineExceededError(
                        f"tenant {tenant!r} waited past its deadline for a "
                        "dispatch turn — the batch was never submitted",
                        retry_after=1.0,
                    )
                self._cond.wait(timeout=remaining)
            self._active = ticket
            self._active_tenant = tenant
            queue.waiting.popleft()
            self.dispatches += 1
        try:
            yield
        finally:
            with self._cond:
                self._active = None
                self._active_tenant = None
                self._ring.pop(0)
                if self._queues[tenant].waiting:
                    self._ring.append(tenant)  # round-robin: back of the line
                else:
                    del self._queues[tenant]
                self._cond.notify_all()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Budget and dispatch accounting, keyed by tenant."""
        with self._lock:
            return {
                "dispatches": self.dispatches,
                "deadline_aborts": self.deadline_aborts,
                "tenants": {
                    repr(tenant): budget.snapshot()
                    for tenant, budget in self._budgets.items()
                },
            }

    def __repr__(self) -> str:
        return (
            f"FairScheduler(tenants={len(self._budgets)}, "
            f"dispatches={self.dispatches})"
        )
