"""Stdlib-only HTTP front end for the multi-tenant serving tier.

A thin JSON shim over :class:`~repro.serving.DrillDownServer` built on
``http.server`` — zero dependencies beyond the standard library, good
enough for interactive exploration and integration tests, and honest
about it (see docs/SERVING.md for when to put a real ASGI gateway in
front instead).  The handler is threaded
(:class:`http.server.ThreadingHTTPServer`), which is exactly the
concurrency the tier is built for: per-session locks serialise one
tenant's clicks, the shared pool and fair scheduler interleave
different tenants' counting.

Endpoints (all bodies JSON)::

    GET    /healthz                      liveness probe
    GET    /stats                        tier-wide counters
    GET    /tables                       registered table names
    POST   /tables                       {"name", "dataset"} or
                                         {"name", "columns", "rows"[, "numeric"]}
    POST   /tables/<name>/rows           {"rows": [[...], ...]} — append rows
                                         as a new table version (docs/SERVING.md,
                                         "Versioned tables")
    POST   /sessions                     {"table"[, "tenant", "wf", "k", "mw",
                                         "measure"]} -> {"session_id", ...}
    GET    /sessions/<id>                displayed tree as nested JSON
    DELETE /sessions/<id>                close the session
    POST   /sessions/<id>/expand         {"rule"[, "k", "approx", "error_target"]}
                                         -> {"children": [...]}
    POST   /sessions/<id>/expand_star    {"rule", "column"[, "k", "approx",
                                         "error_target"]}
    POST   /sessions/<id>/collapse       {"rule"}
    GET    /sessions/<id>/render         {"text": dotted table}

Rules travel as one JSON array entry per column with ``null`` for the
``?`` wildcard — ``["Walmart", null, null]`` — so a table whose data
contains JSON ``null`` values is not addressable over the wire (use
the programmatic facade for that).

Error mapping: unknown table/session -> 404, closed session or a
conflicting re-registration (``TableConflictError`` — the name already
holds different data; append or replace instead) -> 409, exhausted
tenant budget -> 429 (with ``Retry-After`` when the bucket
refills), a dead/wedged/circuit-open shard or an exceeded deadline ->
503 with ``Retry-After``, a client whose socket stalls mid-request ->
408 (see ``request_timeout``), any other
:class:`~repro.errors.ReproError` or malformed body (bad JSON, a
non-JSON ``Content-Type``, out-of-range column, ...) -> 400,
everything else -> 500.  Requests may carry an ``X-Deadline`` header
(seconds): work still queued or running at the deadline is abandoned
and answered 503 (docs/SERVING.md, "Fault tolerance").  The body always carries
``{"error": <exception class>, "message": ...}`` — including for
stdlib-generated failures like an unsupported method (501), which
would otherwise answer HTML to a JSON API.

Run it::

    PYTHONPATH=src python -m repro.serving.http --port 8080 --workers 2

and walk through docs/SERVING.md with curl.  Add
``--persist-dir <dir>`` for durable sessions: trees are checkpointed
in the background (``--checkpoint-interval``), idle sessions are
expired by the background reaper (``--reaper-interval``) instead of on
request traffic, shutdown checkpoints everything dirty, and a restart
over the same directory restores every session under its original id
(``/stats`` reports the ``persistence`` counters).

``--shards N`` serves through a :class:`~repro.serving.ShardRouter`
instead of an in-process :class:`~repro.serving.DrillDownServer`: N
worker processes, consistent-hash table placement, sticky sessions,
automatic restart of crashed shards (with warm restore when
``--persist-dir`` is set — each shard owns a subdirectory).  The API
and every response byte are identical; ``/stats`` gains a per-shard
breakdown.
"""

from __future__ import annotations

import argparse
import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.core.rule import STAR, Rule, Wildcard
from repro.datasets import generate_census, generate_marketing, generate_retail
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    SessionClosedError,
    ShardError,
    TableConflictError,
    TenantBudgetError,
    UnknownSessionError,
    UnknownTableError,
)
from repro.serving.router import ShardRouter
from repro.serving.server import DrillDownServer
from repro.session.session import SessionNode
from repro.table.schema import ColumnKind, ColumnSchema, Schema
from repro.table.table import Table

__all__ = [
    "make_handler",
    "node_to_wire",
    "rule_from_wire",
    "rule_to_wire",
    "serve",
]

#: Datasets registrable by name over the wire (generated server-side,
#: so the walkthrough needs no data upload).
_DATASETS = {
    "retail": generate_retail,
    "marketing": generate_marketing,
    "census": lambda: generate_census(50_000, n_columns=7),
}


# -- wire format ----------------------------------------------------------------


def rule_to_wire(rule: Rule) -> list:
    """One JSON entry per column; ``?`` becomes ``null``."""
    return [None if isinstance(v, Wildcard) else v for v in rule]


def rule_from_wire(values: Any, n_columns: int) -> Rule:
    """Decode a wire rule (``null`` = wildcard) against a column count."""
    if not isinstance(values, list) or len(values) != n_columns:
        raise ReproError(
            f"rule must be a JSON array of {n_columns} values (null = wildcard)"
        )
    return Rule([STAR if v is None else v for v in values])


def node_to_wire(node: SessionNode, *, deep: bool = False) -> dict:
    """A displayed node (optionally its whole subtree) as plain JSON.

    ``estimate`` — the approximate-expansion confidence metadata — is
    emitted only when the node carries one, so exact responses keep
    their pre-approx bytes.
    """
    out = {
        "rule": rule_to_wire(node.rule),
        "count": node.count,
        "weight": node.weight,
        "depth": node.depth,
        "expanded": node.is_expanded,
        "expanded_via": node.expanded_via,
    }
    if node.estimate is not None:
        out["estimate"] = dict(node.estimate)
    if deep:
        out["children"] = [node_to_wire(c, deep=True) for c in node.children]
    return out


def _table_from_body(body: dict) -> Table:
    dataset = body.get("dataset")
    if dataset is not None:
        try:
            factory = _DATASETS[dataset]
        except KeyError:
            raise ReproError(
                f"unknown dataset {dataset!r}; one of {sorted(_DATASETS)}"
            ) from None
        return factory()
    columns = body.get("columns")
    rows = body.get("rows")
    if not columns or rows is None:
        raise ReproError(
            'register a table with {"name", "dataset"} or {"name", "columns", "rows"}'
        )
    if not isinstance(columns, list) or not isinstance(rows, list):
        raise ReproError('"columns" and "rows" must be JSON arrays')
    numeric = set(body.get("numeric", ()))
    schema = Schema(
        [
            ColumnSchema(
                name, ColumnKind.NUMERIC if name in numeric else ColumnKind.CATEGORICAL
            )
            for name in columns
        ]
    )
    return Table.from_rows(schema, rows)


# -- the handler ----------------------------------------------------------------

_SESSION_PATH = re.compile(r"^/sessions/([^/]+)(?:/(expand|expand_star|collapse|render))?$")
_TABLE_ROWS_PATH = re.compile(r"^/tables/([^/]+)/rows$")


def make_handler(
    server: "DrillDownServer | ShardRouter",
    *,
    quiet: bool = True,
    request_timeout: float | None = None,
    default_deadline: float | None = None,
) -> type:
    """A request-handler class bound to one serving facade.

    The facade may be an in-process :class:`DrillDownServer` or a
    :class:`~repro.serving.ShardRouter` — the handler only speaks the
    shared surface (``create_session`` / ``expand`` / ``render`` /
    ``tree`` / ``session_columns`` / ...), so the wire behaviour is
    identical either way.

    ``request_timeout`` bounds every socket read: a client that opens a
    connection and trickles (or never sends) its request — the classic
    slowloris — gets a 408 (when enough of the request arrived to
    answer) or a plain close, instead of parking a handler thread
    forever.  ``default_deadline`` is the deadline (seconds) forwarded
    to the tier for requests that carry no ``X-Deadline`` header; a
    header value always wins.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        tier = server
        # socketserver applies this to the connection via settimeout(),
        # so the request line, headers, *and* body reads are all
        # bounded.  None = no limit (the pre-hardening behaviour).
        timeout = request_timeout

        # -- plumbing -----------------------------------------------------------

        def log_message(self, fmt: str, *args) -> None:  # noqa: D102
            if not quiet:
                super().log_message(fmt, *args)

        def _json(
            self, status: int, payload: dict, headers: dict | None = None
        ) -> None:
            body = json.dumps(payload, default=str).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def _body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                return {}
            # A declared non-JSON body is a client bug worth a clear
            # 400 now, not a JSON parse error (or worse, a silently
            # misinterpreted payload) later.  An *absent* header stays
            # accepted — the documented curl walkthrough relies on it.
            declared = (self.headers.get("Content-Type") or "").split(";", 1)[0].strip()
            if declared and declared.lower() not in (
                "application/json",
                # curl -d's default; the docs' walkthrough bodies are
                # JSON text sent under this label.
                "application/x-www-form-urlencoded",
            ):
                raise ReproError(
                    f"Content-Type {declared!r} is not supported; "
                    "send application/json"
                )
            try:
                parsed = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                raise ReproError(f"request body is not valid JSON: {exc}") from None
            if not isinstance(parsed, dict):
                raise ReproError("request body must be a JSON object")
            return parsed

        def send_error(  # noqa: D102 - stdlib hook
            self, code: int, message: str | None = None, explain: str | None = None
        ) -> None:
            # The stdlib answers protocol-level failures (unsupported
            # method -> 501, malformed request line -> 400) with an
            # HTML page; a JSON API must stay JSON on every path.
            self._json(
                code,
                {
                    "error": "HTTPError",
                    "message": message or self.responses.get(code, ("", ""))[0] or str(code),
                },
            )

        def _fail(self, exc: Exception) -> None:
            if isinstance(exc, (UnknownTableError, UnknownSessionError)):
                status = 404
            elif isinstance(exc, (SessionClosedError, TableConflictError)):
                # A closed session or a name already registered with
                # different data: the request conflicts with live state
                # (the conflict message names the remedies —
                # append_rows / replace_table).
                status = 409
            elif isinstance(exc, TenantBudgetError):
                status = 429
            elif isinstance(exc, (ShardError, DeadlineExceededError)):
                # Shard died/wedged (restarted with warm restore),
                # circuit open, or the deadline ran out: the tier is
                # degraded or saturated, not the request wrong — 503
                # with a Retry-After the client can honour.
                status = 503
            elif isinstance(exc, TimeoutError):
                # The *client's* socket stalled mid-request (slowloris
                # or a dead peer): answer 408 and drop the connection —
                # this handler thread is not parked on it any longer.
                status = 408
                self.close_connection = True
            elif isinstance(exc, (ReproError, KeyError, TypeError, ValueError, IndexError)):
                status = 400
            else:  # pragma: no cover - defensive
                status = 500
            payload = {"error": type(exc).__name__, "message": str(exc)}
            headers = None
            retry_after = getattr(exc, "retry_after", None)
            if isinstance(exc, TenantBudgetError):
                payload["retry_after"] = retry_after
            if status == 503 and retry_after is None:
                retry_after = 1.0  # degraded tiers always hint a backoff
            if status in (429, 503) and retry_after is not None:
                payload.setdefault("retry_after", retry_after)
                headers = {"Retry-After": str(max(1, int(retry_after + 1)))}
            try:
                self._json(status, payload, headers)
            except OSError:  # pragma: no cover - peer already gone
                self.close_connection = True

        def _deadline(self) -> float | None:
            """Per-request deadline: ``X-Deadline`` header (seconds),
            else the handler's configured default, else ``None`` (the
            tier's own ``default_deadline`` still applies)."""
            raw = self.headers.get("X-Deadline")
            if raw is None:
                return default_deadline
            try:
                value = float(raw)
            except ValueError:
                raise ReproError(
                    f"X-Deadline must be a number of seconds, got {raw!r}"
                ) from None
            if value <= 0:
                raise ReproError("X-Deadline must be > 0 seconds")
            return value

        def _session_rule(
            self, session_id: str, body: dict, deadline: float | None = None
        ) -> Rule:
            n_columns = len(
                self.tier.session_columns(session_id, deadline=deadline)
            )
            return rule_from_wire(body.get("rule"), n_columns)

        # -- verbs --------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802
            try:
                if self.path == "/healthz":
                    return self._json(200, {"ok": True})
                if self.path == "/stats":
                    return self._json(200, self.tier.stats())
                if self.path == "/tables":
                    return self._json(200, {"tables": list(self.tier.tables())})
                match = _SESSION_PATH.match(self.path)
                if match and match.group(2) == "render":
                    text = self.tier.render(match.group(1), deadline=self._deadline())
                    return self._json(200, {"text": text})
                if match and match.group(2) is None:
                    root = self.tier.tree(match.group(1), deadline=self._deadline())
                    return self._json(200, {"tree": node_to_wire(root, deep=True)})
                return self._json(404, {"error": "NotFound", "message": self.path})
            except Exception as exc:
                self._fail(exc)

        def do_POST(self) -> None:  # noqa: N802
            try:
                body = self._body()
                if self.path == "/tables":
                    name = body.get("name")
                    if not name:
                        raise ReproError('table registration needs a "name"')
                    table = self.tier.register_table(name, _table_from_body(body))
                    return self._json(
                        201,
                        {"name": name, "rows": table.n_rows,
                         "columns": list(table.column_names)},
                    )
                table_match = _TABLE_ROWS_PATH.match(self.path)
                if table_match:
                    rows = body.get("rows")
                    if not isinstance(rows, list) or not rows:
                        raise ReproError(
                            '"rows" must be a non-empty JSON array of row arrays'
                        )
                    record = self.tier.append_rows(table_match.group(1), rows)
                    return self._json(200, {"name": table_match.group(1), **record})
                if self.path == "/sessions":
                    deadline = self._deadline()
                    session_id = self.tier.create_session(
                        body["table"],
                        tenant=body.get("tenant", "default"),
                        wf=body.get("wf", "size"),
                        k=int(body.get("k", 3)),
                        mw=float(body.get("mw", 5.0)),
                        measure=body.get("measure"),
                        deadline=deadline,
                    )
                    return self._json(
                        201,
                        {
                            "session_id": session_id,
                            "table": body["table"],
                            "columns": list(
                                self.tier.session_columns(session_id, deadline=deadline)
                            ),
                            "root": node_to_wire(
                                self.tier.tree(session_id, deadline=deadline)
                            ),
                        },
                    )
                match = _SESSION_PATH.match(self.path)
                if match and match.group(2) in ("expand", "expand_star", "collapse"):
                    session_id, op = match.group(1), match.group(2)
                    deadline = self._deadline()
                    rule = self._session_rule(session_id, body, deadline)
                    approx = body.get("approx")
                    if approx is not None and not isinstance(approx, bool):
                        raise ReproError('"approx" must be a JSON boolean')
                    if op == "expand":
                        children = self.tier.expand(
                            session_id, rule, k=body.get("k"), approx=approx,
                            error_target=body.get("error_target"),
                            deadline=deadline,
                        )
                    elif op == "expand_star":
                        children = self.tier.expand_star(
                            session_id, rule, body["column"], k=body.get("k"),
                            approx=approx, error_target=body.get("error_target"),
                            deadline=deadline,
                        )
                    else:
                        self.tier.collapse(session_id, rule, deadline=deadline)
                        return self._json(200, {"collapsed": rule_to_wire(rule)})
                    return self._json(
                        200, {"children": [node_to_wire(c) for c in children]}
                    )
                return self._json(404, {"error": "NotFound", "message": self.path})
            except Exception as exc:
                self._fail(exc)

        def do_DELETE(self) -> None:  # noqa: N802
            try:
                match = _SESSION_PATH.match(self.path)
                if match and match.group(2) is None:
                    closed = self.tier.close_session(match.group(1))
                    return self._json(200, {"closed": closed})
                return self._json(404, {"error": "NotFound", "message": self.path})
            except Exception as exc:
                self._fail(exc)

    return Handler


def serve(
    server: "DrillDownServer | ShardRouter",
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    request_timeout: float | None = 30.0,
    default_deadline: float | None = None,
) -> ThreadingHTTPServer:
    """Bind the HTTP front end; the caller drives ``serve_forever()``.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``httpd.server_address``.  Shutting down the HTTP layer does *not*
    close the tier — call ``server.close()`` separately.
    ``request_timeout`` (seconds; default 30) bounds socket reads so a
    stalled client cannot park a handler thread; ``default_deadline``
    seeds the per-request deadline for clients that send no
    ``X-Deadline`` header.
    """
    handler = make_handler(
        server,
        quiet=quiet,
        request_timeout=request_timeout,
        default_deadline=default_deadline,
    )
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    return httpd


def main(argv: list[str] | None = None) -> None:
    """``python -m repro.serving.http``: stand up a serving tier."""
    parser = argparse.ArgumentParser(description="smart drill-down serving tier")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=None,
                        help="counting-pool workers (default: serial; "
                             "with --shards: per shard)")
    parser.add_argument("--shards", type=int, default=0,
                        help="serve through N shard worker processes "
                             "(default 0: one in-process tier)")
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--ttl", type=float, default=900.0,
                        help="idle session TTL in seconds (default 900)")
    parser.add_argument("--budget", type=float, default=None,
                        help="per-tenant token budget in source rows (default: unmetered)")
    parser.add_argument("--refill", type=float, default=0.0,
                        help="budget tokens refilled per second")
    parser.add_argument("--persist-dir", default=None,
                        help="directory for durable session snapshots "
                             "(default: memory-only; sessions die with the process; "
                             "with --shards, each shard owns a subdirectory)")
    parser.add_argument("--persist-max-bytes", type=int, default=None,
                        help="cap on the snapshot directory's total size; "
                             "oldest-recency snapshots are evicted past it "
                             "(default: unbounded; with --shards: per shard)")
    parser.add_argument("--checkpoint-interval", type=float, default=30.0,
                        help="seconds between dirty-session checkpoint sweeps "
                             "(with --persist-dir; default 30)")
    parser.add_argument("--reaper-interval", type=float, default=30.0,
                        help="background TTL-reaper period in seconds; "
                             "0 disables the thread (default 30)")
    parser.add_argument("--sample-budget", type=int, default=None,
                        help="pre-build per-table samples of this many tuples "
                             "at registration, enabling approximate expansions "
                             "(default: exact only)")
    parser.add_argument("--sample-seed", type=int, default=0,
                        help="base seed for the sample draws (default 0)")
    parser.add_argument("--default-approx", action="store_true",
                        help="mine expansions on the samples unless a request "
                             "says approx=false (requires --sample-budget)")
    parser.add_argument("--error-target", type=float, default=0.1,
                        help="relative confidence-interval half-width above "
                             "which an approximate expansion escalates to "
                             "exact counting (default 0.1)")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        help="socket read timeout in seconds; a stalled "
                             "client gets 408 instead of a parked thread "
                             "(default 30; 0 disables)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="default per-request deadline in seconds; "
                             "clients override per request with the "
                             "X-Deadline header (default: unbounded)")
    parser.add_argument("--watchdog-interval", type=float, default=10.0,
                        help="with --shards: seconds between shard health "
                             "sweeps; 0 disables the watchdog (default 10)")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        help="with --shards: consecutive shard failures "
                             "before its circuit opens (default 5)")
    parser.add_argument("--breaker-cooldown", type=float, default=1.0,
                        help="with --shards: seconds an open circuit waits "
                             "before probing the shard again (default 1)")
    parser.add_argument("--no-marginal-cache", action="store_true",
                        help="skip the registration-time first-pick "
                             "marginal precompute (first expansions fall "
                             "back to the full level-1 scan)")
    parser.add_argument("--marginal-mw", type=float, default=5.0,
                        help="minimum weight the first-pick marginals are "
                             "built at; sessions with a different mw miss "
                             "the cache (default 5)")
    parser.add_argument("--marginal-pairs", type=int, default=0,
                        help="bounded level-2 pair cache size per table; "
                             "0 disables (default 0)")
    parser.add_argument("--verbose", action="store_true", help="log requests")
    args = parser.parse_args(argv)

    tier_kwargs = dict(
        n_workers=args.workers,
        max_sessions=args.max_sessions,
        ttl_seconds=args.ttl,
        tenant_budget=args.budget,
        refill_per_second=args.refill,
        persist_dir=args.persist_dir,
        persist_max_bytes=args.persist_max_bytes,
        checkpoint_interval=args.checkpoint_interval,
        reaper_interval=args.reaper_interval or None,
        default_deadline=args.deadline,
        sample_budget=args.sample_budget,
        sample_seed=args.sample_seed,
        default_approx=args.default_approx,
        default_error_target=args.error_target,
        marginal_cache=not args.no_marginal_cache,
        marginal_mw=args.marginal_mw,
        marginal_pairs=args.marginal_pairs,
    )
    if args.shards and args.shards > 0:
        tier: DrillDownServer | ShardRouter = ShardRouter(
            args.shards,
            watchdog_interval=args.watchdog_interval or None,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            **tier_kwargs,
        )
        topology = f"shards={args.shards}, workers/shard={args.workers or 1}"
    else:
        tier = DrillDownServer(**tier_kwargs)
        topology = f"workers={args.workers or 1}"
    httpd = serve(
        tier,
        host=args.host,
        port=args.port,
        quiet=not args.verbose,
        request_timeout=args.request_timeout or None,
    )
    host, port = httpd.server_address[:2]
    durability = f", persist={args.persist_dir}" if args.persist_dir else ""
    print(f"serving smart drill-down on http://{host}:{port} "
          f"({topology}, ttl={args.ttl}s{durability})")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        # Graceful: tier.close() stops the reaper and checkpoints every
        # dirty session before closing it, so restarting over the same
        # --persist-dir resumes each tenant's tree exactly here.
        tier.close()
        if args.persist_dir:
            print(f"checkpointed sessions to {args.persist_dir}")


if __name__ == "__main__":
    main()
