"""Multi-tenant serving tier: one process, many tenants, one export.

The per-session machinery (incremental
:class:`~repro.core.search_cache.SearchContext`, shared-memory
:class:`~repro.core.parallel.CountingPool`) already lets many sessions
mine one immutable table export; this package is the tier that
multiplexes *tenants* on top of it:

* :class:`TableCatalog` — register tables as versioned records
  (:class:`TableVersion`), export each version to the shared pool once,
  grow exports and level-1 marginal caches incrementally under
  ``append_rows``, and reap superseded versions when their last pinned
  session closes;
* :class:`SessionRegistry` — create/lookup/expire
  :class:`~repro.session.DrillDownSession`\\ s per tenant (TTL + LRU,
  eviction-safe ``close()``);
* :class:`ContextStore` — share read-compatible search contexts across
  sessions with identical (table, weighting, ``mw``) configurations,
  copy-on-first-expand;
* :class:`FairScheduler` — per-tenant token budgets and round-robin
  dispatch on the pool's task queue;
* :class:`SnapshotStore` + :class:`ReaperThread`
  (:mod:`repro.serving.persistence`) — durable session trees
  (versioned JSON-lines snapshots, atomic writes, warm restart) and
  background TTL expiry/checkpointing independent of request traffic;
* :class:`DrillDownServer` — the facade composing all of the above,
  with a stdlib HTTP front end in :mod:`repro.serving.http`;
* :class:`ShardRouter` (:mod:`repro.serving.router` +
  :mod:`repro.serving.shard`) — the same facade sharded across N
  worker processes: consistent-hash table placement, sticky session
  affinity, crash detection with automatic restart + warm restore,
  responses bit-identical to one in-process server;
* :class:`TableSampleSet` (:mod:`repro.serving.samples`) — per-table
  uniform + stratified samples pre-built at registration under a
  ``sample_budget`` (§4.1 allocation DP), persisted for warm restarts
  and mined by approximate expansions, which carry per-rule
  confidence-interval metadata and escalate to exact counting when an
  estimate is too loose for the requested ``error_target``;
* :class:`CircuitBreaker`, :class:`ShardWatchdog`,
  :class:`ChaosPolicy` (:mod:`repro.serving.faults`) — the
  fault-tolerance layer: per-shard circuit breaking, background
  health sweeps that kill and restart wedged workers, and the
  deterministic fault-injection seam the chaos drills are built on;
  per-request deadlines thread from the HTTP ``X-Deadline`` header
  down to scheduler queue entry.

See docs/SERVING.md for topology, tenancy semantics, budget knobs,
durability, fault tolerance, and a curl walkthrough.
"""

from repro.serving.catalog import TableCatalog, TableVersion
from repro.serving.contexts import ContextStore
from repro.serving.faults import ChaosPolicy, ChaosRule, CircuitBreaker, ShardWatchdog
from repro.serving.persistence import (
    SNAPSHOT_VERSION,
    ReaperThread,
    SessionSnapshot,
    SnapshotStore,
)
from repro.serving.registry import SessionEntry, SessionRegistry
from repro.serving.router import ShardRouter
from repro.serving.samples import (
    TableSampleSet,
    build_sample_set,
    derive_seed,
    load_sample_set,
)
from repro.serving.scheduler import FairScheduler, TenantBudget
from repro.serving.server import WEIGHT_FUNCTIONS, DrillDownServer
from repro.serving.shard import ShardProcess

__all__ = [
    "ChaosPolicy",
    "ChaosRule",
    "CircuitBreaker",
    "ContextStore",
    "DrillDownServer",
    "FairScheduler",
    "ReaperThread",
    "SessionEntry",
    "SessionRegistry",
    "SessionSnapshot",
    "ShardProcess",
    "ShardRouter",
    "ShardWatchdog",
    "SnapshotStore",
    "SNAPSHOT_VERSION",
    "TableCatalog",
    "TableSampleSet",
    "TableVersion",
    "TenantBudget",
    "WEIGHT_FUNCTIONS",
    "build_sample_set",
    "derive_seed",
    "load_sample_set",
]
