"""Pre-built per-table serving samples: uniform + per-column stratified.

The paper's Section 4 mines drill-downs on bounded samples instead of
the full table; this module is the serving tier's *offline* half of
that machinery (the verdict-style "sample definitions built at
registration" architecture).  For every registered table the catalog
builds one :class:`TableSampleSet`:

* a **uniform** sample of the whole table (filter = the trivial rule),
  the fallback every expansion can legally use, and
* **stratified** samples, one per frequent value of each categorical
  column (filter = the single-value rule), sized by the paper's §4.1
  knapsack DP (:func:`~repro.sampling.allocation.allocate_dp`) under a
  shared ``sample_budget`` expressed in tuples.

Everything here is *deterministic* given ``(table data, budget, seed)``:
strata are enumerated in (column, code) order, allocation is a
deterministic DP, and every draw comes from one ``numpy`` generator
consumed in that fixed order.  Shard workers decode a wire-shipped
table into bit-identical code arrays, so rebuilding with the same seed
reproduces the parent's samples exactly — the replay fuzz harness pins
this.  :func:`derive_seed` gives each table a stable per-name seed so
samples survive process boundaries and restarts without coordination.

Sample sets persist as one JSON file of row ids (:meth:`TableSampleSet.save`
/ :func:`load_sample_set`) using the snapshot store's atomic
tmp+fsync+replace idiom, so warm restarts don't re-scan the table; a
fingerprint (rows, columns, budget, seed, version) guards staleness —
any mismatch makes the loader return ``None`` and the catalog rebuild.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.core.rule import Rule, cover_mask
from repro.errors import ReproError, ServingError
from repro.sampling.allocation import GroupSpec, LeafSpec, allocate_dp
from repro.sampling.sample import Sample
from repro.serving.persistence import decode_rule, encode_rule
from repro.table.table import Table

__all__ = [
    "TableSampleSet",
    "build_sample_set",
    "derive_seed",
    "load_sample_set",
]

SAMPLES_VERSION = 1
UNIFORM = "::uniform"
# Strata per categorical column.  Bounds the §4.1 group enumeration at
# 3^4 = 81 local options per group, keeping registration cheap even on
# wide-domain columns; rarer values fall through to the uniform sample.
MAX_STRATA_PER_COLUMN = 4


def derive_seed(name: str, base_seed: int) -> int:
    """Stable per-table sampling seed: same ``(name, base_seed)`` on any
    host/process yields the same draws (unlike ``hash()``, which is
    salted per process)."""
    digest = hashlib.sha1(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class TableSampleSet:
    """The pre-built samples served for one table.

    ``uniform`` covers the whole table; ``strata`` maps single-value
    filter rules to their samples.  :meth:`sample_for` picks the most
    specific stored sample whose filter covers a given expansion
    parent — the §4.3 rule that a sample is only usable for rules its
    filter is a sub-rule of.
    """

    def __init__(
        self,
        table: Table,
        uniform: Sample,
        strata: dict[Rule, Sample],
        *,
        budget: int,
        seed: int,
    ):
        self.table = table
        self.uniform = uniform
        self.strata = dict(strata)
        self.budget = int(budget)
        self.seed = int(seed)

    @property
    def samples(self) -> tuple[Sample, ...]:
        """Every stored sample, uniform first, strata in build order."""
        return (self.uniform, *self.strata.values())

    def sample_for(self, rule: Rule) -> Sample:
        """The most specific stored sample valid for expanding ``rule``.

        A stored sample with filter ``f`` is valid when ``f`` is a
        sub-rule of ``rule`` (its population contains ``rule``'s whole
        cover).  Among valid strata the most instantiated filter wins,
        then the smallest scale (densest sample); the uniform sample is
        always valid and is the fallback.
        """
        best = self.uniform
        best_key = (-1, 0.0)
        for filt, sample in self.strata.items():
            if not filt.is_subrule_of(rule):
                continue
            key = (filt.size, -sample.scale)
            if key > best_key:
                best, best_key = sample, key
        return best

    def memory_tuples(self) -> int:
        return sum(s.memory_tuples() for s in self.samples)

    def describe(self) -> dict:
        """JSON-friendly summary for ``/stats``."""
        return {
            "budget": self.budget,
            "seed": self.seed,
            "tuples": self.memory_tuples(),
            "samples": [
                {
                    "filter": str(s.filter_rule),
                    "size": s.size,
                    "population": s.population,
                    "scale": round(s.scale, 6),
                }
                for s in self.samples
            ],
        }

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist row ids atomically (tmp + fsync + replace), so a
        crash mid-write leaves either the old file or none."""
        path = Path(path)
        payload = {
            "version": SAMPLES_VERSION,
            "n_rows": self.table.n_rows,
            "n_columns": self.table.n_columns,
            "budget": self.budget,
            "seed": self.seed,
            "samples": [
                {
                    "filter": encode_rule(s.filter_rule),
                    "population": s.population,
                    "row_ids": s.row_ids.tolist(),
                }
                for s in self.samples
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        try:  # directory entry durability, best-effort
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def __repr__(self) -> str:
        return (
            f"TableSampleSet(budget={self.budget}, strata={len(self.strata)}, "
            f"tuples={self.memory_tuples()})"
        )


def _draw(rng: np.random.Generator, pool: np.ndarray, size: int) -> np.ndarray:
    """``size`` distinct positions from ``pool``, ascending.  Consumes
    the generator exactly once per partial draw (order-stable)."""
    if size >= len(pool):
        return pool.copy()
    pick = rng.choice(len(pool), size=size, replace=False)
    pick.sort()
    return pool[pick]


def _make_sample(table: Table, filt: Rule, row_ids: np.ndarray, population: int) -> Sample:
    return Sample(
        filter_rule=filt,
        scale=population / len(row_ids),
        table=table.take(row_ids),
        row_ids=row_ids,
        population=population,
    )


def build_sample_set(
    table: Table,
    *,
    budget: int,
    seed: int,
    max_strata_per_column: int = MAX_STRATA_PER_COLUMN,
) -> TableSampleSet:
    """Build the uniform + stratified samples for one table (§4.1).

    Strata candidates are the ``max_strata_per_column`` most frequent
    values of each categorical column; :func:`allocate_dp` splits
    ``budget`` tuples between the shared uniform (parent) sample and
    per-stratum top-ups, with ``minSS = budget // 4`` as the
    effective-size target.  Unspent budget flows into the uniform
    sample.  Deterministic given ``(table data, budget, seed)``.
    """
    n = table.n_rows
    if budget <= 0:
        raise ServingError("sample_budget must be a positive tuple count")
    if n == 0:
        raise ServingError("cannot sample an empty table")
    trivial = Rule.trivial(table.n_columns)
    cat_indexes = table.schema.categorical_indexes

    # Strata candidates, in deterministic (column, code) order.
    groups: list[GroupSpec] = []
    leaf_rules: dict[str, tuple[Rule, int]] = {}
    n_cat = max(len(cat_indexes), 1)
    for col_i in cat_indexes:
        col = table.categorical(col_i)
        counts = col.counts()
        order = np.argsort(-counts, kind="stable")[:max_strata_per_column]
        leaves = []
        for code in order:
            population = int(counts[int(code)])
            if population <= 0:
                continue
            fraction = min(population / n, 1.0)
            name = f"{col_i}:{int(code)}"
            leaf_rules[name] = (trivial.with_value(col_i, col.decode(int(code))), population)
            leaves.append(
                LeafSpec(name=name, probability=fraction / n_cat, selectivity=fraction)
            )
        if leaves:
            groups.append(GroupSpec(parent=UNIFORM, leaves=tuple(leaves)))

    # The uniform sample serves every expansion the strata cannot
    # (root expansions above all), so it gets a guaranteed floor of
    # half the budget; the DP splits the rest between per-stratum
    # top-ups and extra parent (= uniform) tuples.
    uniform_floor = min(n, max(1, budget // 2))
    strat_budget = budget - uniform_floor
    min_ss = max(1, min(n, budget // 4))
    sizes: dict[str, int] = {}
    if groups and strat_budget > 0:
        sizes = dict(allocate_dp(groups, strat_budget, min_ss).sizes)

    # Resolve per-stratum sizes (clamped to their populations), then let
    # the uniform sample absorb every unspent tuple of the budget
    # (including the DP's own parent allocation).
    stratum_sizes: dict[str, int] = {}
    spent = 0
    for name in sorted(leaf_rules):
        _, population = leaf_rules[name]
        size = min(int(sizes.get(name, 0)), population)
        if size > 0:
            stratum_sizes[name] = size
            spent += size
    uniform_size = min(n, uniform_floor + max(0, strat_budget - spent))

    # One generator, consumed in fixed order: uniform first, then strata
    # sorted by (column, code) — the order above.
    rng = np.random.default_rng(seed)
    all_rows = np.arange(n, dtype=np.int64)
    uniform = _make_sample(table, trivial, _draw(rng, all_rows, uniform_size), n)
    strata: dict[Rule, Sample] = {}
    for name in sorted(stratum_sizes):
        filt, population = leaf_rules[name]
        pool = np.nonzero(cover_mask(filt, table))[0].astype(np.int64)
        strata[filt] = _make_sample(
            table, filt, _draw(rng, pool, stratum_sizes[name]), population
        )
    return TableSampleSet(table, uniform, strata, budget=budget, seed=seed)


def load_sample_set(
    path: str | os.PathLike, table: Table, *, budget: int, seed: int
) -> TableSampleSet | None:
    """Rebuild a persisted sample set against ``table``.

    Returns ``None`` (never raises) whenever the file is missing,
    unreadable, or its fingerprint (version, shape, budget, seed)
    disagrees with the live table and knobs — the caller rebuilds and
    re-persists.  Row ids are bounds-checked so a corrupt file cannot
    index out of the table.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if (
            payload.get("version") != SAMPLES_VERSION
            or payload.get("n_rows") != table.n_rows
            or payload.get("n_columns") != table.n_columns
            or payload.get("budget") != int(budget)
            or payload.get("seed") != int(seed)
        ):
            return None
        records = payload["samples"]
        if not records:
            return None
        uniform: Sample | None = None
        strata: dict[Rule, Sample] = {}
        for record in records:
            filt = decode_rule(record["filter"])
            row_ids = np.asarray(record["row_ids"], dtype=np.int64)
            population = int(record["population"])
            if row_ids.ndim != 1 or len(row_ids) == 0:
                return None
            if row_ids.min() < 0 or row_ids.max() >= table.n_rows:
                return None
            if not population >= len(row_ids):
                return None
            sample = _make_sample(table, filt, row_ids, population)
            if filt.is_trivial:
                uniform = sample
            else:
                strata[filt] = sample
        if uniform is None:
            return None
        return TableSampleSet(table, uniform, strata, budget=int(budget), seed=int(seed))
    except (OSError, ValueError, KeyError, TypeError, ReproError):
        return None
