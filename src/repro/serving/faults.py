"""Fault-tolerance primitives for the serving tier.

Three small, independently testable pieces the deadline spine
(:mod:`repro.serving.router`, :mod:`repro.serving.server`) composes:

* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine, one per shard.  While open, callers are shed with a
  typed :class:`~repro.errors.CircuitOpenError` (HTTP 503 +
  ``Retry-After``) instead of queueing behind a corpse; after the
  cooldown exactly one *probe* request is let through to decide
  whether the shard is healthy again.  The clock is injectable, so
  every transition is drill-testable without real waiting.
* :class:`ShardWatchdog` — a background thread driving periodic health
  probes (:meth:`ShardRouter.probe_shards`), so a wedged or crashed
  shard is detected and restarted even when no request happens to
  observe it.  ``run_once`` drives one tick synchronously for
  deterministic tests; the same exception-isolation discipline as the
  persistence :class:`~repro.serving.persistence.ReaperThread`.
* :class:`ChaosPolicy` / :class:`ChaosRule` — a deterministic
  fault-injection seam.  Rules (wedge-for-T-seconds, delay, drop the
  reply, crash, typed error) match on op name with ``after``/``times``
  occurrence windows, serialise to JSON, and install either
  *worker-side* on a :class:`~repro.serving.shard.ShardProcess` (the
  child really sleeps or dies — the failure is real; only the test's
  *observation* is deterministic) or in-process on a
  :class:`~repro.serving.DrillDownServer`.

None of this changes results — breakers and watchdogs only decide
*whether* a request reaches a shard, never what a healthy shard
answers (pinned by ``tests/serving/test_faults_deadline.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import CircuitOpenError, ServingError

__all__ = ["ChaosPolicy", "ChaosRule", "CircuitBreaker", "ShardWatchdog"]


# -- the circuit breaker ---------------------------------------------------------


class CircuitBreaker:
    """Closed → open after ``threshold`` consecutive failures → half-open probe.

    Thread-safe; all transitions happen under one lock.  The contract
    with the router:

    * :meth:`acquire` before every request.  Closed: proceed.  Open
      with cooldown remaining: raise :class:`CircuitOpenError`
      carrying the remaining cooldown as ``retry_after``.  Open with
      cooldown elapsed: become half-open and admit exactly one caller
      as the *probe*; concurrent callers are shed until the probe
      reports back.
    * :meth:`record_success` — the shard answered (a typed application
      error counts: the *pipe* is healthy).  Resets to closed.
    * :meth:`record_failure` — a pipe-level failure.  In half-open,
      one failure re-opens; otherwise ``threshold`` consecutive
      failures open the breaker.
    * :meth:`cancel_probe` — the probe ended without evidence either
      way (e.g. the handle lock was busy).  Returns to open *without*
      restarting the cooldown, so the next caller re-probes
      immediately.

    Failures are counted only for pipe-level faults (crash, wedge) —
    a saturated-but-healthy shard (handle-lock timeout) never trips
    the breaker.
    """

    def __init__(
        self,
        *,
        threshold: int = 5,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ):
        if threshold < 1:
            raise ServingError("breaker threshold must be >= 1 failure")
        if cooldown < 0:
            raise ServingError("breaker cooldown must be >= 0 seconds")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (cooldown-aware)."""
        with self._lock:
            if self._state == "open" and self._clock() - self._opened_at >= self.cooldown:
                return "half_open"
            return self._state

    def acquire(self) -> None:
        """Admit one request, or shed it with :class:`CircuitOpenError`."""
        with self._lock:
            if self._state == "closed":
                return
            remaining = self._opened_at + self.cooldown - self._clock()
            if self._state == "open" and remaining <= 0.0:
                self._state = "half_open"
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return
            self.rejections += 1
            what = "probing" if self._state == "half_open" else "open"
            raise CircuitOpenError(
                f"circuit {self.name or 'breaker'} is {what} after "
                f"{self._failures} consecutive failures — request shed",
                retry_after=max(0.0, remaining),
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            was_half_open = self._state == "half_open"
            self._probing = False
            if was_half_open or self._failures >= self.threshold:
                if self._state != "open":
                    self.opens += 1
                self._state = "open"
                self._opened_at = self._clock()

    def cancel_probe(self) -> None:
        """Probe inconclusive: back to open, cooldown *not* restarted."""
        with self._lock:
            if self._state == "half_open":
                self._state = "open"
                self._probing = False

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "opens": self.opens,
                "rejections": self.rejections,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name or 'unnamed'}, state={self.state!r})"


# -- the watchdog ----------------------------------------------------------------


class ShardWatchdog(threading.Thread):
    """Periodic shard health probes, independent of request traffic.

    Calls ``probe`` (typically
    :meth:`~repro.serving.ShardRouter.probe_shards`, which pings every
    shard with a bounded timeout and restarts the dead or wedged ones)
    every ``interval`` seconds.  Exception-isolated like the
    persistence reaper: a failing probe sweep is counted in
    :attr:`errors`, never fatal to the thread.  :meth:`run_once`
    drives one tick synchronously for deterministic tests; the thread
    is a daemon and :meth:`stop` shuts it down promptly.
    """

    def __init__(
        self,
        *,
        probe: Callable[[], Any],
        interval: float = 5.0,
        name: str = "drilldown-watchdog",
    ):
        if interval <= 0:
            raise ServingError("watchdog interval must be > 0 seconds")
        super().__init__(name=name, daemon=True)
        self._probe = probe
        self.interval = float(interval)
        self._stop_event = threading.Event()
        self.ticks = 0
        self.recoveries = 0
        self.errors = 0

    def run(self) -> None:  # pragma: no cover - timing loop; run_once is tested
        while not self._stop_event.wait(self.interval):
            self.run_once()

    def run_once(self) -> None:
        """One probe sweep, synchronously (the thread's body; also tests)."""
        self.ticks += 1
        try:
            recovered = self._probe()
            self.recoveries += len(recovered) if recovered is not None else 0
        except Exception:
            self.errors += 1

    def stop(self) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=10.0)

    def stats(self) -> dict:
        return {
            "interval": self.interval,
            "ticks": self.ticks,
            "recoveries": self.recoveries,
            "errors": self.errors,
        }


# -- chaos injection -------------------------------------------------------------

_CHAOS_KINDS = frozenset({"wedge", "delay", "drop_reply", "crash", "error"})


@dataclass
class ChaosRule:
    """One injected fault: *what* happens, on *which* op, *when*.

    ``kind``:

    * ``"wedge"`` — sleep ``seconds`` *before* executing the op (the
      worker is stuck mid-request: callers see a missed deadline, and
      the op has not been applied).
    * ``"delay"`` — execute the op, then sleep ``seconds`` before
      replying (slow shard; the op *was* applied).
    * ``"drop_reply"`` — execute the op but never send the response
      (a lost reply: the op was applied, the caller cannot know).
    * ``"crash"`` — ``os._exit`` the worker before executing the op.
    * ``"error"`` — raise a typed
      :class:`~repro.errors.ShardError` instead of executing the op.

    ``op`` matches the wire op name exactly, or ``"*"`` for any.
    Occurrence window: the rule skips its first ``after`` matching
    calls, then fires for the next ``times`` matches (``None`` =
    forever) — ``after=1, times=1`` is "crash on the second expand".
    """

    kind: str
    op: str = "*"
    seconds: float = 0.0
    after: int = 0
    times: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in _CHAOS_KINDS:
            raise ServingError(
                f"unknown chaos kind {self.kind!r}; one of {sorted(_CHAOS_KINDS)}"
            )
        if self.seconds < 0:
            raise ServingError("chaos seconds must be >= 0")
        if self.after < 0:
            raise ServingError("chaos after must be >= 0")
        if self.times is not None and self.times < 1:
            raise ServingError("chaos times must be >= 1 (or None for forever)")

    def encode(self) -> dict:
        return {
            "kind": self.kind,
            "op": self.op,
            "seconds": self.seconds,
            "after": self.after,
            "times": self.times,
        }

    @classmethod
    def decode(cls, payload: dict) -> "ChaosRule":
        return cls(
            kind=payload["kind"],
            op=payload.get("op", "*"),
            seconds=float(payload.get("seconds", 0.0)),
            after=int(payload.get("after", 0)),
            times=None if payload.get("times") is None else int(payload["times"]),
        )


class ChaosPolicy:
    """An ordered set of :class:`ChaosRule`\\ s with match counters.

    :meth:`fire` is the injection point: called once per operation, it
    advances every matching rule's occurrence counter and returns the
    first rule whose window is due (or ``None``).  Counters make the
    policy deterministic — the N-th matching call fires, regardless of
    timing or thread interleaving on the caller's side.

    Serialises to JSON (:meth:`encode`/:meth:`decode`) so a policy can
    cross the shard pipe and be applied *inside* the worker process,
    where a ``wedge`` really blocks the worker loop and a ``crash``
    really kills the process.
    """

    def __init__(self, rules: Iterable[ChaosRule] = ()):
        self.rules = [
            rule if isinstance(rule, ChaosRule) else ChaosRule.decode(rule)
            for rule in rules
        ]
        self._lock = threading.Lock()
        self._seen = [0] * len(self.rules)
        self.fired = 0

    def fire(self, op: str) -> ChaosRule | None:
        """The first rule due for ``op`` this call, advancing counters."""
        with self._lock:
            due: ChaosRule | None = None
            for i, rule in enumerate(self.rules):
                if rule.op != "*" and rule.op != op:
                    continue
                seen = self._seen[i]
                self._seen[i] = seen + 1
                if seen < rule.after:
                    continue
                if rule.times is not None and seen >= rule.after + rule.times:
                    continue
                if due is None:
                    due = rule
            if due is not None:
                self.fired += 1
            return due

    def encode(self) -> dict:
        return {"rules": [rule.encode() for rule in self.rules]}

    @classmethod
    def decode(cls, payload: dict | None) -> "ChaosPolicy":
        return cls((payload or {}).get("rules", ()))

    def __repr__(self) -> str:
        return f"ChaosPolicy(rules={len(self.rules)}, fired={self.fired})"
